"""Multi-language and multi-application-type task execution.

OSPREY is explicitly inclusive (§II-B1e): the task API exists in Python
*and* R (Listing 1), and worker pools run Python callables, command-line
programs (Swift/T ``app`` functions), and MPI-parallel ``@par`` tasks
(§IV-D).  This example exercises all of them against one database:

- work type 0: Python-handler tasks, driven through the R-style
  functional API (``eq_submit_task`` / ``eq_query_result``);
- work type 1: an ``app`` task running a real subprocess;
- work type 2: a ``@par`` task spanning 4 simulated MPI ranks.

Run:  python examples/multi_language.py
"""

from __future__ import annotations

import json
import operator
import sys

from repro.core import init_eqsql, rapi
from repro.pools import (
    AppTaskHandler,
    ParTaskHandler,
    PoolConfig,
    PythonTaskHandler,
    ThreadedWorkerPool,
)

PY_TYPE, APP_TYPE, PAR_TYPE = 0, 1, 2


def growth_rate(params: dict) -> dict:
    """Python task: toy exponential growth doubling time."""
    import math

    return {"doubling_days": math.log(2) / math.log(1 + params["daily_growth"])}


def parallel_sum(comm, payload) -> dict:
    """@par task: each rank contributes rank * weight; allreduce."""
    total = comm.allreduce(comm.rank * payload["weight"], operator.add)
    return {"ranks": comm.size, "weighted_sum": total}


def main() -> None:
    eq = init_eqsql()

    # --- Three pools, one per application type -------------------------------
    pools = [
        ThreadedWorkerPool(
            eq, PythonTaskHandler(growth_rate),
            PoolConfig(work_type=PY_TYPE, n_workers=2, name="python-pool"),
        ).start(),
        ThreadedWorkerPool(
            eq,
            AppTaskHandler(
                f"{sys.executable} -c "
                f"\"import sys, json; d=json.loads(sys.argv[1]); "
                f"print(json.dumps({{'upper': d['text'].upper()}}))\" {{payload}}"
            ),
            PoolConfig(work_type=APP_TYPE, n_workers=2, name="app-pool"),
        ).start(),
        ThreadedWorkerPool(
            eq, ParTaskHandler(parallel_sum, procs=4),
            PoolConfig(work_type=PAR_TYPE, n_workers=1, name="par-pool"),
        ).start(),
    ]

    # --- R-style API (Listing 1) drives the Python work type ------------------
    rapi.eq_init(eqsql=eq)
    task_id = rapi.eq_submit_task(
        "multi-lang", PY_TYPE, json.dumps({"daily_growth": 0.08}), priority=0
    )
    result = rapi.eq_query_result(task_id, delay=0.02, timeout=30)
    print(f"R-style API result ({result['type']}):",
          json.loads(result["payload"]))
    rapi.eq_shutdown()

    # --- app (command-line) task ------------------------------------------------
    app_future = eq.submit_task("multi-lang", APP_TYPE, json.dumps({"text": "osprey"}))
    _, payload = app_future.result(timeout=30, delay=0.02)
    print("app task result:", json.loads(payload))

    # --- @par (MPI) task ----------------------------------------------------------
    par_future = eq.submit_task("multi-lang", PAR_TYPE, json.dumps({"weight": 10}))
    _, payload = par_future.result(timeout=30, delay=0.02)
    print("@par task result:", json.loads(payload))

    for pool in pools:
        pool.stop()
    eq.close()


if __name__ == "__main__":
    main()

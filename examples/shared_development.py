"""The Shared Development Environment and operations tooling.

Exercises the paper's §II-B3 capabilities plus the §VII future-work
items this reproduction implements:

1. a workflow is authored as a portable JSON spec, "shipped" to another
   group, rebuilt, and run identically (§II-B3a);
2. the calibrated model is published to the registry *with its
   validation data*; re-validation detects a simulated regression
   (§II-B3b);
3. worker pools run as PSI/J-managed pilot jobs with active status
   monitoring and remote termination (§VII);
4. a particle filter assimilates the daily case stream and issues a
   forecast — the continuously-running analysis of §II-A2.

Run:  python examples/shared_development.py
"""

from __future__ import annotations

import json

import numpy as np

from repro.core import EQSQL
from repro.db import MemoryTaskStore
from repro.epi import ParticleFilter, ParticleFilterConfig, SEIRParams, simulate_stochastic_seir
from repro.sched import Cluster, ClusterSpec, Scheduler
from repro.sched.psij import JobSpec, LocalSchedulerExecutor, managed_pool_job
from repro.sde import ModelRegistry, WorkflowSpec, run_workflow
from repro.pools import PoolConfig, PythonTaskHandler


# -- module-level functions: the currency of portable specs -----------------

def attack_rate_task(params: dict) -> dict:
    """Estimate a scenario's attack rate from stochastic replicates."""
    seir = SEIRParams(
        beta=params["beta"], sigma=0.25, gamma=0.2, population=20_000
    )
    rng = np.random.default_rng(params["seed"])
    rates = [
        simulate_stochastic_seir(seir, rng, initial_infected=5, days=150).attack_rate()
        for _ in range(params["replicates"])
    ]
    return {"attack_rate_mean": float(np.mean(rates)), "n": len(rates)}


_MODEL_STATE = {"drift": 0.0}


def scenario_model(payload: dict) -> dict:
    """The 'published model': attack-rate estimate for a beta scenario."""
    value = attack_rate_task(
        {"beta": payload["beta"], "seed": 42, "replicates": 5}
    )["attack_rate_mean"]
    return {"attack_rate": value + _MODEL_STATE["drift"]}


def main() -> None:
    # --- 1. share a workflow as a JSON spec -----------------------------------
    spec = WorkflowSpec(name="scenario-sweep", version="1.0",
                        parameters={"scope": "county"})
    spec.add_task_type(0, attack_rate_task, n_workers=3)
    shipped = spec.to_json()
    print(f"workflow spec ({len(shipped)} bytes of JSON) shipped to another group")

    received = WorkflowSpec.from_json(shipped)
    eq = EQSQL(MemoryTaskStore())
    betas = [0.25, 0.4, 0.55, 0.7]
    results = run_workflow(
        received, eq,
        payloads={0: [json.dumps({"beta": b, "seed": 7, "replicates": 4})
                      for b in betas]},
        timeout=120,
    )
    for beta, result in zip(betas, results[0]):
        print(f"  beta={beta:.2f} -> attack rate {json.loads(result)['attack_rate_mean']:.3f}")
    eq.close()

    # --- 2. publish the model with validation; detect a regression -------------
    registry = ModelRegistry()
    expected = scenario_model({"beta": 0.5})
    registry.publish(
        "scenario-model", "1.0", scenario_model,
        cases=[("beta-0.5", {"beta": 0.5}, expected)],
        rtol=1e-9,
    )
    print(f"\npublished scenario-model v1.0: {registry.validate('scenario-model').summary()}")
    _MODEL_STATE["drift"] = 0.05  # a bad refactor lands
    report = registry.validate("scenario-model")
    print(f"after code drift:            {report.summary()}")
    print(f"  regression detail: {report.regressions[0].mismatches[0]}")
    _MODEL_STATE["drift"] = 0.0

    # --- 3. PSI/J-managed worker pool ------------------------------------------
    scheduler = Scheduler(Cluster(ClusterSpec("bebop", n_nodes=2))).start()
    executor = LocalSchedulerExecutor(scheduler).start()
    eq2 = EQSQL(MemoryTaskStore())
    futures = eq2.submit_tasks(
        "psij-demo", 0,
        [json.dumps({"beta": 0.5, "seed": i, "replicates": 2}) for i in range(6)],
    )
    handle, stop = managed_pool_job(
        executor, eq2, PythonTaskHandler(attack_rate_task),
        PoolConfig(work_type=0, n_workers=2, name="managed-pool"),
        spec=JobSpec(name="managed-pool", nodes=1, walltime=120),
    )
    transitions: list[str] = []
    handle.on_status(lambda _h, s: transitions.append(s.value))
    from repro.core import as_completed

    done = list(as_completed(futures, timeout=60, delay=0.02))
    stop()  # remote termination through the portable layer
    final = handle.wait(timeout=30)
    print(f"\nPSI/J pool job: {len(done)} tasks done; transitions {transitions}; "
          f"final state {final.value}; pool reported {handle.native.result} completions")
    executor.stop()
    scheduler.shutdown()
    eq2.close()

    # --- 4. continuously running assimilation -----------------------------------
    truth = SEIRParams(beta=0.5, sigma=0.25, gamma=0.2, population=50_000)
    rng = np.random.default_rng(3)
    epidemic = simulate_stochastic_seir(truth, rng, initial_infected=10, days=60)
    observed = rng.binomial(epidemic.incidence[1:].astype(int), 0.3).astype(float)

    pf = ParticleFilter(
        ParticleFilterConfig(
            n_particles=400, population=50_000, sigma=0.25, gamma=0.2,
            reporting_rate=0.3, initial_infected=10,
        ),
        np.random.default_rng(11),
    )
    pf.run(observed)
    beta_mean, beta_std = pf.beta_posterior()
    forecast = pf.forecast(7)
    print(f"\nassimilated 60 days of cases: beta posterior "
          f"{beta_mean:.3f} ± {beta_std:.3f} (truth 0.500)")
    print(f"7-day reported-case forecast: {np.round(forecast, 1)}")


if __name__ == "__main__":
    main()

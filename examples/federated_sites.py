"""Federated multi-site execution with scheduler-backed pools and
wide-area data staging.

Demonstrates the full substrate stack working together:

- two simulated clusters (``bebop``, ``theta``), each with a batch
  scheduler — fabric tasks on them run as *pilot jobs* and feel real
  queue delays;
- the fabric's 10 MB payload cap rejecting a large model directly,
  and the ProxyStore-over-Globus path carrying it instead: the proxy
  rides the task payload, the bytes move by third-party transfer
  between the sites' endpoints.

Run:  python examples/federated_sites.py
"""

from __future__ import annotations

import numpy as np

from repro.fabric import (
    CloudBroker,
    Endpoint,
    FabricClient,
    SchedulerProvider,
)
from repro.sched import Cluster, ClusterSpec, Scheduler
from repro.store import GlobusConnector, Store, extract, register_store, unregister_store
from repro.transfer import TransferClient, TransferEndpoint
from repro.util.errors import PayloadTooLargeError

STORE_NAME = "wide-area-store"


def summarize_model(model_proxy) -> dict:
    """Runs on theta: resolve the proxied array (triggering a Globus
    transfer bebop -> theta) and summarize it."""
    # A remote site resolves proxies through its *own* store instance,
    # bound to its local Globus endpoint — re-register accordingly.
    theta_store = Store(STORE_NAME, GlobusConnector.connect(STORE_NAME, "theta"))
    register_store(theta_store, replace=True)
    model = extract(model_proxy)
    return {
        "n_params": int(model.size),
        "norm": float(np.linalg.norm(model)),
        "mean": float(model.mean()),
    }


def main() -> None:
    # --- Two clusters, each behind a batch scheduler --------------------------
    bebop_sched = Scheduler(
        Cluster(ClusterSpec("bebop", n_nodes=2, cores_per_node=36)),
        queue_delay=lambda job: 0.15,  # multi-user contention model
    ).start()
    theta_sched = Scheduler(
        Cluster(ClusterSpec("theta", n_nodes=4, cores_per_node=64)),
        queue_delay=lambda job: 0.25,
    ).start()

    broker = CloudBroker()  # 10 MB default payload cap, like funcX
    bebop = Endpoint(
        broker, "bebop", "tok", provider=SchedulerProvider(bebop_sched, walltime=60)
    ).start()
    theta = Endpoint(
        broker, "theta", "tok", provider=SchedulerProvider(theta_sched, walltime=60)
    ).start()
    client = FabricClient(broker, "tok")

    # --- Wide-area data fabric: Globus-style endpoints ------------------------
    transfer = TransferClient(speedup=50.0)
    transfer.register_endpoint(TransferEndpoint("bebop", bandwidth=5e8, latency=0.02))
    transfer.register_endpoint(TransferEndpoint("theta", bandwidth=1e9, latency=0.02))
    bebop_conn = GlobusConnector(STORE_NAME, transfer, "bebop")
    store = Store(STORE_NAME, bebop_conn)
    register_store(store, replace=True)

    # --- A model too large for the task-payload path ---------------------------
    model = np.random.default_rng(0).normal(size=3_000_000)  # ~24 MB
    print(f"model size: {model.nbytes / 1e6:.1f} MB "
          f"(fabric cap: {broker.payload_limit / 1e6:.0f} MB)")
    try:
        client.submit(summarize_model, model, endpoint=theta.endpoint_id)
    except PayloadTooLargeError as exc:
        print(f"direct submission rejected, as expected: {exc}")

    # --- The OSPREY answer: stage out-of-band, pass a proxy --------------------
    proxy = store.proxy(model)
    future = client.submit(summarize_model, proxy, endpoint=theta.endpoint_id)
    summary = future.result(timeout=120)
    print(f"remote summary via proxy: {summary}")
    moved = transfer.endpoint("theta").total_bytes()
    print(f"bytes landed at theta by third-party transfer: {moved / 1e6:.1f} MB")

    # Pilot-job effect: the task waited in theta's batch queue.
    print(f"theta scheduler ran {3 - theta_sched.queue_length()} job(s) "
          "as pilot jobs behind a queue delay")

    # --- Teardown ---------------------------------------------------------------
    bebop.stop()
    theta.stop()
    bebop_sched.shutdown()
    theta_sched.shutdown()
    unregister_store(STORE_NAME)
    GlobusConnector.drop_fabric(STORE_NAME)


if __name__ == "__main__":
    main()

"""The paper's §VI workflow at laptop scale, on the real components.

Reproduces the example optimization workflow end to end:

1. A fabric client ("funcX") starts the EMEWS DB, the EMEWS service,
   and a worker pool **remotely** on the ``bebop`` endpoint.
2. The local ME algorithm connects to the service over TCP (the SSH
   tunnel of the paper) and submits random 4-D points for Ackley
   evaluation (with a small lognormal sleep for runtime heterogeneity).
3. After every batch of completions, GPR retraining runs **on the
   ``theta`` endpoint** through the fabric; the GPR travels as a
   ProxyStore proxy (only a pointer rides the task payload).
4. The returned ranking reprioritizes the uncompleted tasks; a second
   worker pool joins mid-run.

Run:  python examples/ackley_gpr_workflow.py
"""

from __future__ import annotations

import json

import numpy as np

from repro.core import EQSQL, RemoteTaskStore, as_completed, update_priority
from repro.fabric import CloudBroker, Endpoint, FabricClient, LocalProvider
from repro.me import GaussianProcessRegressor, ackley, ranks_to_priorities, uniform_random
from repro.me.functions import lognormal_runtime
from repro.pools import lifecycle
from repro.store import MemoryConnector, Store, extract, register_store, unregister_store

N_POINTS = 120
DIM = 4
BATCH_COMPLETED = 25
WORK_TYPE = 0
STORE_NAME = "gpr-store"

_rng = np.random.default_rng(7)


def ackley_task(params: dict) -> dict:
    """The worker-side task: Ackley plus a lognormal sleep."""
    import time

    time.sleep(float(lognormal_runtime(_rng, mean=0.02, sigma=0.5)))
    return {"y": float(ackley(params["x"]))}


def retrain_and_rank(gpr_proxy, X_done, y_done, X_remaining) -> list[int]:
    """Runs on the `theta` endpoint: resolve the proxied GPR, refit it,
    rank the remaining points (higher = run sooner)."""
    gpr: GaussianProcessRegressor = extract(gpr_proxy)
    gpr.fit(np.asarray(X_done), np.asarray(y_done))
    predicted = gpr.predict(np.asarray(X_remaining))
    return [int(p) for p in ranks_to_priorities(np.asarray(predicted))]


def main() -> None:
    # --- Federation setup: broker + two sites --------------------------------
    broker = CloudBroker()
    bebop = Endpoint(broker, "bebop", "tok", provider=LocalProvider(4)).start()
    theta = Endpoint(broker, "theta", "tok", provider=LocalProvider(2)).start()
    client = FabricClient(broker, "tok")

    # GPR travels by proxy: a shared store both "sites" can reach.
    store = Store(STORE_NAME, MemoryConnector(STORE_NAME))
    register_store(store, replace=True)

    # --- Start remote components through the fabric (paper §VI) --------------
    client.run(lifecycle.start_emews_db, "bebop-db", endpoint=bebop.endpoint_id)
    host, port = client.run(
        lifecycle.start_emews_service, "bebop-db", endpoint=bebop.endpoint_id
    )
    client.run(
        lifecycle.start_worker_pool,
        "bebop-db", "bebop-pool-1", WORK_TYPE, ackley_task,
        endpoint=bebop.endpoint_id, n_workers=4,
    )
    print(f"EMEWS service up at {host}:{port}; pool bebop-pool-1 running")

    # --- Local ME algorithm over the TCP service ------------------------------
    remote = RemoteTaskStore(host, int(port))
    eq = EQSQL(remote)
    points = uniform_random(np.random.default_rng(42), N_POINTS, [(-32.768, 32.768)] * DIM)
    futures = eq.submit_tasks(
        "ackley-exp", WORK_TYPE, [json.dumps({"x": list(map(float, p))}) for p in points]
    )
    point_of = {f.eq_task_id: i for i, f in enumerate(futures)}
    print(f"submitted {N_POINTS} {DIM}-D Ackley points")

    gpr_proxy = store.proxy(GaussianProcessRegressor(optimize_hyperparameters=False))
    pending = list(futures)
    done_X: list[list[float]] = []
    done_y: list[float] = []
    repri_round = 0

    while pending:
        want = min(BATCH_COMPLETED, len(pending))
        for future in as_completed(pending, pop=True, n=want, delay=0.02, timeout=120):
            _, payload = future.result(timeout=0)
            done_X.append(list(points[point_of[future.eq_task_id]]))
            done_y.append(json.loads(payload)["y"])
        if not pending:
            break
        repri_round += 1
        X_remaining = [list(points[point_of[f.eq_task_id]]) for f in pending]
        # Remote GPR retraining on theta, GPR shipped as a proxy.
        priorities = client.run(
            retrain_and_rank, gpr_proxy, done_X, done_y, X_remaining,
            endpoint=theta.endpoint_id, timeout=120,
        )
        updated = update_priority(pending, priorities)
        print(
            f"repri #{repri_round}: {len(done_y)} done, best={min(done_y):.3f}, "
            f"reprioritized {updated}/{len(pending)} on theta"
        )
        if repri_round == 2:
            # Add a second worker pool mid-run, as Fig 4 does.
            client.run(
                lifecycle.start_worker_pool,
                "bebop-db", "bebop-pool-2", WORK_TYPE, ackley_task,
                endpoint=bebop.endpoint_id, n_workers=4,
            )
            print("started bebop-pool-2 (second worker pool joins)")

    best = int(np.argmin(done_y))
    print(f"\nall {len(done_y)} evaluations complete")
    print(f"best Ackley value {done_y[best]:.4f} at x={np.round(done_X[best], 3)}")

    # --- Teardown --------------------------------------------------------------
    remote.close()
    lifecycle.shutdown_site()
    bebop.stop()
    theta.stop()
    unregister_store(STORE_NAME)
    MemoryConnector.drop_space(STORE_NAME)


if __name__ == "__main__":
    main()

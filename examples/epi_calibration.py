"""Asynchronous calibration of a SEIR model against surveillance data.

The domain workflow OSPREY exists for: synthetic case counts are
published by a (simulated) health-department portal, ingested and
curated through the provenance-tracked data pipeline, and a SEIR model
is calibrated to them by the asynchronous ME driver running over a
worker pool — with GPR reprioritization steering evaluation order
toward promising parameter sets.

Run:  python examples/epi_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro.core import EQSQL
from repro.data import (
    CurationPipeline,
    DataSource,
    ProvenanceLog,
    StreamIngestor,
    clip_outliers,
    fill_missing,
    rolling_mean,
)
from repro.db import MemoryTaskStore
from repro.epi import (
    CalibrationProblem,
    SEIRParams,
    SurveillanceModel,
    generate_surveillance,
    simulate_seir,
)
from repro.me import GPRReprioritizer, latin_hypercube, run_async_optimization
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.store import MemoryConnector, Store
from repro.util.ids import short_id

TRUE_PARAMS = SEIRParams(beta=0.52, sigma=0.25, gamma=0.22, population=100_000)
DAYS = 100
N_SAMPLES = 250
WORK_TYPE = 0


def make_observed_data() -> np.ndarray:
    """Ground truth epidemic -> noisy, delayed, under-reported counts."""
    result = simulate_seir(TRUE_PARAMS, initial_infected=5, t_end=float(DAYS), dt=0.25)
    steps = int(round(1 / 0.25))
    daily_incidence = result.incidence[1:].reshape(DAYS, steps).sum(axis=1)
    surveillance = SurveillanceModel(reporting_rate=0.3, delay_mean=2.0, dispersion=10.0)
    observed = generate_surveillance(
        daily_incidence, surveillance, np.random.default_rng(2020)
    )
    # Inject the pathologies the curation pipeline exists for.
    observed[40] = np.nan  # missing reporting day
    observed[60] *= 20  # bulk-correction spike
    return observed


def main() -> None:
    # --- Ingest and curate the surveillance stream ----------------------------
    portal = DataSource("county-health-portal")
    portal.publish("daily-cases", make_observed_data())

    staging_name = short_id("staging")
    staging = Store(staging_name, MemoryConnector(staging_name))
    provenance = ProvenanceLog()
    ingestor = StreamIngestor(portal, staging, provenance=provenance)
    (version,) = ingestor.poll()
    print(f"ingested {version.key} (hash {version.content_hash})")

    pipeline = CurationPipeline([fill_missing, clip_outliers(4.0), rolling_mean(7)])
    curated = pipeline.run(
        np.asarray(ingestor.staged_payload("daily-cases"), dtype=float),
        provenance,
        version.key,
    )
    lineage = provenance.lineage(curated.final_artifact)
    print("curation lineage:", " -> ".join(r.operation for r in lineage))

    # --- Calibration problem as a worker-pool task -----------------------------
    problem = CalibrationProblem(
        observed=curated.series,
        population=TRUE_PARAMS.population,
        surveillance=SurveillanceModel(reporting_rate=0.3, delay_mean=2.0),
        initial_infected=5,
    )
    eq = EQSQL(MemoryTaskStore())
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(problem.task_function),
        PoolConfig(work_type=WORK_TYPE, n_workers=4, name="calib-pool"),
    ).start()

    # --- Asynchronous ME loop with GPR reprioritization -------------------------
    rng = np.random.default_rng(11)
    samples = latin_hypercube(rng, N_SAMPLES, problem.bounds)
    result = run_async_optimization(
        eq,
        "seir-calibration",
        WORK_TYPE,
        samples,
        reprioritizer=GPRReprioritizer(optimize_hyperparameters=False, seed=1),
        batch_completed=20,
        timeout=300,
    )
    pool.stop()
    eq.close()
    MemoryConnector.drop_space(staging_name)

    best = result.best_x
    truth_loss = problem.loss(
        np.array([TRUE_PARAMS.beta, TRUE_PARAMS.sigma, TRUE_PARAMS.gamma])
    )
    print(f"\nevaluated {len(result.y)} parameter sets "
          f"({len(result.reprioritizations)} GPR reprioritizations)")
    print(f"best loss {result.best_y:.1f} at "
          f"beta={best[0]:.3f} sigma={best[1]:.3f} gamma={best[2]:.3f}")
    print(f"truth:    loss {truth_loss:.1f} at "
          f"beta={TRUE_PARAMS.beta:.3f} sigma={TRUE_PARAMS.sigma:.3f} "
          f"gamma={TRUE_PARAMS.gamma:.3f}")
    print(f"implied R0: fit={best[0] / best[2]:.2f}  true={TRUE_PARAMS.r0:.2f}")
    print("(beta and gamma are only weakly identified from case counts; "
          "their ratio R0 is the calibrated quantity)")


if __name__ == "__main__":
    main()

"""Quickstart: submit tasks, run a worker pool, collect results.

The minimal OSPREY loop — the Python side of the paper's Listing 1:
an ME algorithm submits JSON tasks to the EMEWS DB, a worker pool pops
them off the output queue (batch/threshold discipline), executes them,
and reports results to the input queue, where futures pick them up.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace trace.json

With ``--trace`` the same workload runs end-to-end traced — through a
real EMEWS service on TCP loopback, so the trace shows the wire hop —
and writes a Chrome ``trace_event`` file loadable in Perfetto or
``about:tracing``.
"""

from __future__ import annotations

import argparse
import json

from repro import (
    EQ_STOP,
    PoolConfig,
    PythonTaskHandler,
    ThreadedWorkerPool,
    as_completed,
    init_eqsql,
)


def simulate(params: dict) -> dict:
    """A stand-in simulation: return the square and a 'severity'."""
    x = params["x"]
    return {"y": x * x, "severity": "high" if x * x > 25 else "low"}


def run(eq, pool) -> None:
    # 2. Submit tasks: experiment id, work type, JSON payload, priority.
    futures = eq.submit_tasks(
        "quickstart-exp",
        0,
        [json.dumps({"x": x}) for x in range(10)],
        priority=0,
    )
    print(f"submitted {len(futures)} tasks; output queue: {eq.queue_lengths(0)[0]}")

    # 3. Start the worker pool.
    pool.start()

    # 4. Consume results as they complete (asynchronous API, §V-B).
    for future in as_completed(futures, timeout=30):
        status, payload = future.result(timeout=0)
        result = json.loads(payload)
        print(f"  task {future.eq_task_id}: y={result['y']:>3} severity={result['severity']}")

    # 5. Stop the pool with the EQ_STOP sentinel (drains cleanly).
    stop = eq.submit_task("quickstart-exp", 0, EQ_STOP, priority=-100)
    stop.result(timeout=10, delay=0.05)
    pool.join(timeout=10)
    print(f"pool done: {pool.tasks_completed} completed, {pool.tasks_failed} failed")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="trace the run and write Chrome trace_event JSON to PATH",
    )
    args = parser.parse_args()

    pool_config = PoolConfig(
        work_type=0, n_workers=3, batch_size=3, threshold=1, name="local-pool"
    )

    if args.trace is None:
        # 1. Open the EMEWS DB (in-memory here; pass a path for SQLite).
        eq = init_eqsql()
        pool = ThreadedWorkerPool(eq, PythonTaskHandler(simulate), pool_config)
        run(eq, pool)
        eq.close()
        return

    # Traced variant: same loop, but through a real service wire hop,
    # under a process-wide tracer sharing one clock with every component.
    from repro.core.eqsql import EQSQL
    from repro.core.service import TaskService
    from repro.core.service_client import RemoteTaskStore
    from repro.db.memory_backend import MemoryTaskStore
    from repro.telemetry.trace_export import (
        render_latency_breakdown,
        save_chrome_trace,
    )
    from repro.telemetry.tracing import Tracer, get_tracer, set_tracer
    from repro.util.clock import SystemClock

    tracer = Tracer(clock=SystemClock(), enabled=True)
    previous = set_tracer(tracer)
    service = TaskService(MemoryTaskStore()).start()
    try:
        host, port = service.address
        remote = RemoteTaskStore(host, port)
        eq = EQSQL(remote, clock=tracer.clock)
        pool = ThreadedWorkerPool(eq, PythonTaskHandler(simulate), pool_config)
        with get_tracer().span("driver.run", component="driver"):
            run(eq, pool)
        eq.close()
    finally:
        service.stop()
        set_tracer(previous)

    events = save_chrome_trace(tracer, args.trace)
    print(
        f"\nwrote {events} trace events ({len(tracer)} spans, "
        f"components: {', '.join(sorted(tracer.components()))}) -> {args.trace}"
    )
    print("\nlatency breakdown:\n")
    print(render_latency_breakdown(tracer))


if __name__ == "__main__":
    main()

"""Quickstart: submit tasks, run a worker pool, collect results.

The minimal OSPREY loop — the Python side of the paper's Listing 1:
an ME algorithm submits JSON tasks to the EMEWS DB, a worker pool pops
them off the output queue (batch/threshold discipline), executes them,
and reports results to the input queue, where futures pick them up.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import json

from repro import (
    EQ_STOP,
    PoolConfig,
    PythonTaskHandler,
    ThreadedWorkerPool,
    as_completed,
    init_eqsql,
)


def simulate(params: dict) -> dict:
    """A stand-in simulation: return the square and a 'severity'."""
    x = params["x"]
    return {"y": x * x, "severity": "high" if x * x > 25 else "low"}


def main() -> None:
    # 1. Open the EMEWS DB (in-memory here; pass a path for SQLite).
    eq = init_eqsql()

    # 2. Submit tasks: experiment id, work type, JSON payload, priority.
    futures = eq.submit_tasks(
        "quickstart-exp",
        0,
        [json.dumps({"x": x}) for x in range(10)],
        priority=0,
    )
    print(f"submitted {len(futures)} tasks; output queue: {eq.queue_lengths(0)[0]}")

    # 3. Start a worker pool: 3 workers, batch/threshold fetch policy.
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(simulate),
        PoolConfig(work_type=0, n_workers=3, batch_size=3, threshold=1,
                   name="local-pool"),
    ).start()

    # 4. Consume results as they complete (asynchronous API, §V-B).
    for future in as_completed(futures, timeout=30):
        status, payload = future.result(timeout=0)
        result = json.loads(payload)
        print(f"  task {future.eq_task_id}: y={result['y']:>3} severity={result['severity']}")

    # 5. Stop the pool with the EQ_STOP sentinel (drains cleanly).
    stop = eq.submit_task("quickstart-exp", 0, EQ_STOP, priority=-100)
    stop.result(timeout=10, delay=0.05)
    pool.join(timeout=10)
    print(f"pool done: {pool.tasks_completed} completed, {pool.tasks_failed} failed")
    eq.close()


if __name__ == "__main__":
    main()

"""DES events.

An :class:`Event` is a one-shot occurrence: it is *triggered* with a
value (or failure), then its callbacks run at its scheduled time.
Processes wait on events by yielding them.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.util.errors import InvalidStateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simt.environment import Environment

#: Sentinel for "no value yet".
_PENDING = object()


class Event:
    """A one-shot occurrence processes can wait on.

    Two stages matter for correct time semantics: an event is
    *triggered* once its value is known (succeed/fail called — for a
    Timeout, at construction), and *processed* once the environment has
    reached its scheduled time and run its callbacks.  Waiters attach to
    any unprocessed event; only processed events are "in the past".
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once succeed/fail has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's scheduled time has passed and its
        callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid once triggered)."""
        if self._ok is None:
            raise InvalidStateError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise InvalidStateError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger successfully; callbacks run after ``delay``."""
        if self.triggered:
            raise InvalidStateError("event already triggered")
        self._value = value
        self._ok = True
        self.env.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger as a failure; waiting processes get the exception
        thrown into them."""
        if self.triggered:
            raise InvalidStateError("event already triggered")
        self._value = exception
        self._ok = False
        self.env.schedule(self, delay)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        env.schedule(self, delay)


class _Condition(Event):
    """Base for AllOf/AnyOf: completes based on child events."""

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self._events if e.processed and e.ok}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child succeeds; fails on the first failure."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        if all(e.processed and e.ok for e in self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the first child succeeds; fails if one fails first."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(self._collect())

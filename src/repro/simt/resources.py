"""Shared DES resources: capacity-limited Resource, item Store, Container.

These mirror the SimPy primitives the scenario models need: worker
slots (Resource), task mailboxes (SimStore), and counted quantities
(Container).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.simt.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simt.environment import Environment


class Resource:
    """A pool of identical capacity slots with a FIFO wait queue.

    Usage pattern inside a process::

        req = resource.request()
        yield req
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, env: "Environment", capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        """An event that triggers when a slot is granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(None)
        else:
            self._waiting.append(event)
        return event

    def release(self) -> None:
        """Return one slot; grants the longest-waiting request if any."""
        if self._in_use <= 0:
            raise ValueError("release without matching request")
        if self._waiting:
            # Hand the slot straight to the next waiter.
            self._waiting.popleft().succeed(None)
        else:
            self._in_use -= 1


class SimStore:
    """An unbounded FIFO item store (SimPy's ``Store``)."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking one waiting getter if present."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that triggers with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Container:
    """A counted quantity with blocking get (SimPy's ``Container``)."""

    def __init__(self, env: "Environment", init: float = 0.0) -> None:
        if init < 0:
            raise ValueError("initial level must be nonnegative")
        self.env = env
        self._level = float(init)
        self._getters: deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        if amount <= 0:
            raise ValueError("put amount must be positive")
        self._level += amount
        self._drain()

    def get(self, amount: float) -> Event:
        """Triggers once ``amount`` can be withdrawn (FIFO)."""
        if amount <= 0:
            raise ValueError("get amount must be positive")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._drain()
        return event

    def _drain(self) -> None:
        while self._getters and self._getters[0][0] <= self._level:
            amount, event = self._getters.popleft()
            self._level -= amount
            event.succeed(None)

"""The DES environment: event heap + virtual clock.

``run`` pops scheduled events in (time, insertion order), advances the
shared :class:`~repro.util.clock.VirtualClock`, and fires callbacks.
Because the EMEWS DB timestamps every operation through the same clock,
a whole-workflow simulation produces traces identical in structure to a
wall-clock run.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator
from typing import Any

from repro.simt.events import Event, Timeout
from repro.simt.process import Process
from repro.util.clock import VirtualClock
from repro.util.errors import InvalidStateError


class Environment:
    """Event loop for one simulation."""

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now()

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        """An untriggered event to succeed/fail manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a process from a generator."""
        return Process(self, generator)

    # -- scheduling -------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event's callbacks to run after ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    # -- execution ------------------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap:
            raise InvalidStateError("no scheduled events")
        t, _seq, event = heapq.heappop(self._heap)
        self.clock.advance_to(t)
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def peek(self) -> float:
        """Time of the next scheduled event (inf when idle)."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        - ``until=None``: until no events remain.
        - ``until`` a number: until virtual time reaches it (the clock
          is advanced to exactly that time).
        - ``until`` an :class:`Event`: until it triggers; returns its
          value (raising if it failed) — typically a Process.
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.triggered:
                if not self._heap:
                    raise InvalidStateError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlocked processes?)"
                    )
                self.step()
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise ValueError(f"until={horizon} is in the past (now={self.now})")
            while self._heap and self._heap[0][0] <= horizon:
                self.step()
            self.clock.advance_to(max(self.now, horizon))
            return None
        while self._heap:
            self.step()
        return None

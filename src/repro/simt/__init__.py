"""simt: a discrete-event simulation kernel.

A compact generator-based DES (in the style of SimPy): processes are
Python generators that ``yield`` events; the :class:`Environment` runs
an event heap against a :class:`repro.util.clock.VirtualClock`.

Why it exists here: the paper's figures come from wall-clock runs on
real clusters (750 tasks, ~minutes).  Running the *same queueing logic*
under virtual time reproduces the figures' shapes deterministically in
milliseconds, which is what the benchmark harness needs.  The scenario
models in :mod:`repro.sim` are simt processes that call the real
:class:`repro.core.eqsql.EQSQL` code against the in-memory EMEWS DB.
"""

from repro.simt.events import AllOf, AnyOf, Event, Timeout
from repro.simt.process import Interrupt, Process
from repro.simt.environment import Environment
from repro.simt.resources import Container, Resource, SimStore

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupt",
    "Resource",
    "SimStore",
    "Container",
]

"""DES processes: generators that yield events.

A :class:`Process` drives a generator: each yielded :class:`Event`
suspends the generator until the event triggers, at which point the
event's value is sent back in (or its exception thrown in).  A process
is itself an event — it triggers with the generator's return value —
so processes can wait on each other.  :meth:`Process.interrupt` throws
:class:`Interrupt` into a waiting process, the mechanism the pool model
uses to preempt idle waits.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.simt.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simt.environment import Environment


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator within the simulation."""

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume on an immediately-scheduled internal event.
        start = Event(env)
        start.callbacks.append(self._resume)
        start.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op.
        """
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and not target.processed:
            # Detach from the event it was waiting on, then resume with
            # the interrupt via a fresh immediate event.
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            self._waiting_on = None
        kick = Event(self.env)
        kick.callbacks.append(lambda e: self._step(throw=Interrupt(cause)))
        kick.succeed(None)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(send=event.value)
        else:
            self._step(throw=event.value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        if self.triggered:
            return
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagates to waiters
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = TypeError(
                f"processes must yield Events, got {type(target).__name__}"
            )
            try:
                self._generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:  # noqa: BLE001
                self.fail(exc)
            return
        self._waiting_on = target
        if target.processed:
            # Already in the past: resume on the next scheduling round
            # so ordering stays heap-driven.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.value)
        else:
            target.callbacks.append(self._resume)

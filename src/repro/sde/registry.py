"""Model validation and publishing (paper §II-B3b).

"We will employ best practices from the DevOps ecosystem to make it
easier for modelers to post complete models with the data used to
validate them for reproduction, extension, or scaling by others, with
the capability to detect correctness regressions."

A :class:`ModelRegistry` stores versioned models *together with their
validation suite*: named cases of (input payload, expected output).
``validate`` re-executes the model on every case and compares against
the stored expectations within tolerances, producing a
:class:`ValidationReport` that pinpoints regressions.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.sde.checks import compare_outputs
from repro.sde.workflow import fn_reference, resolve_fn
from repro.util.clock import Clock, SystemClock
from repro.util.errors import NotFoundError, ReproError


class ValidationError(ReproError):
    """A published model failed its validation suite."""


@dataclass(frozen=True)
class ValidationCase:
    """One named validation input with its expected output."""

    name: str
    payload: Any
    expected: Any


@dataclass(frozen=True)
class ModelVersion:
    """One published model version."""

    name: str
    version: str
    model_fn: str  # module:qualname
    cases: tuple[ValidationCase, ...]
    metadata: dict[str, Any] = field(default_factory=dict)
    published_at: float = 0.0
    rtol: float = 1e-6
    atol: float = 1e-9


@dataclass
class CaseResult:
    """Outcome of one validation case."""

    case: str
    passed: bool
    mismatches: list[str] = field(default_factory=list)
    error: str | None = None


@dataclass
class ValidationReport:
    """Full validation outcome for one model version."""

    model: str
    version: str
    results: list[CaseResult]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def regressions(self) -> list[CaseResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        ok = sum(r.passed for r in self.results)
        return f"{self.model} v{self.version}: {ok}/{len(self.results)} cases passed"


class ModelRegistry:
    """Versioned model publication with replayable validation."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._models: dict[tuple[str, str], ModelVersion] = {}

    def publish(
        self,
        name: str,
        version: str,
        model_fn: Callable[[Any], Any] | str,
        cases: list[tuple[str, Any, Any]],
        metadata: dict[str, Any] | None = None,
        rtol: float = 1e-6,
        atol: float = 1e-9,
        validate_now: bool = True,
    ) -> ModelVersion:
        """Publish a model version with its validation data.

        ``cases`` is a list of (case name, input payload, expected
        output).  By default the suite runs immediately and publication
        is refused on failure — models enter the registry green.
        """
        if not cases:
            raise ValidationError("a model must be published with validation cases")
        reference = model_fn if isinstance(model_fn, str) else fn_reference(model_fn)
        record = ModelVersion(
            name=name,
            version=version,
            model_fn=reference,
            cases=tuple(ValidationCase(n, p, e) for n, p, e in cases),
            metadata=dict(metadata or {}),
            published_at=self._clock.now(),
            rtol=rtol,
            atol=atol,
        )
        if validate_now:
            report = self._run_validation(record)
            if not report.passed:
                raise ValidationError(
                    f"refusing to publish {name} v{version}: "
                    + "; ".join(
                        f"{r.case} ({r.error or r.mismatches})" for r in report.regressions
                    )
                )
        with self._lock:
            key = (name, version)
            if key in self._models:
                raise ValidationError(f"{name} v{version} already published")
            self._models[key] = record
        return record

    def get(self, name: str, version: str | None = None) -> ModelVersion:
        """A specific version, or the latest published one."""
        with self._lock:
            if version is not None:
                record = self._models.get((name, version))
                if record is None:
                    raise NotFoundError(f"no model {name} v{version}")
                return record
            candidates = [m for (n, _v), m in self._models.items() if n == name]
        if not candidates:
            raise NotFoundError(f"no model named {name!r}")
        return max(candidates, key=lambda m: m.published_at)

    def versions(self, name: str) -> list[str]:
        with self._lock:
            return sorted(v for (n, v) in self._models if n == name)

    def models(self) -> list[str]:
        with self._lock:
            return sorted({n for (n, _v) in self._models})

    # -- validation ------------------------------------------------------------

    def _run_validation(self, record: ModelVersion) -> ValidationReport:
        fn = resolve_fn(record.model_fn)
        results: list[CaseResult] = []
        for case in record.cases:
            try:
                actual = fn(case.payload)
            except Exception as exc:  # noqa: BLE001 - a failing case, not a crash
                results.append(
                    CaseResult(case=case.name, passed=False, error=repr(exc))
                )
                continue
            comparison = compare_outputs(
                case.expected, actual, rtol=record.rtol, atol=record.atol
            )
            results.append(
                CaseResult(
                    case=case.name,
                    passed=comparison.ok,
                    mismatches=comparison.mismatches,
                )
            )
        return ValidationReport(
            model=record.name, version=record.version, results=results
        )

    def validate(self, name: str, version: str | None = None) -> ValidationReport:
        """Re-run a published model's validation suite (anyone, later,
        anywhere the code imports — regression detection)."""
        return self._run_validation(self.get(name, version))

"""Output comparison with numeric tolerances (regression detection).

Model outputs are JSON-like structures (dicts, lists, numbers, strings).
:func:`compare_outputs` walks expected and actual together and reports
every mismatch with its path, so a validation failure says *where* the
model regressed, not just that it did.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ComparisonResult:
    """Outcome of one expected-vs-actual comparison."""

    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def add(self, path: str, message: str) -> None:
        self.mismatches.append(f"{path}: {message}")


def _numbers_close(a: float, b: float, rtol: float, atol: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(a, b, rel_tol=rtol, abs_tol=atol)


def _compare(expected: Any, actual: Any, path: str, rtol: float, atol: float,
             result: ComparisonResult) -> None:
    # bool is an int subtype; compare it exactly, not numerically.
    if isinstance(expected, bool) or isinstance(actual, bool):
        if expected is not actual:
            result.add(path, f"expected {expected!r}, got {actual!r}")
        return
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if not _numbers_close(float(expected), float(actual), rtol, atol):
            result.add(path, f"expected {expected!r}, got {actual!r}")
        return
    if type(expected) is not type(actual):
        result.add(
            path,
            f"type mismatch: expected {type(expected).__name__}, "
            f"got {type(actual).__name__}",
        )
        return
    if isinstance(expected, dict):
        for key in expected.keys() - actual.keys():
            result.add(f"{path}.{key}", "missing from actual")
        for key in actual.keys() - expected.keys():
            result.add(f"{path}.{key}", "unexpected key in actual")
        for key in expected.keys() & actual.keys():
            _compare(expected[key], actual[key], f"{path}.{key}", rtol, atol, result)
        return
    if isinstance(expected, (list, tuple)):
        if len(expected) != len(actual):
            result.add(path, f"length {len(expected)} != {len(actual)}")
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _compare(e, a, f"{path}[{i}]", rtol, atol, result)
        return
    if expected != actual:
        result.add(path, f"expected {expected!r}, got {actual!r}")


def compare_outputs(
    expected: Any, actual: Any, rtol: float = 1e-6, atol: float = 1e-9
) -> ComparisonResult:
    """Structural comparison with per-number tolerances.

    Returns a :class:`ComparisonResult`; ``result.ok`` is the verdict
    and ``result.mismatches`` lists every divergence with its JSON path.
    """
    result = ComparisonResult()
    _compare(expected, actual, "$", rtol, atol, result)
    return result

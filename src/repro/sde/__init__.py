"""Shared Development Environment (paper §II-B3).

OSPREY's SDE makes it possible "to quickly share, validate, and scale
models and workflows on HPC resources", "not based on hardware or
Infrastructure-As-A-Service products, but rather on portable workflows".
This package implements the two SDE requirements:

- **Model and workflow sharing** (§II-B3a):
  :class:`repro.sde.workflow.WorkflowSpec` — a declarative, fully
  JSON-serializable description of a workflow (task functions referenced
  by import path, work types, pool shapes, parameters) that runs
  identically wherever the code is importable — the "works for me means
  it will work for you" property at the systems level.
- **Model validation and publishing** (§II-B3b):
  :class:`repro.sde.registry.ModelRegistry` — publish a model version
  *with the data used to validate it*; anyone can re-run the validation
  suite later, and :func:`repro.sde.checks.compare_outputs` flags
  correctness regressions within numeric tolerances.
"""

from repro.sde.checks import ComparisonResult, compare_outputs
from repro.sde.registry import ModelRegistry, ModelVersion, ValidationReport
from repro.sde.workflow import WorkflowSpec, run_workflow

__all__ = [
    "compare_outputs",
    "ComparisonResult",
    "ModelRegistry",
    "ModelVersion",
    "ValidationReport",
    "WorkflowSpec",
    "run_workflow",
]

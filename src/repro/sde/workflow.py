"""Portable workflow specifications (paper §II-B3a).

A :class:`WorkflowSpec` captures everything needed to run a workflow —
task functions (as ``module:qualname`` import paths), work types, pool
shapes, and free-form parameters — in a JSON document.  Sharing the
document plus an importable package is sharing the workflow: the
receiving site materializes the same pools against its own EMEWS DB and
gets the same behaviour, which is the SDE's "standardized OSPREY
workflow structure" promise.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.eqsql import EQSQL
from repro.core.futures import as_completed
from repro.pools.config import PoolConfig
from repro.pools.handlers import PythonTaskHandler
from repro.pools.pool import ThreadedWorkerPool
from repro.util.errors import ReproError
from repro.util.serialization import json_dumps, json_loads


class WorkflowSpecError(ReproError):
    """The spec is malformed or references unresolvable code."""


def fn_reference(fn: Callable[..., Any]) -> str:
    """The portable ``module:qualname`` reference for a callable."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise WorkflowSpecError(
            f"task function {fn!r} is not importable (lambdas and local "
            "functions cannot be shared; use a module-level function)"
        )
    return f"{module}:{qualname}"


def resolve_fn(reference: str) -> Callable[..., Any]:
    """Import a callable from a ``module:qualname`` reference."""
    try:
        module_name, _, qualname = reference.partition(":")
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError, ValueError) as exc:
        raise WorkflowSpecError(f"cannot resolve task function {reference!r}: {exc}") from exc
    if not callable(obj):
        raise WorkflowSpecError(f"{reference!r} is not callable")
    return obj


@dataclass(frozen=True)
class TaskTypeSpec:
    """One work type: its task function and pool shape."""

    work_type: int
    task_fn: str  # module:qualname
    n_workers: int = 4
    batch_size: int | None = None
    threshold: int = 1
    json_io: bool = True


@dataclass
class WorkflowSpec:
    """A shareable workflow description."""

    name: str
    version: str = "1"
    task_types: list[TaskTypeSpec] = field(default_factory=list)
    parameters: dict[str, Any] = field(default_factory=dict)

    def add_task_type(
        self,
        work_type: int,
        task_fn: Callable[..., Any] | str,
        n_workers: int = 4,
        batch_size: int | None = None,
        threshold: int = 1,
        json_io: bool = True,
    ) -> "WorkflowSpec":
        """Register a work type (callables are stored by import path)."""
        if any(t.work_type == work_type for t in self.task_types):
            raise WorkflowSpecError(f"work type {work_type} already declared")
        reference = task_fn if isinstance(task_fn, str) else fn_reference(task_fn)
        resolve_fn(reference)  # fail at authoring time, not at the receiving site
        self.task_types.append(
            TaskTypeSpec(
                work_type=work_type,
                task_fn=reference,
                n_workers=n_workers,
                batch_size=batch_size,
                threshold=threshold,
                json_io=json_io,
            )
        )
        return self

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        return json_dumps(
            {
                "name": self.name,
                "version": self.version,
                "task_types": [
                    {
                        "work_type": t.work_type,
                        "task_fn": t.task_fn,
                        "n_workers": t.n_workers,
                        "batch_size": t.batch_size,
                        "threshold": t.threshold,
                        "json_io": t.json_io,
                    }
                    for t in self.task_types
                ],
                "parameters": self.parameters,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkflowSpec":
        try:
            data = json_loads(text)
            spec = cls(
                name=data["name"],
                version=data.get("version", "1"),
                parameters=dict(data.get("parameters", {})),
            )
            for t in data.get("task_types", []):
                spec.task_types.append(
                    TaskTypeSpec(
                        work_type=int(t["work_type"]),
                        task_fn=str(t["task_fn"]),
                        n_workers=int(t.get("n_workers", 4)),
                        batch_size=t.get("batch_size"),
                        threshold=int(t.get("threshold", 1)),
                        json_io=bool(t.get("json_io", True)),
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkflowSpecError(f"malformed workflow spec: {exc}") from exc
        return spec

    # -- materialization -----------------------------------------------------

    def build_pools(self, eqsql: EQSQL) -> list[ThreadedWorkerPool]:
        """Instantiate (but do not start) the spec's worker pools."""
        if not self.task_types:
            raise WorkflowSpecError("workflow declares no task types")
        pools = []
        for t in self.task_types:
            handler = PythonTaskHandler(resolve_fn(t.task_fn), json_io=t.json_io)
            config = PoolConfig(
                work_type=t.work_type,
                n_workers=t.n_workers,
                batch_size=t.batch_size,
                threshold=t.threshold,
                name=f"{self.name}-wt{t.work_type}",
            )
            pools.append(ThreadedWorkerPool(eqsql, handler, config))
        return pools


def run_workflow(
    spec: WorkflowSpec,
    eqsql: EQSQL,
    payloads: dict[int, list[str]],
    exp_id: str | None = None,
    timeout: float = 120.0,
) -> dict[int, list[str]]:
    """Execute a spec locally: start its pools, run payloads per work
    type, return results per work type (in submission order)."""
    exp_id = exp_id if exp_id is not None else f"{spec.name}-v{spec.version}"
    declared = {t.work_type for t in spec.task_types}
    unknown = set(payloads) - declared
    if unknown:
        raise WorkflowSpecError(f"payloads reference undeclared work types {sorted(unknown)}")
    pools = spec.build_pools(eqsql)
    futures_by_type = {
        work_type: eqsql.submit_tasks(exp_id, work_type, batch)
        for work_type, batch in payloads.items()
    }
    for pool in pools:
        pool.start()
    try:
        results: dict[int, list[str]] = {}
        for work_type, futures in futures_by_type.items():
            ordered = list(futures)
            for future in as_completed(ordered, delay=0.01, timeout=timeout):
                pass  # results cached on the futures
            results[work_type] = [f.result(timeout=0)[1] for f in futures]
        return results
    finally:
        for pool in pools:
            pool.stop()

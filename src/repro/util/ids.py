"""Identifier generation.

Task identifiers in the EMEWS DB are integers allocated by the database
(the paper: "the API creates a unique task identifier (an integer)").
Other entities — fabric tasks, transfers, store keys — use opaque hex
strings.  :class:`IdGenerator` provides thread-safe monotonically
increasing integers for the former; :func:`uuid_hex` for the latter.
"""

from __future__ import annotations

import threading
import uuid


class IdGenerator:
    """Thread-safe monotonically increasing integer ids.

    The first id issued is ``start``; ids never repeat within one
    generator.  Backends persist their high-water mark so ids remain
    unique across reconnects to the same database file.
    """

    def __init__(self, start: int = 1) -> None:
        if start < 0:
            raise ValueError("start must be nonnegative")
        self._next = start
        self._lock = threading.Lock()

    def next_id(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def peek(self) -> int:
        """The id that the next call to :meth:`next_id` will return."""
        with self._lock:
            return self._next

    def reserve(self, n: int) -> range:
        """Atomically reserve ``n`` consecutive ids (for batch inserts)."""
        if n < 0:
            raise ValueError("cannot reserve a negative count")
        with self._lock:
            first = self._next
            self._next += n
            return range(first, first + n)

    def bump_to(self, floor: int) -> None:
        """Ensure future ids are >= ``floor`` (used on DB reattach)."""
        with self._lock:
            if floor > self._next:
                self._next = floor


def uuid_hex() -> str:
    """A 32-character random hex identifier."""
    return uuid.uuid4().hex


def short_id(prefix: str) -> str:
    """A short, prefixed, human-scannable identifier, e.g. ``ep-3fa9c1d2``."""
    return f"{prefix}-{uuid.uuid4().hex[:8]}"

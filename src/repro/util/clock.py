"""Clock abstraction: wall-clock and virtual time behind one interface.

Every time-dependent component in the reproduction (task database
timestamps, polling loops, pool fetch delays, transfer completion) reads
time through a :class:`Clock`.  Production-style runs inject
:class:`SystemClock`; discrete-event simulation runs inject a
:class:`VirtualClock` advanced by the DES kernel (:mod:`repro.simt`),
which makes whole-workflow runs deterministic and fast — the mechanism
that lets the benchmarks regenerate the paper's Figure 3/4 series in
milliseconds.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """A source of monotonically nondecreasing timestamps, in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block (or virtually wait) for ``seconds``."""

    def deadline(self, timeout: float | None) -> float | None:
        """Convert a relative timeout to an absolute deadline, or None."""
        if timeout is None:
            return None
        return self.now() + timeout

    def expired(self, deadline: float | None) -> bool:
        """True when ``deadline`` (from :meth:`deadline`) has passed."""
        return deadline is not None and self.now() >= deadline


class SystemClock(Clock):
    """Wall-clock time via :func:`time.monotonic` with an epoch offset.

    ``time.monotonic`` guarantees ordering under NTP adjustments; the
    offset anchors values near zero at construction so traces from a run
    start at t≈0, matching how the paper's figures present time.
    """

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A manually advanced clock for discrete-event simulation.

    ``sleep`` raises by default: components running under virtual time
    must never block a real thread — the DES kernel owns the advancement
    of time.  The kernel (or tests) move time with :meth:`advance_to`.
    Thread-safe so that trace collectors may read ``now`` concurrently.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        raise RuntimeError(
            "VirtualClock cannot sleep a real thread; use the DES kernel's "
            "timeout events to wait in virtual time"
        )

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Moving backwards is a programming error in the event loop and is
        rejected to protect the monotonicity invariant that timestamps
        throughout the system rely on.
        """
        with self._lock:
            if t < self._now:
                raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
            self._now = float(t)

    def advance(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"negative advance: {dt}")
        with self._lock:
            self._now += dt

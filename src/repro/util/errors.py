"""Exception hierarchy for the OSPREY reproduction.

Every component raises subclasses of :class:`ReproError` so callers can
catch platform errors distinctly from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TimeoutError_(ReproError):
    """An operation exceeded its timeout.

    Named with a trailing underscore to avoid shadowing the builtin;
    it still subclasses :class:`ReproError` only, because platform code
    treats timeouts as recoverable polling outcomes, not as fatal errors.
    """


class PayloadTooLargeError(ReproError):
    """A payload exceeded a transport's size limit.

    The compute fabric caps task inputs/outputs (the paper cites funcX's
    10 MB limit); larger data must move out-of-band through the data
    sharing service (:mod:`repro.store` / :mod:`repro.transfer`).
    """

    def __init__(self, size: int, limit: int, what: str = "payload") -> None:
        super().__init__(
            f"{what} of {size} bytes exceeds transport limit of {limit} bytes; "
            "stage it through the data sharing service instead"
        )
        self.size = size
        self.limit = limit


class SerializationError(ReproError):
    """An object could not be serialized or deserialized."""


class AuthenticationError(ReproError):
    """A fabric request carried a missing, invalid, or expired credential."""


class AuthorizationError(AuthenticationError):
    """A valid identity attempted an operation it is not permitted."""


class NotFoundError(ReproError):
    """A referenced entity (task, endpoint, key, job) does not exist."""


class InvalidStateError(ReproError):
    """An operation is not valid in the entity's current state."""


class CancelledError_(ReproError):
    """The awaited work was cancelled before producing a result."""


class ConnectionBrokenError(ReproError):
    """A service connection died mid-request and the request's fate is
    unknown.

    Raised by :class:`repro.core.service_client.RemoteTaskStore` when a
    non-idempotent RPC fails after the request may have reached the
    server: retrying could double-apply it, so the client tears the
    socket down, surfaces this, and lets the caller (or the lease
    reaper, for popped tasks) decide.  The next call on the store
    reconnects automatically.
    """


class ServiceUnavailableError(ReproError):
    """The EMEWS service could not be reached after exhausting retries."""


class EndpointUnavailableError(ReproError):
    """The target fabric endpoint is offline or unregistered."""


class SchedulerError(ReproError):
    """A cluster scheduler rejected or failed a job operation."""


class TransferError(ReproError):
    """A wide-area data transfer failed permanently."""


class DataError(ReproError):
    """A data ingestion/curation pipeline rejected its input."""

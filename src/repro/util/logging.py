"""Structured logging helpers (the DESIGN.md §3 logging utility).

All repro diagnostics flow through loggers beneath the ``repro`` root:
``get_logger(__name__)`` in a module, :func:`log_event` at call sites.
An *event* is a dotted name plus key=value fields — grep-able as text,
machine-parseable as JSON lines when configured with ``json_lines=True``
— so tracer/metrics diagnostics ("trace saved", "spans dropped") read
the same way as any other subsystem's.

The library attaches no handlers on import (standard library-style
hygiene): applications and the CLI call :func:`configure_logging`;
everything stays silent otherwise.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

#: The root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

#: Attribute carrying structured fields on a LogRecord.
_FIELDS_ATTR = "repro_fields"


def _active_trace() -> tuple[str, str] | None:
    """(trace_id, span_id) of the innermost open span, if any.

    Formatters run synchronously on the emitting thread, so the
    tracer's thread-local span stack identifies the span this record
    was logged under — that's the log↔trace correlation.  Lazily
    imported to keep :mod:`repro.util` free of telemetry dependencies
    at import time, and near-free when tracing is disabled (one
    attribute check).
    """
    try:
        from repro.telemetry.tracing import get_tracer
    except ImportError:  # pragma: no cover - telemetry always ships
        return None
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    context = tracer.current_context()
    if context is None:
        return None
    return context.trace_id, context.span_id


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("repro.telemetry.export")`` and
    ``get_logger("telemetry.export")`` name the same logger, so modules
    can pass ``__name__`` unchanged.
    """
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return json.dumps(text)
    return text


class StructuredFormatter(logging.Formatter):
    """``time level event key=value ...`` text lines."""

    def format(self, record: logging.LogRecord) -> str:
        base = f"{self.formatTime(record)} {record.levelname} {record.getMessage()}"
        fields: dict[str, Any] | None = getattr(record, _FIELDS_ATTR, None)
        if fields:
            pairs = " ".join(f"{k}={_format_value(v)}" for k, v in fields.items())
            base = f"{base} {pairs}"
        trace = _active_trace()
        if trace is not None:
            base = f"{base} trace_id={trace[0]} span_id={trace[1]}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ``{"level", "logger", "event", ...}``."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "time": self.formatTime(record),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields: dict[str, Any] | None = getattr(record, _FIELDS_ATTR, None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, value)
        trace = _active_trace()
        if trace is not None:
            payload.setdefault("trace_id", trace[0])
            payload.setdefault("span_id", trace[1])
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_logging(
    level: int | str = logging.INFO,
    stream: TextIO | None = None,
    json_lines: bool = False,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: reconfiguring replaces the previously attached handler
    rather than stacking duplicates.  Returns the root logger.
    """
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLinesFormatter() if json_lines else StructuredFormatter())
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    root.propagate = False
    return root


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Emit one structured event: a dotted name plus key=value fields.

    ``log_event(log, "trace.saved", path=path, spans=n)`` renders as
    ``... INFO trace.saved path=trace.json spans=412`` (or as a JSON
    line under ``json_lines=True``).  Cheap when the level is off: the
    usual ``isEnabledFor`` short-circuit applies.
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={_FIELDS_ATTR: fields})

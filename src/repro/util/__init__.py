"""Shared utilities: clocks, identifiers, serialization, errors.

These are the lowest layer of the OSPREY reproduction; every other
subpackage may depend on :mod:`repro.util` but :mod:`repro.util` depends
on nothing else in the package.
"""

from repro.util.clock import Clock, SystemClock, VirtualClock
from repro.util.errors import (
    ReproError,
    TimeoutError_,
    PayloadTooLargeError,
    SerializationError,
    AuthenticationError,
    NotFoundError,
    InvalidStateError,
)
from repro.util.ids import IdGenerator, uuid_hex
from repro.util.serialization import (
    json_dumps,
    json_loads,
    encode_object,
    decode_object,
    payload_size,
)

__all__ = [
    "Clock",
    "SystemClock",
    "VirtualClock",
    "ReproError",
    "TimeoutError_",
    "PayloadTooLargeError",
    "SerializationError",
    "AuthenticationError",
    "NotFoundError",
    "InvalidStateError",
    "IdGenerator",
    "uuid_hex",
    "json_dumps",
    "json_loads",
    "encode_object",
    "decode_object",
    "payload_size",
]

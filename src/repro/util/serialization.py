"""Serialization helpers with explicit size accounting.

Task payloads in OSPREY are JSON strings ("typically a JSON formatted
string, either a JSON dictionary or in less complex cases a simple JSON
list").  The compute fabric additionally moves arbitrary Python objects
(functions, arguments, results) and enforces a payload size cap, so
object encoding reports its encoded size for limit checks.

Pickle is used only for fabric-internal object transport between
components we control, mirroring funcX's use of serialized callables.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import pickle
from typing import Any

from repro.util.errors import SerializationError


def json_dumps(obj: Any) -> str:
    """Serialize ``obj`` to a compact JSON string.

    Raises :class:`SerializationError` for non-JSON-serializable input so
    callers surface payload bugs at submission time, not at execution.
    """
    try:
        return json.dumps(obj, separators=(",", ":"), sort_keys=False)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"payload is not JSON-serializable: {exc}") from exc


def json_loads(text: str) -> Any:
    """Deserialize a JSON string, wrapping errors."""
    try:
        return json.loads(text)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"invalid JSON payload: {exc}") from exc


def canonical_dumps(obj: Any) -> str:
    """Serialize ``obj`` to *canonical* JSON: one byte string per value.

    Keys are sorted recursively, separators are compact, and output is
    ASCII-only, so two structurally equal values — built in any key
    order, in any process, on any platform — serialize identically.
    This is the normalization under the content-addressed result cache:
    the cache key must not depend on dict insertion order or interning
    accidents.  NaN/Infinity are rejected (they are not JSON and their
    textual form is not canonical across encoders).
    """
    try:
        return json.dumps(
            obj,
            separators=(",", ":"),
            sort_keys=True,
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"value is not canonically JSON-serializable: {exc}"
        ) from exc


def cache_key(eq_type: int, payload: str) -> str:
    """Content address of one task: sha-256 over ``(eq_type, payload)``.

    The payload is parsed as JSON and re-serialized canonically when
    possible, so submissions differing only in dict key order or
    whitespace share a key; a payload that is not JSON (e.g. the
    ``EQ_STOP`` sentinel) is hashed as raw text.  The work type is
    length-prefixed into the digest so ``(1, "2x")`` and ``(12, "x")``
    can never collide.
    """
    try:
        canonical = canonical_dumps(json.loads(payload))
    except (SerializationError, ValueError):
        canonical = payload
    h = hashlib.sha256()
    type_part = str(int(eq_type)).encode("ascii")
    h.update(len(type_part).to_bytes(4, "big"))
    h.update(type_part)
    h.update(canonical.encode("utf-8"))
    return h.hexdigest()


def encode_object(obj: Any) -> bytes:
    """Encode an arbitrary Python object for fabric transport."""
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pickle raises many concrete types
        raise SerializationError(f"object is not picklable: {exc}") from exc


def decode_object(data: bytes) -> Any:
    """Decode an object previously produced by :func:`encode_object`."""
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise SerializationError(f"corrupt object encoding: {exc}") from exc


def encode_object_b64(obj: Any) -> str:
    """Encode an object to a base64 string (for JSON-framed transports)."""
    return base64.b64encode(encode_object(obj)).decode("ascii")


def decode_object_b64(text: str) -> Any:
    """Inverse of :func:`encode_object_b64`."""
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise SerializationError(f"invalid base64 object encoding: {exc}") from exc
    return decode_object(raw)


def payload_size(payload: Any) -> int:
    """Size in bytes of a payload as it would cross a transport.

    Strings are measured UTF-8 encoded; bytes as-is; other objects by
    their pickle encoding.  Used by the fabric to enforce its input /
    output caps (the 10 MB funcX limit the paper works around with the
    data sharing service).
    """
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    return len(encode_object(payload))


class SizeCountingWriter(io.RawIOBase):
    """A write-only stream that counts bytes without storing them.

    Useful to measure the serialized size of very large objects without
    materializing a second copy in memory.
    """

    def __init__(self) -> None:
        self.count = 0

    def writable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def write(self, b: Any) -> int:
        n = len(b)
        self.count += n
        return n


def pickled_size(obj: Any) -> int:
    """Serialized size of ``obj`` computed streamingly (no copy kept)."""
    writer = SizeCountingWriter()
    try:
        pickle.dump(obj, writer, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SerializationError(f"object is not picklable: {exc}") from exc
    return writer.count

"""Decorrelated-jitter backoff for polling fallbacks.

Fixed-delay polling synchronizes: N MEs started by the same scheduler
all sleep ``delay`` and all wake together, hammering the service in
lockstep forever.  Decorrelated jitter (the AWS architecture-blog
variant) breaks that: each sleep is drawn from
``uniform(base, 3 * previous)`` and clamped to a cap, so independent
pollers drift apart within a few attempts while the expected delay
stays near the configured one early on and growth is bounded.

Only the *fallback* paths use this — stores with long-poll support
(:attr:`repro.db.backend.TaskStore.supports_wait`) block server-side
and rarely sleep at all.
"""

from __future__ import annotations

import random


def poll_cap(delay: float) -> float:
    """The default max-delay cap for a poll loop configured with ``delay``.

    Grows a few binary orders above the configured delay but never past
    one second: polling loops back off enough to decorrelate without
    turning a liveness check into a multi-second stall.
    """
    return max(delay, min(1.0, delay * 16.0))


class DecorrelatedJitter:
    """Stateful sleep-duration source: ``min(cap, uniform(base, 3*prev))``.

    ``reset()`` after a successful attempt so the next dry spell starts
    from ``base`` again.  Not thread-safe; use one instance per loop.
    """

    def __init__(
        self,
        base: float,
        cap: float | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        self.base = base
        self.cap = poll_cap(base) if cap is None else max(cap, base)
        self._rng = rng if rng is not None else random.Random()
        self._prev = base

    def next(self) -> float:
        """The next sleep duration (advances the internal state)."""
        value = min(self.cap, self._rng.uniform(self.base, self._prev * 3.0))
        self._prev = value
        return value

    def reset(self) -> None:
        """Start the next dry spell from ``base`` again."""
        self._prev = self.base

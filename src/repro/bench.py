"""Benchmark-regression harness: curated benches, versioned results.

``python -m repro bench`` runs a small curated subset of the repo's
performance surface — DB backend throughput, remote-store RPC, service
round trips, end-to-end pool throughput — and writes one
schema-versioned ``BENCH_<name>.json`` per bench, stamped with an
environment fingerprint.  Given a committed baseline it compares each
metric within a tolerance and exits nonzero on regression, which is the
guard-rail the paper's scaling claims need: a refactor that silently
halves tasks/s fails the harness, not a reviewer's eyeball.

Result schema (``SCHEMA_VERSION`` = 1)::

    {"schema_version": 1, "name": "...", "smoke": bool,
     "unix_time": float, "env": {...}, "params": {...},
     "metrics": {"<metric>": float, ...}}

Metric-direction convention: names ending ``_per_s`` are
higher-is-better; names ending ``_seconds`` are lower-is-better.  The
comparison only fails on change in the *bad* direction beyond the
tolerance — getting faster never fails.

Pure stdlib + the repo itself (no pytest-benchmark), so the harness runs
anywhere the package imports — including the CI ``bench-smoke`` job and
a login node.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from collections.abc import Callable, Iterable
from pathlib import Path

SCHEMA_VERSION = 1

#: Default relative tolerance: fail only when a metric degrades by more
#: than this fraction vs the baseline.  Generous because CI machines and
#: laptops differ wildly; tighten per-invocation with ``--tolerance``.
DEFAULT_TOLERANCE = 0.5

_REQUIRED_KEYS = ("schema_version", "name", "smoke", "unix_time", "env", "metrics")


# ---------------------------------------------------------------------------
# result plumbing


def environment_fingerprint() -> dict:
    """Where this result came from — enough to judge comparability."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def make_result(
    name: str, metrics: dict[str, float], smoke: bool, params: dict
) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "smoke": smoke,
        "unix_time": time.time(),
        "env": environment_fingerprint(),
        "params": params,
        "metrics": {k: float(v) for k, v in metrics.items()},
    }


def validate_result(obj: object) -> list[str]:
    """Schema violations in one result object ([] when valid)."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"result must be an object, got {type(obj).__name__}"]
    for key in _REQUIRED_KEYS:
        if key not in obj:
            errors.append(f"missing key {key!r}")
    if errors:
        return errors
    if obj["schema_version"] != SCHEMA_VERSION:
        errors.append(
            f"schema_version {obj['schema_version']!r} != {SCHEMA_VERSION}"
        )
    if not isinstance(obj["name"], str) or not obj["name"]:
        errors.append("name must be a non-empty string")
    if not isinstance(obj["metrics"], dict) or not obj["metrics"]:
        errors.append("metrics must be a non-empty object")
    else:
        for metric, value in obj["metrics"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"metric {metric!r} must be numeric, got {value!r}")
    if not isinstance(obj["env"], dict):
        errors.append("env must be an object")
    return errors


def write_results(results: Iterable[dict], out_dir: str | Path) -> list[Path]:
    """One ``BENCH_<name>.json`` per result; returns the paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for result in results:
        path = out_dir / f"BENCH_{result['name']}.json"
        path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def metric_direction(metric: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 if unknown
    (unknown metrics are informational and never fail the comparison)."""
    if metric.endswith(("_per_s", "_speedup", "_reduction")):
        return 1
    if metric.endswith("_seconds"):
        return -1
    return 0


def compare_result(
    result: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Regression messages for one result vs its baseline ([] if clean)."""
    problems: list[str] = []
    base_metrics = baseline.get("metrics", {})
    for metric, value in result["metrics"].items():
        if metric not in base_metrics:
            continue
        base = float(base_metrics[metric])
        direction = metric_direction(metric)
        if direction == 0 or base == 0:
            continue
        change = (float(value) - base) / abs(base)
        if direction * change < -tolerance:
            problems.append(
                f"{result['name']}.{metric}: {value:.4g} vs baseline "
                f"{base:.4g} ({change:+.1%}, tolerance {tolerance:.0%})"
            )
    return problems


# ---------------------------------------------------------------------------
# the curated benches


def _rate(n: int, elapsed: float) -> float:
    return n / elapsed if elapsed > 0 else 0.0


def bench_db_throughput(smoke: bool = False) -> dict:
    """Raw backend ops/s: create, pop_out, report, for both backends.

    The report phase uses ``report_batch`` in pop-sized chunks — the
    store-level hot path after the batching overhaul (the pool's shared
    reporter and the service's batch RPC both land here); the per-item
    ``report`` rate is kept as ``<label>_report_single_per_s``.
    """
    from repro.db import MemoryTaskStore, SqliteTaskStore

    n = 200 if smoke else 2000
    metrics: dict[str, float] = {}
    for label, store in (
        ("memory", MemoryTaskStore()),
        ("sqlite", SqliteTaskStore(":memory:")),
    ):
        t0 = time.perf_counter()
        ids = store.create_tasks("bench", 0, ["{}"] * n)
        t1 = time.perf_counter()
        popped = []
        while len(popped) < n:
            popped.extend(store.pop_out(0, n=50))
        t2 = time.perf_counter()
        for i in range(0, n, 50):
            store.report_batch(
                [(tid, 0, "{}") for tid, _payload in popped[i : i + 50]]
            )
        t3 = time.perf_counter()
        assert len(ids) == n
        # Second round for the per-item report rate (the first round's
        # tasks are already COMPLETE).
        ids2 = store.create_tasks("bench2", 0, ["{}"] * n)
        popped2 = []
        while len(popped2) < n:
            popped2.extend(store.pop_out(0, n=50))
        t4 = time.perf_counter()
        for eq_task_id, _payload in popped2:
            store.report(eq_task_id, 0, "{}")
        t5 = time.perf_counter()
        assert len(ids2) == n
        metrics[f"{label}_create_per_s"] = _rate(n, t1 - t0)
        metrics[f"{label}_pop_per_s"] = _rate(n, t2 - t1)
        metrics[f"{label}_report_per_s"] = _rate(n, t3 - t2)
        metrics[f"{label}_report_single_per_s"] = _rate(n, t5 - t4)
        store.close()
    return make_result("db_throughput", metrics, smoke, {"n_tasks": n})


def bench_store_rpc(smoke: bool = False) -> dict:
    """RemoteTaskStore over loopback: the full create → pop → report
    cycle through the TCP service, plus stats() round-trip time."""
    from repro.core.service import TaskService
    from repro.core.service_client import RemoteTaskStore
    from repro.db import MemoryTaskStore

    n = 50 if smoke else 500
    service = TaskService(MemoryTaskStore(), port=0)
    service.start()
    try:
        host, port = service.address
        remote = RemoteTaskStore(host, port)
        try:
            t0 = time.perf_counter()
            remote.create_tasks("bench", 0, ["{}"] * n)
            t1 = time.perf_counter()
            popped = []
            while len(popped) < n:
                popped.extend(remote.pop_out(0, n=50))
            t2 = time.perf_counter()
            for eq_task_id, _payload in popped:
                remote.report(eq_task_id, 0, "{}")
            t3 = time.perf_counter()
            # stats before the second task round so its RTT is measured
            # over the same store population as the committed baseline.
            n_stats = 20 if smoke else 100
            t4 = time.perf_counter()
            for _ in range(n_stats):
                remote.stats()
            t5 = time.perf_counter()
            # Batched report round trip: the same n results in n/50
            # report_batch RPCs (fresh tasks — the first round's are
            # already COMPLETE and would dedup to no-ops).
            remote.create_tasks("bench2", 0, ["{}"] * n)
            popped2 = []
            while len(popped2) < n:
                popped2.extend(remote.pop_out(0, n=50))
            t6 = time.perf_counter()
            for i in range(0, n, 50):
                remote.report_batch(
                    [(tid, 0, "{}") for tid, _payload in popped2[i : i + 50]]
                )
            t7 = time.perf_counter()
            metrics = {
                "create_per_s": _rate(n, t1 - t0),
                "pop_per_s": _rate(n, t2 - t1),
                "report_per_s": _rate(n, t3 - t2),
                "report_batch_per_s": _rate(n, t7 - t6),
                "stats_rtt_seconds": (t5 - t4) / n_stats,
            }
        finally:
            remote.close()
    finally:
        service.stop()
    return make_result("store_rpc", metrics, smoke, {"n_tasks": n})


def bench_service_rpc(smoke: bool = False) -> dict:
    """Service request throughput on the cheapest call (queue length):
    lockstep (one round trip per request) vs pipelined (64 in flight)."""
    from repro.core.service import TaskService
    from repro.core.service_client import RemoteTaskStore
    from repro.db import MemoryTaskStore

    n = 100 if smoke else 2000
    service = TaskService(MemoryTaskStore(), port=0)
    service.start()
    try:
        host, port = service.address
        remote = RemoteTaskStore(host, port)
        try:
            remote.queue_in_length()  # connect + handshake outside the clock
            t0 = time.perf_counter()
            for _ in range(n):
                remote.queue_in_length()
            t1 = time.perf_counter()
            t2 = time.perf_counter()
            with remote.pipeline(max_in_flight=64) as pipe:
                calls = [
                    pipe.call("queue_in_length", {}) for _ in range(n)
                ]
            assert all(c.result() == 0 for c in calls)
            t3 = time.perf_counter()
            metrics = {
                "requests_per_s": _rate(n, t1 - t0),
                "rtt_seconds": (t1 - t0) / n,
                "pipelined_requests_per_s": _rate(n, t3 - t2),
            }
        finally:
            remote.close()
    finally:
        service.stop()
    return make_result("service_rpc", metrics, smoke, {"n_requests": n})


def bench_pool_throughput(
    smoke: bool = False, with_monitoring: bool = False
) -> dict:
    """End-to-end tasks/s through a threaded pool on trivial tasks.

    With ``with_monitoring`` the same workload runs behind a service
    carrying an active StoreSampler — the number the <5% monitoring
    overhead budget is judged against.
    """
    from repro.core import EQSQL, as_completed
    from repro.db import MemoryTaskStore
    from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
    from repro.telemetry.metrics import MetricsRegistry

    n = 50 if smoke else 400
    store = MemoryTaskStore()
    sampler = None
    if with_monitoring:
        from repro.telemetry.monitor import StoreSampler

        sampler = StoreSampler(store, metrics=MetricsRegistry(), interval=0.05)
        sampler.start()
    eq = EQSQL(store)
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(lambda d: d),
        PoolConfig(work_type=0, n_workers=4, batch_size=8, poll_delay=0.001),
    ).start()
    try:
        t0 = time.perf_counter()
        futures = eq.submit_tasks("bench", 0, ["{}"] * n)
        done = list(as_completed(futures, delay=0.001, timeout=120))
        t1 = time.perf_counter()
        assert len(done) == n
    finally:
        pool.stop()
        if sampler is not None:
            sampler.stop()
        eq.close()
    name = "pool_throughput_monitored" if with_monitoring else "pool_throughput"
    return make_result(
        name,
        {"tasks_per_s": _rate(n, t1 - t0)},
        smoke,
        {"n_tasks": n, "n_workers": 4, "with_monitoring": with_monitoring},
    )


def bench_journal_overhead(smoke: bool = False) -> dict:
    """Flight-recorder cost on the store report hot path.

    Runs the memory backend's per-item ``report`` loop (the pool's
    result path) twice over identical workloads: once with a journal
    attached but disabled — the default production configuration, which
    must stay free — and once recording.  ``disabled_report_per_s`` is
    the number the "near-zero cost when off" claim is judged against;
    ``enabled_report_per_s`` prices turning forensics on.
    """
    from repro.db import MemoryTaskStore
    from repro.telemetry.journal import Journal

    n = 200 if smoke else 2000
    metrics: dict[str, float] = {}
    for label, enabled in (("disabled", False), ("enabled", True)):
        journal = Journal(enabled=enabled, capacity=8 * n)
        store = MemoryTaskStore(journal=journal)
        store.create_tasks("bench", 0, ["{}"] * n)
        popped = []
        while len(popped) < n:
            popped.extend(store.pop_out(0, n=50))
        t0 = time.perf_counter()
        for eq_task_id, _payload in popped:
            store.report(eq_task_id, 0, "{}")
        t1 = time.perf_counter()
        assert len(popped) == n
        metrics[f"{label}_report_per_s"] = _rate(n, t1 - t0)
        store.close()
        journal.close()
    return make_result("journal_overhead", metrics, smoke, {"n_tasks": n})


def bench_task_profile_overhead(smoke: bool = False) -> dict:
    """Per-task profiling cost on the pool's execution hot path.

    The same no-op workload runs through a threaded pool twice: with
    ``profile_tasks`` off (the default — must stay free) and on.  The
    enabled number prices a getrusage + two clock reads per task plus
    the profile dict riding each report; the ISSUE's budget is <5%
    overhead on no-op work, judged on ``enabled_tasks_per_s`` vs
    ``disabled_tasks_per_s`` (``overhead_fraction`` is informational).
    """
    from repro.core import EQSQL, as_completed
    from repro.db import MemoryTaskStore
    from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool

    n = 50 if smoke else 400
    metrics: dict[str, float] = {}
    for label, profiled in (("disabled", False), ("enabled", True)):
        eq = EQSQL(MemoryTaskStore())
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: d),
            PoolConfig(
                work_type=0, n_workers=4, batch_size=8, poll_delay=0.001,
                profile_tasks=profiled,
            ),
        ).start()
        try:
            t0 = time.perf_counter()
            futures = eq.submit_tasks("bench", 0, ["{}"] * n)
            done = list(as_completed(futures, delay=0.001, timeout=120))
            t1 = time.perf_counter()
            assert len(done) == n
        finally:
            pool.stop()
            eq.close()
        metrics[f"{label}_tasks_per_s"] = _rate(n, t1 - t0)
    if metrics["disabled_tasks_per_s"] > 0:
        metrics["overhead_fraction"] = max(
            0.0,
            1.0 - metrics["enabled_tasks_per_s"] / metrics["disabled_tasks_per_s"],
        )
    return make_result(
        "task_profile_overhead", metrics, smoke, {"n_tasks": n, "n_workers": 4}
    )


class _PollingOnlyStore:
    """A store wrapper that hides ``supports_wait`` (and ``wait``).

    The dispatch-latency bench runs the same workload twice; this
    wrapper forces the sleep-polling fallback everywhere so the two
    modes differ only in dispatch mechanism, not store implementation.
    """

    supports_wait = False

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def bench_dispatch_latency(smoke: bool = False) -> dict:
    """Submit→run_start latency through an idle pool, polling vs wait.

    One task at a time against an otherwise-idle 2-worker pool; latency
    is ``run_start.time - enqueue.time`` from the shared journal (both
    stamped by the same EQSQL clock).  The polling mode wraps the store
    to hide ``supports_wait``, so the fetcher sleeps ``poll_delay``
    between empty queries and dispatch costs O(poll interval); the wait
    mode long-polls and costs O(wake + handoff).  ``p50_speedup`` is the
    headline: the event-driven path must dispatch ≥ 5× faster at the
    default ``poll_delay``.
    """
    from repro.core import EQSQL
    from repro.db import MemoryTaskStore
    from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
    from repro.telemetry.journal import EV_ENQUEUE, EV_RUN_START, Journal

    n = 8 if smoke else 30
    metrics: dict[str, float] = {}
    for label, wrap in (("polling", True), ("wait", False)):
        journal = Journal(enabled=True, capacity=16 * n)
        backing = MemoryTaskStore(journal=journal)
        store = _PollingOnlyStore(backing) if wrap else backing
        eq = EQSQL(store)
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: d),
            # Default poll_delay / fetch_wait: the bench prices the
            # dispatch mechanisms exactly as a stock pool ships.
            PoolConfig(work_type=0, n_workers=2),
            journal=journal,
        ).start()
        try:
            for _ in range(n):
                future = eq.submit_task("bench", 0, "{}")
                status, _payload = future.result(delay=0.002, timeout=30)
                assert status.name == "SUCCESS"
                # Let the fetcher return to its idle wait/sleep so the
                # next submission measures dispatch from a quiet pool.
                time.sleep(0.03)
        finally:
            pool.stop()
            eq.close()
        latencies: list[float] = []
        for record in journal.records():
            if record.event == EV_ENQUEUE:
                enqueued = record.time
            elif record.event == EV_RUN_START:
                latencies.append(record.time - enqueued)
        journal.close()
        assert len(latencies) == n
        latencies.sort()
        metrics[f"{label}_p50_seconds"] = _percentile(latencies, 0.50)
        metrics[f"{label}_p99_seconds"] = _percentile(latencies, 0.99)
    if metrics["wait_p50_seconds"] > 0:
        metrics["p50_speedup"] = (
            metrics["polling_p50_seconds"] / metrics["wait_p50_seconds"]
        )
    return make_result(
        "dispatch_latency", metrics, smoke, {"n_tasks": n, "n_workers": 2}
    )


def bench_idle_rpc_rate(smoke: bool = False) -> dict:
    """RPCs per second from one idle fetcher against a live service.

    Replays the fetch loop's idle behaviour over a fixed window in both
    modes: sleep-polling (one non-blocking ``pop_out`` per default
    ``poll_delay``) and long-polling (one ``pop_out(wait=fetch_wait)``
    that blocks server-side).  RPCs are counted from the client's own
    metrics registry.  ``rpc_reduction`` is the headline: an idle fleet
    must cost > 10× fewer requests per second event-driven than polling.
    """
    from repro.core.service import TaskService
    from repro.core.service_client import RemoteTaskStore
    from repro.db import MemoryTaskStore
    from repro.pools import PoolConfig
    from repro.telemetry.metrics import MetricsRegistry

    defaults = PoolConfig(work_type=0)
    poll_delay = defaults.poll_delay
    fetch_wait = 0.1 if smoke else defaults.fetch_wait
    window = 0.5 if smoke else 3.0
    service = TaskService(MemoryTaskStore(), port=0)
    service.start()
    try:
        host, port = service.address
        registry = MetricsRegistry()
        remote = RemoteTaskStore(host, port, metrics=registry)
        rpcs = registry.counter("service.client.rpcs")
        try:
            metrics: dict[str, float] = {}
            for label, wait in (("polling", None), ("wait", fetch_wait)):
                before = rpcs.value
                t0 = time.perf_counter()
                deadline = t0 + window
                while time.perf_counter() < deadline:
                    assert remote.pop_out(0, n=4, wait=wait) == []
                    if wait is None:
                        time.sleep(poll_delay)
                elapsed = time.perf_counter() - t0
                metrics[f"{label}_rpc_rate"] = _rate(
                    int(rpcs.value - before), elapsed
                )
        finally:
            remote.close()
    finally:
        service.stop()
    if metrics["wait_rpc_rate"] > 0:
        metrics["rpc_reduction"] = (
            metrics["polling_rpc_rate"] / metrics["wait_rpc_rate"]
        )
    return make_result(
        "idle_rpc_rate",
        metrics,
        smoke,
        {"window_seconds": window, "poll_delay": poll_delay,
         "fetch_wait": fetch_wait},
    )


def bench_telemetry_push(smoke: bool = False) -> dict:
    """Fleet telemetry RPC throughput: envelope pushes/s over loopback.

    A TelemetryPusher drives ``push_once`` in a tight loop against a
    live service's ``telemetry`` RPC — the heartbeat is normally one
    push every ~10 s per worker, so any number here means the plane is
    invisible at fleet scale; the bench guards the registry's ingest
    path (sanitize + sweep + aggregate under one lock) from regressing.
    """
    from repro.core.service import TaskService
    from repro.core.service_client import RemoteTaskStore
    from repro.db import MemoryTaskStore
    from repro.telemetry.fleet import TelemetryPusher

    n = 50 if smoke else 1000
    service = TaskService(MemoryTaskStore(), port=0)
    service.start()
    try:
        host, port = service.address
        remote = RemoteTaskStore(host, port)
        try:
            profiles = [
                {"task_id": i, "work_type": 0, "wall_seconds": 0.01,
                 "cpu_seconds": 0.009}
                for i in range(8)
            ]
            pusher = TelemetryPusher(
                worker_id="bench-pool",
                role="pool",
                sink=remote.telemetry,
                interval=10.0,
                envelope_fn=lambda: {
                    "busy_fraction": 0.5, "n_workers": 4, "owned": 8,
                    "tasks_completed": 100, "profiles": profiles,
                },
            )
            assert pusher.push_once()  # connect outside the clock
            t0 = time.perf_counter()
            for _ in range(n):
                pusher.push_once()
            t1 = time.perf_counter()
            assert pusher.push_errors == 0
        finally:
            remote.close()
    finally:
        service.stop()
    return make_result(
        "telemetry_push",
        {"pushes_per_s": _rate(n, t1 - t0), "push_rtt_seconds": (t1 - t0) / n},
        smoke,
        {"n_pushes": n, "profiles_per_envelope": len(profiles)},
    )


def bench_cache_hit_latency(smoke: bool = False) -> dict:
    """Cache-hit submit→result latency vs the cold execution round trip.

    Cold: submit a distinct payload through a live threaded pool and
    block for its result — pays create, pop, execute, report, and the
    result pop.  Hit: resubmit the same payloads with ``cache="read"``
    — the future returns already resolved from one ``cache_get``.  The
    ISSUE's acceptance bar is ``hit_vs_cold_speedup`` ≥ 10×.
    """
    from repro.core import EQSQL
    from repro.db import MemoryTaskStore
    from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool

    n = 20 if smoke else 200
    # A fixed per-task cost stands in for model execution — 1 ms is
    # *conservative*: real epi simulations run for seconds, so the
    # measured speedup is a floor on the production win.
    task_cost = 0.001

    def handler(data):
        time.sleep(task_cost)
        return data

    eq = EQSQL(MemoryTaskStore(cache_capacity=2 * n))
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(handler),
        PoolConfig(work_type=0, n_workers=4, batch_size=8, poll_delay=0.001),
    ).start()
    payloads = ['{"point": %d}' % i for i in range(n)]
    try:
        t0 = time.perf_counter()
        for payload in payloads:
            future = eq.submit_task("bench", 0, payload, cache="readwrite")
            status, _result = future.result(delay=0.001, timeout=60)
            assert status.name == "SUCCESS"
        t1 = time.perf_counter()
        cold = (t1 - t0) / n

        t0 = time.perf_counter()
        for payload in payloads:
            future = eq.submit_task("bench", 0, payload, cache="read")
            status, _result = future.result(delay=0.001, timeout=60)
            assert status.name == "SUCCESS"
        t1 = time.perf_counter()
        hit = (t1 - t0) / n
        stats = eq.cache_stats()
        assert stats["hits"] >= n, stats
    finally:
        pool.stop()
        eq.close()
    return make_result(
        "cache_hit_latency",
        {
            "cold_roundtrip_seconds": cold,
            "hit_roundtrip_seconds": hit,
            "hit_vs_cold_speedup": cold / hit if hit > 0 else 0.0,
        },
        smoke,
        {"n_tasks": n, "n_workers": 4, "task_cost_seconds": task_cost},
    )


def bench_repeated_sweep(smoke: bool = False) -> dict:
    """A parameter sweep re-run with duplicate points, cached vs not.

    Sweeps ``n_points`` distinct payloads ``n_repeats`` times.  Uncached,
    every point executes every repeat; with ``cache="readwrite"`` only
    the first repeat executes — later repeats are served from the cache
    (or coalesce in flight) and skip the pool entirely.
    ``duplicate_skip_reduction`` is the executed-work saved
    (``(n_repeats - 1) / n_repeats`` when the cache is perfect).
    """
    import threading

    from repro.core import EQSQL, as_completed
    from repro.db import MemoryTaskStore
    from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool

    n_points = 10 if smoke else 60
    n_repeats = 3
    total = n_points * n_repeats
    payloads = ['{"point": %d}' % i for i in range(n_points)]
    metrics: dict[str, float] = {}
    executed_by_mode: dict[str, int] = {}
    for label, cache in (("uncached", "off"), ("cached", "readwrite")):
        executed = 0
        lock = threading.Lock()

        def handler(data, _lock=lock):
            nonlocal executed
            with _lock:
                executed += 1
            return data

        eq = EQSQL(MemoryTaskStore(cache_capacity=2 * n_points))
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(handler),
            PoolConfig(work_type=0, n_workers=4, batch_size=8, poll_delay=0.001),
        ).start()
        try:
            t0 = time.perf_counter()
            for _repeat in range(n_repeats):
                futures = eq.submit_tasks("bench", 0, payloads, cache=cache)
                done = list(as_completed(futures, delay=0.001, timeout=120))
                assert len(done) == n_points
            t1 = time.perf_counter()
        finally:
            pool.stop()
            eq.close()
        metrics[f"{label}_sweep_per_s"] = _rate(total, t1 - t0)
        executed_by_mode[label] = executed
    assert executed_by_mode["uncached"] == total
    assert executed_by_mode["cached"] == n_points, executed_by_mode
    metrics["tasks_executed_cached"] = float(executed_by_mode["cached"])
    metrics["duplicate_skip_reduction"] = (
        (total - executed_by_mode["cached"]) / total
    )
    return make_result(
        "repeated_sweep",
        metrics,
        smoke,
        {"n_points": n_points, "n_repeats": n_repeats, "n_workers": 4},
    )


BENCHES: dict[str, Callable[[bool], dict]] = {
    "db_throughput": bench_db_throughput,
    "store_rpc": bench_store_rpc,
    "service_rpc": bench_service_rpc,
    "pool_throughput": bench_pool_throughput,
    "pool_throughput_monitored": lambda smoke: bench_pool_throughput(
        smoke, with_monitoring=True
    ),
    "journal_overhead": bench_journal_overhead,
    "task_profile_overhead": bench_task_profile_overhead,
    "telemetry_push": bench_telemetry_push,
    "dispatch_latency": bench_dispatch_latency,
    "idle_rpc_rate": bench_idle_rpc_rate,
    "cache_hit_latency": bench_cache_hit_latency,
    "repeated_sweep": bench_repeated_sweep,
}


# ---------------------------------------------------------------------------
# harness driver


def load_baseline(path: str | Path) -> dict[str, dict]:
    """A committed baseline file: ``{"<bench name>": {result...}}``."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError("baseline must be a JSON object keyed by bench name")
    return data


def run_harness(
    names: Iterable[str] | None = None,
    smoke: bool = False,
    out_dir: str | Path = "benchmarks/reports",
    baseline_path: str | Path | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    out=sys.stdout,
) -> int:
    """Run the curated benches; returns the process exit code.

    0 — all ran, schema valid, no regressions; 1 — regression vs
    baseline; 2 — schema violation or unknown bench name.
    """
    selected = list(names) if names else list(BENCHES)
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        print(f"bench: unknown bench(es): {', '.join(unknown)}", file=out)
        print(f"bench: available: {', '.join(BENCHES)}", file=out)
        return 2

    results = []
    for name in selected:
        print(f"bench: running {name}{' (smoke)' if smoke else ''} ...", file=out)
        result = BENCHES[name](smoke)
        errors = validate_result(result)
        if errors:
            print(f"bench: {name}: schema violation: {'; '.join(errors)}", file=out)
            return 2
        for metric, value in sorted(result["metrics"].items()):
            print(f"  {metric} = {value:.4g}", file=out)
        results.append(result)

    paths = write_results(results, out_dir)
    for path in paths:
        print(f"bench: wrote {path}", file=out)

    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        problems: list[str] = []
        for result in results:
            base = baseline.get(result["name"])
            if base is None:
                print(f"bench: no baseline for {result['name']}; skipping", file=out)
                continue
            if bool(base.get("smoke")) != bool(result["smoke"]):
                print(
                    f"bench: warning: comparing a "
                    f"{'smoke' if result['smoke'] else 'full'} run against a "
                    f"{'smoke' if base.get('smoke') else 'full'} baseline for "
                    f"{result['name']} — smaller workloads amortize less, "
                    "expect pessimistic numbers",
                    file=out,
                )
            base_errors = validate_result(base)
            if base_errors:
                print(
                    f"bench: baseline for {result['name']} invalid: "
                    f"{'; '.join(base_errors)}",
                    file=out,
                )
                return 2
            problems.extend(compare_result(result, base, tolerance))
        if problems:
            print("bench: REGRESSIONS:", file=out)
            for problem in problems:
                print(f"  {problem}", file=out)
            return 1
        print("bench: no regressions vs baseline", file=out)
    return 0

"""Artifact provenance: a lineage DAG.

Every ingested dataset version, curation output, and model artifact gets
a :class:`ProvenanceRecord` naming its parents and the operation that
produced it, so any downstream result can be traced back to the raw
surveillance pull that fed it — the paper's "track data provenance"
requirement.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import NotFoundError
from repro.util.ids import short_id


@dataclass(frozen=True)
class ProvenanceRecord:
    """One artifact's origin."""

    artifact_id: str
    operation: str
    parents: tuple[str, ...]
    params: dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0


class ProvenanceLog:
    """Append-only provenance store with lineage queries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, ProvenanceRecord] = {}

    def record(
        self,
        operation: str,
        parents: tuple[str, ...] | list[str] = (),
        params: dict[str, Any] | None = None,
        created_at: float = 0.0,
        artifact_id: str | None = None,
    ) -> ProvenanceRecord:
        """Register a new artifact; returns its record.

        Parents must already be registered — lineage is built bottom-up,
        which keeps the DAG acyclic by construction.
        """
        with self._lock:
            for parent in parents:
                if parent not in self._records:
                    raise NotFoundError(f"unknown parent artifact {parent!r}")
            if artifact_id is None:
                artifact_id = short_id("art")
            elif artifact_id in self._records:
                raise ValueError(f"artifact {artifact_id!r} already recorded")
            record = ProvenanceRecord(
                artifact_id=artifact_id,
                operation=operation,
                parents=tuple(parents),
                params=dict(params or {}),
                created_at=created_at,
            )
            self._records[artifact_id] = record
            return record

    def get(self, artifact_id: str) -> ProvenanceRecord:
        with self._lock:
            record = self._records.get(artifact_id)
        if record is None:
            raise NotFoundError(f"unknown artifact {artifact_id!r}")
        return record

    def lineage(self, artifact_id: str) -> list[ProvenanceRecord]:
        """All ancestors (and the artifact itself), oldest first."""
        self.get(artifact_id)  # existence check
        seen: dict[str, ProvenanceRecord] = {}

        def visit(aid: str) -> None:
            if aid in seen:
                return
            record = self.get(aid)
            for parent in record.parents:
                visit(parent)
            seen[aid] = record

        visit(artifact_id)
        return list(seen.values())

    def descendants(self, artifact_id: str) -> list[ProvenanceRecord]:
        """Artifacts derived (transitively) from ``artifact_id``."""
        self.get(artifact_id)
        with self._lock:
            records = list(self._records.values())
        out: list[ProvenanceRecord] = []
        frontier = {artifact_id}
        changed = True
        while changed:
            changed = False
            for record in records:
                if record.artifact_id in frontier:
                    continue
                if any(p in frontier for p in record.parents):
                    frontier.add(record.artifact_id)
                    out.append(record)
                    changed = True
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

"""Data stream ingestion (paper §II-B2a).

"Incoming data streams relevant to OSPREY workflows vary widely in type
and size.  OSPREY will need to develop flexible techniques to move and
track data sets from their origin of publication, such as a city or
health department portals, to their site of use."

:class:`DataSource` simulates the portal: it publishes immutable
:class:`DatasetVersion` objects (as a health department revises its case
series daily).  :class:`StreamIngestor` polls a source, detects unseen
versions by content hash, stages each into a
:class:`repro.store.Store` (whose connector may be a Globus fabric —
moving the data to the HPC site), and records provenance.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any

from repro.data.provenance import ProvenanceLog
from repro.store.store import Store
from repro.util.clock import Clock, SystemClock
from repro.util.errors import NotFoundError
from repro.util.serialization import encode_object


@dataclass(frozen=True)
class DatasetVersion:
    """One published revision of a dataset."""

    name: str
    version: int
    content_hash: str
    published_at: float
    payload: Any

    @property
    def key(self) -> str:
        return f"{self.name}@v{self.version}"


def content_hash(payload: Any) -> str:
    """Stable content hash used for new-version detection."""
    return hashlib.sha256(encode_object(payload)).hexdigest()[:16]


class DataSource:
    """A simulated publication portal: versioned named datasets."""

    def __init__(self, name: str, clock: Clock | None = None) -> None:
        self.name = name
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._versions: dict[str, list[DatasetVersion]] = {}

    def publish(self, dataset: str, payload: Any) -> DatasetVersion:
        """Publish a new revision; returns its version record.

        Re-publishing identical content is a no-op (the portal did not
        actually update) and returns the existing latest version.
        """
        digest = content_hash(payload)
        with self._lock:
            history = self._versions.setdefault(dataset, [])
            if history and history[-1].content_hash == digest:
                return history[-1]
            version = DatasetVersion(
                name=dataset,
                version=len(history) + 1,
                content_hash=digest,
                published_at=self._clock.now(),
                payload=payload,
            )
            history.append(version)
            return version

    def latest(self, dataset: str) -> DatasetVersion:
        with self._lock:
            history = self._versions.get(dataset)
        if not history:
            raise NotFoundError(f"source {self.name!r} has no dataset {dataset!r}")
        return history[-1]

    def datasets(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def history(self, dataset: str) -> list[DatasetVersion]:
        with self._lock:
            return list(self._versions.get(dataset, []))


class StreamIngestor:
    """Moves new dataset versions from a source into a staging store."""

    def __init__(
        self,
        source: DataSource,
        store: Store,
        provenance: ProvenanceLog | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._source = source
        self._store = store
        self._provenance = provenance if provenance is not None else ProvenanceLog()
        self._clock = clock if clock is not None else SystemClock()
        self._seen: dict[str, str] = {}  # dataset -> last ingested hash
        self.ingested: list[DatasetVersion] = []

    @property
    def provenance(self) -> ProvenanceLog:
        return self._provenance

    def poll(self) -> list[DatasetVersion]:
        """Ingest every dataset whose latest version is unseen.

        Each new version is written to the staging store under its
        ``name@vN`` key and gets a provenance record naming the source.
        Returns the versions ingested by this poll.
        """
        new: list[DatasetVersion] = []
        for dataset in self._source.datasets():
            version = self._source.latest(dataset)
            if self._seen.get(dataset) == version.content_hash:
                continue
            self._store.put(version.payload, key=version.key)
            self._provenance.record(
                operation="ingest",
                parents=(),
                params={
                    "source": self._source.name,
                    "dataset": dataset,
                    "version": version.version,
                    "content_hash": version.content_hash,
                },
                created_at=self._clock.now(),
                artifact_id=version.key,
            )
            self._seen[dataset] = version.content_hash
            self.ingested.append(version)
            new.append(version)
        return new

    def staged_payload(self, dataset: str, version: int | None = None) -> Any:
        """Fetch a staged dataset from the store (latest by default)."""
        if version is None:
            candidates = [v for v in self.ingested if v.name == dataset]
            if not candidates:
                raise NotFoundError(f"dataset {dataset!r} not yet ingested")
            key = candidates[-1].key
        else:
            key = f"{dataset}@v{version}"
        return self._store.get(key)

"""Algorithm and model artifact management (paper §II-B2c).

"Algorithm and model artifacts, such as model exploration state or
calibrated model checkpoints, can be complex, large, and numerous and
not local to a specific resource ... Capabilities should allow model
exploration algorithms to be easily rerun or continued ... Model
checkpoints should be easily selected, staged for execution, and run."

:class:`ArtifactManager` stores checkpoint objects in a
:class:`repro.store.Store` (so the bytes can live behind any connector,
including the Globus fabric) with queryable metadata, and stages
selected checkpoints as proxies ready to ride a task payload.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.data.provenance import ProvenanceLog
from repro.store.proxy import Proxy
from repro.store.store import Store
from repro.util.clock import Clock, SystemClock
from repro.util.errors import NotFoundError
from repro.util.ids import short_id


@dataclass(frozen=True)
class ArtifactRecord:
    """Metadata for one stored checkpoint."""

    artifact_id: str
    kind: str  # e.g. "gpr-model", "me-state", "calibrated-params"
    store_key: str
    created_at: float
    tags: dict[str, Any] = field(default_factory=dict)


class ArtifactManager:
    """Checkpoint store with metadata queries and staging."""

    def __init__(
        self,
        store: Store,
        provenance: ProvenanceLog | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._store = store
        self._provenance = provenance
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._records: dict[str, ArtifactRecord] = {}

    def save(
        self,
        obj: Any,
        kind: str,
        tags: dict[str, Any] | None = None,
        parents: tuple[str, ...] = (),
    ) -> ArtifactRecord:
        """Persist a checkpoint; returns its record."""
        artifact_id = short_id("ckpt")
        store_key = self._store.put(obj)
        record = ArtifactRecord(
            artifact_id=artifact_id,
            kind=kind,
            store_key=store_key,
            created_at=self._clock.now(),
            tags=dict(tags or {}),
        )
        with self._lock:
            self._records[artifact_id] = record
        if self._provenance is not None:
            self._provenance.record(
                operation=f"checkpoint:{kind}",
                parents=parents,
                params=dict(record.tags),
                created_at=record.created_at,
                artifact_id=artifact_id,
            )
        return record

    def get_record(self, artifact_id: str) -> ArtifactRecord:
        with self._lock:
            record = self._records.get(artifact_id)
        if record is None:
            raise NotFoundError(f"unknown artifact {artifact_id!r}")
        return record

    def load(self, artifact_id: str) -> Any:
        """Materialize a checkpoint object."""
        return self._store.get(self.get_record(artifact_id).store_key)

    def stage(self, artifact_id: str) -> Proxy:
        """A lazy proxy to the checkpoint — ready to embed in a task
        payload or fabric call without moving the bytes yet."""
        return self._store.proxy_from_key(self.get_record(artifact_id).store_key)

    def delete(self, artifact_id: str) -> bool:
        """Remove a checkpoint and its stored bytes."""
        with self._lock:
            record = self._records.pop(artifact_id, None)
        if record is None:
            return False
        self._store.evict(record.store_key)
        return True

    def list(
        self, kind: str | None = None, **tag_filters: Any
    ) -> list[ArtifactRecord]:
        """Records matching a kind and exact tag values, newest first."""
        with self._lock:
            records = list(self._records.values())
        out = [
            r
            for r in records
            if (kind is None or r.kind == kind)
            and all(r.tags.get(k) == v for k, v in tag_filters.items())
        ]
        out.sort(key=lambda r: r.created_at, reverse=True)
        return out

    def latest(self, kind: str, **tag_filters: Any) -> ArtifactRecord:
        """The newest matching record; raises if none exist."""
        matches = self.list(kind, **tag_filters)
        if not matches:
            raise NotFoundError(f"no artifacts of kind {kind!r} match {tag_filters}")
        return matches[0]

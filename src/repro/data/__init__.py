"""Data ingestion, curation, and artifact management (paper §II-B2).

The paper lists these as platform requirements ("not the focus of this
work, but we include for completeness") and as future work; this package
implements them as working extension features:

- :mod:`repro.data.ingestion` — versioned data sources (a city portal
  stand-in) and a polling ingestor that moves new versions to a staging
  store and records where they came from;
- :mod:`repro.data.curation` — declarative curation pipelines (missing
  data fill, de-biasing by reporting rate, outlier clipping, smoothing)
  with per-step provenance;
- :mod:`repro.data.provenance` — an artifact lineage DAG;
- :mod:`repro.data.artifacts` — managed model/algorithm checkpoints
  that can be listed, selected, and staged for (re-)execution.
"""

from repro.data.ingestion import DataSource, DatasetVersion, StreamIngestor
from repro.data.curation import (
    CurationPipeline,
    clip_outliers,
    debias_reporting,
    fill_missing,
    rolling_mean,
)
from repro.data.provenance import ProvenanceLog, ProvenanceRecord
from repro.data.artifacts import ArtifactManager, ArtifactRecord

__all__ = [
    "DataSource",
    "DatasetVersion",
    "StreamIngestor",
    "CurationPipeline",
    "fill_missing",
    "debias_reporting",
    "clip_outliers",
    "rolling_mean",
    "ProvenanceLog",
    "ProvenanceRecord",
    "ArtifactManager",
    "ArtifactRecord",
]

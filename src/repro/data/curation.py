"""Automated data curation pipelines (paper §II-B2b).

"...capabilities for creating data analysis pipelines, such as for data
de-biasing, data integration, uncertainty quantification, and more
general metadata and provenance tracking."

A :class:`CurationPipeline` is an ordered list of named steps over a 1-D
case-count series.  Running it produces the curated series plus one
provenance record per step, chained parent-to-child, so the final
artifact's lineage reads like a lab notebook.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.data.provenance import ProvenanceLog
from repro.util.errors import DataError

#: A curation step: (series, params) -> series.
StepFn = Callable[[np.ndarray], np.ndarray]


def fill_missing(series: np.ndarray) -> np.ndarray:
    """Replace NaNs by linear interpolation (edges: nearest value).

    Surveillance series routinely have missing reporting days.
    """
    series = np.asarray(series, dtype=float)
    out = series.copy()
    missing = np.isnan(out)
    if missing.all():
        raise DataError("series is entirely missing")
    if missing.any():
        idx = np.arange(out.size)
        out[missing] = np.interp(idx[missing], idx[~missing], out[~missing])
    return out


def debias_reporting(reporting_rate: float) -> StepFn:
    """Scale reported counts up to estimated true incidence."""
    if not 0 < reporting_rate <= 1:
        raise ValueError("reporting_rate must be in (0, 1]")

    def step(series: np.ndarray) -> np.ndarray:
        return np.asarray(series, dtype=float) / reporting_rate

    step.__name__ = f"debias_reporting({reporting_rate})"
    return step


def clip_outliers(z: float = 4.0) -> StepFn:
    """Clamp points more than ``z`` robust deviations from a rolling
    median (data dumps / bulk corrections appear as huge spikes)."""
    if z <= 0:
        raise ValueError("z must be positive")

    def step(series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=float)
        median = float(np.median(series))
        mad = float(np.median(np.abs(series - median))) or 1.0
        limit = median + z * 1.4826 * mad
        return np.minimum(series, limit)

    step.__name__ = f"clip_outliers(z={z})"
    return step


def rolling_mean(window: int = 7) -> StepFn:
    """Centered rolling mean (the 7-day average of COVID dashboards)."""
    if window < 1:
        raise ValueError("window must be >= 1")

    def step(series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=float)
        if series.size < window:
            raise DataError(f"series shorter than window {window}")
        kernel = np.ones(window) / window
        # 'same' mode with edge correction: divide by actual coverage.
        smoothed = np.convolve(series, kernel, mode="same")
        coverage = np.convolve(np.ones_like(series), kernel, mode="same")
        return smoothed / coverage

    step.__name__ = f"rolling_mean(window={window})"
    return step


@dataclass
class CurationResult:
    """Curated series plus the ids of each intermediate artifact."""

    series: np.ndarray
    artifact_ids: list[str]

    @property
    def final_artifact(self) -> str:
        return self.artifact_ids[-1]


class CurationPipeline:
    """An ordered, provenance-tracked series transformation."""

    def __init__(self, steps: list[StepFn] | None = None) -> None:
        self._steps: list[StepFn] = list(steps or [])

    def add(self, step: StepFn) -> "CurationPipeline":
        self._steps.append(step)
        return self

    @property
    def step_names(self) -> list[str]:
        return [getattr(s, "__name__", repr(s)) for s in self._steps]

    def run(
        self,
        series: np.ndarray,
        provenance: ProvenanceLog,
        input_artifact: str,
        created_at: float = 0.0,
    ) -> CurationResult:
        """Apply all steps; each output becomes a provenance child of
        the previous artifact."""
        if not self._steps:
            raise DataError("pipeline has no steps")
        current = np.asarray(series, dtype=float)
        parent = input_artifact
        artifact_ids: list[str] = []
        for step in self._steps:
            current = np.asarray(step(current), dtype=float)
            record = provenance.record(
                operation=getattr(step, "__name__", "step"),
                parents=(parent,),
                params={"length": int(current.size)},
                created_at=created_at,
            )
            parent = record.artifact_id
            artifact_ids.append(record.artifact_id)
        return CurationResult(series=current, artifact_ids=artifact_ids)

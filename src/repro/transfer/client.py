"""Third-party transfer client.

A transfer runs on its own thread between two endpoints — the submitter
holds no connection to either, which is the property that lets proxies
cross sites without client babysitting.  The simulated duration is::

    latency(src) + latency(dst) + size / min(bandwidth(src), bandwidth(dst))

A transfer whose endpoint is offline retries with exponential backoff up
to ``max_retries`` times, then fails; an endpoint coming back online in
the window lets the transfer succeed — Globus's reliable-delivery
behaviour.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.transfer.endpoint import TransferEndpoint
from repro.telemetry.tracing import (
    STATUS_ERROR,
    STATUS_OK,
    SpanContext,
    get_tracer,
)
from repro.util.clock import Clock, SystemClock
from repro.util.errors import NotFoundError, TimeoutError_, TransferError
from repro.util.ids import short_id


class TransferState(enum.Enum):
    """Transfer task lifecycle (mirrors the Globus task states)."""

    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class TransferTask:
    """Handle for one asynchronous transfer."""

    task_id: str
    source: str
    destination: str
    items: list[tuple[str, str]]  # (src_key, dst_key)
    state: TransferState = TransferState.ACTIVE
    bytes_transferred: int = 0
    error: str | None = None
    started_at: float = 0.0
    finished_at: float | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: float | None = 60.0) -> "TransferTask":
        """Block until the transfer finishes; raises on timeout or
        failure so callers never consume half-delivered data."""
        if not self._done.wait(timeout):
            raise TimeoutError_(f"transfer {self.task_id} still active after {timeout}s")
        if self.state == TransferState.FAILED:
            raise TransferError(f"transfer {self.task_id} failed: {self.error}")
        return self

    def duration(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class TransferClient:
    """Submits and tracks third-party transfers between named endpoints."""

    def __init__(
        self,
        clock: Clock | None = None,
        max_retries: int = 3,
        retry_delay: float = 0.05,
        speedup: float = 1.0,
    ) -> None:
        """``speedup`` divides simulated durations — examples model
        multi-GB transfers without multi-minute test runs."""
        self._clock = clock if clock is not None else SystemClock()
        self._max_retries = max_retries
        self._retry_delay = retry_delay
        self._speedup = speedup
        self._lock = threading.Lock()
        self._endpoints: dict[str, TransferEndpoint] = {}
        self._tasks: dict[str, TransferTask] = {}

    # -- endpoint registry ----------------------------------------------------

    def register_endpoint(self, endpoint: TransferEndpoint) -> None:
        with self._lock:
            if endpoint.name in self._endpoints:
                raise ValueError(f"endpoint {endpoint.name!r} already registered")
            self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> TransferEndpoint:
        with self._lock:
            try:
                return self._endpoints[name]
            except KeyError:
                raise NotFoundError(f"unknown transfer endpoint {name!r}") from None

    def endpoints(self) -> list[str]:
        with self._lock:
            return sorted(self._endpoints)

    # -- transfers ----------------------------------------------------------------

    def transfer_duration(self, source: str, destination: str, size: int) -> float:
        """The modelled wall-clock cost of moving ``size`` bytes."""
        src = self.endpoint(source)
        dst = self.endpoint(destination)
        link = min(src.bandwidth, dst.bandwidth)
        return (src.latency + dst.latency + size / link) / self._speedup

    def submit_transfer(
        self,
        source: str,
        destination: str,
        items: list[tuple[str, str]] | None = None,
        src_key: str | None = None,
        dst_key: str | None = None,
    ) -> TransferTask:
        """Start an asynchronous transfer of one or many keys.

        Either pass ``items`` (a batch of (src_key, dst_key) pairs) or
        the single-pair ``src_key``/``dst_key`` form.
        """
        if items is None:
            if src_key is None:
                raise ValueError("provide items or src_key")
            items = [(src_key, dst_key if dst_key is not None else src_key)]
        # Unknown endpoints are a caller error: fail at submission, not
        # asynchronously inside the transfer thread.
        self.endpoint(source)
        self.endpoint(destination)
        task = TransferTask(
            task_id=short_id("xfer"),
            source=source,
            destination=destination,
            items=list(items),
            started_at=self._clock.now(),
        )
        with self._lock:
            self._tasks[task.task_id] = task
        # The transfer runs on its own thread; capture the submitter's
        # span context here so the transfer.run span parents under it.
        tracer = get_tracer()
        parent = tracer.current_context() if tracer.enabled else None
        thread = threading.Thread(
            target=self._run_transfer,
            args=(task, parent),
            name=task.task_id,
            daemon=True,
        )
        thread.start()
        return task

    def task(self, task_id: str) -> TransferTask:
        with self._lock:
            try:
                return self._tasks[task_id]
            except KeyError:
                raise NotFoundError(f"unknown transfer task {task_id!r}") from None

    def _run_transfer(
        self, task: TransferTask, parent: SpanContext | None = None
    ) -> None:
        try:
            src = self.endpoint(task.source)
            dst = self.endpoint(task.destination)
            self._await_online(src, dst, task)
            total = sum(src.size(key) for key, _ in task.items)
            # One simulated wire time for the batch.
            self._clock.sleep(self.transfer_duration(task.source, task.destination, total))
            for src_key, dst_key in task.items:
                dst.put(dst_key, src.get(src_key))
            task.bytes_transferred = total
            task.state = TransferState.SUCCEEDED
        except Exception as exc:  # noqa: BLE001 - surfaces through the task
            task.state = TransferState.FAILED
            task.error = str(exc)
        finally:
            task.finished_at = self._clock.now()
            # Retroactive: the task's own timestamps (shared clock with
            # the tracer) make the staging interval a first-class span.
            get_tracer().add_span(
                "transfer.run",
                "transfer",
                task.started_at,
                task.finished_at,
                parent=parent,
                attrs={
                    "task_id": task.task_id,
                    "source": task.source,
                    "destination": task.destination,
                    "bytes": task.bytes_transferred,
                    "items": len(task.items),
                },
                status=(
                    STATUS_ERROR
                    if task.state == TransferState.FAILED
                    else STATUS_OK
                ),
            )
            task._done.set()

    def _await_online(
        self, src: TransferEndpoint, dst: TransferEndpoint, task: TransferTask
    ) -> None:
        delay = self._retry_delay
        for _attempt in range(self._max_retries + 1):
            if src.online and dst.online:
                return
            self._clock.sleep(delay)
            delay *= 2
        offline = [ep.name for ep in (src, dst) if not ep.online]
        raise TransferError(f"endpoints offline after retries: {offline}")

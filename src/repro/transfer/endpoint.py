"""Transfer endpoints: named, keyed byte stores with link properties."""

from __future__ import annotations

import threading

from repro.util.errors import NotFoundError


class TransferEndpoint:
    """One site's data endpoint.

    ``bandwidth`` (bytes/second) and ``latency`` (seconds) describe the
    site's WAN link and determine simulated transfer durations.  An
    endpoint can be taken offline to exercise retry paths.
    """

    def __init__(
        self,
        name: str,
        bandwidth: float = 1e9,
        latency: float = 0.0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be nonnegative")
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self._lock = threading.Lock()
        self._data: dict[str, bytes] = {}
        self._online = True

    # -- availability ---------------------------------------------------------

    @property
    def online(self) -> bool:
        with self._lock:
            return self._online

    def set_online(self, online: bool) -> None:
        with self._lock:
            self._online = online

    # -- data ---------------------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._data[key] = bytes(data)

    def get(self, key: str) -> bytes:
        with self._lock:
            try:
                return self._data[key]
            except KeyError:
                raise NotFoundError(
                    f"no data under key {key!r} at endpoint {self.name!r}"
                ) from None

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def size(self, key: str) -> int:
        with self._lock:
            if key not in self._data:
                raise NotFoundError(
                    f"no data under key {key!r} at endpoint {self.name!r}"
                )
            return len(self._data[key])

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._data.pop(key, None) is not None

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._data)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._data.values())

"""Wide-area data transfer substrate (Globus stand-in).

Paper §IV-E: "Globus provides high-performance and reliable third-party
data transfer ... The third-party nature of Globus transfers allows
OSPREY (via ProxyStore) to easily move data between locations without
needing to maintain open connections to those locations."

This package reproduces that contract: named
:class:`TransferEndpoint`\\ s hold keyed data with per-endpoint bandwidth
and latency; a :class:`TransferClient` submits asynchronous third-party
transfers (data moves endpoint-to-endpoint, the submitting client holds
no connection), with retry on transient endpoint outages and transfer
durations derived from payload size and the slower endpoint's bandwidth.
"""

from repro.transfer.endpoint import TransferEndpoint
from repro.transfer.client import TransferClient, TransferState, TransferTask

__all__ = [
    "TransferEndpoint",
    "TransferClient",
    "TransferState",
    "TransferTask",
]

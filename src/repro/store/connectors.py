"""Store connectors: where proxied bytes actually live.

ProxyStore "implements a common data access/movement interface with
plugins to support storage and movement via different methods, including
shared file systems, Redis databases, or Globus" (§IV-E).  The three
connectors here cover those regimes:

- :class:`MemoryConnector` — a named in-process object space (the
  Redis stand-in; instances reconnect to the same space by name, as a
  Redis client reconnects by address).
- :class:`FileConnector` — a shared-filesystem directory.
- :class:`GlobusConnector` — site-aware storage over the
  :mod:`repro.transfer` simulator: ``put`` writes to the local site's
  endpoint and records the location; ``get`` from another site issues a
  third-party transfer and caches the result locally.
"""

from __future__ import annotations

import hashlib
import threading
from abc import ABC, abstractmethod
from pathlib import Path

from repro.transfer.client import TransferClient
from repro.util.errors import NotFoundError


class Connector(ABC):
    """Keyed byte storage beneath a Store."""

    @abstractmethod
    def put(self, key: str, data: bytes) -> None: ...

    @abstractmethod
    def get(self, key: str) -> bytes: ...

    @abstractmethod
    def exists(self, key: str) -> bool: ...

    @abstractmethod
    def evict(self, key: str) -> bool:
        """Remove a key; True if it existed."""


class MemoryConnector(Connector):
    """A named in-memory object space.

    All instances constructed with the same name — including instances
    recreated by unpickling — share one space, mirroring how a Redis
    connector reconnects to the same server.
    """

    _SPACES: dict[str, dict[str, bytes]] = {}
    _LOCK = threading.Lock()

    def __init__(self, name: str = "default") -> None:
        self.name = name
        with MemoryConnector._LOCK:
            self._space = MemoryConnector._SPACES.setdefault(name, {})

    def __reduce__(self):
        return (MemoryConnector, (self.name,))

    def put(self, key: str, data: bytes) -> None:
        with MemoryConnector._LOCK:
            self._space[key] = bytes(data)

    def get(self, key: str) -> bytes:
        with MemoryConnector._LOCK:
            try:
                return self._space[key]
            except KeyError:
                raise NotFoundError(f"no data under key {key!r}") from None

    def exists(self, key: str) -> bool:
        with MemoryConnector._LOCK:
            return key in self._space

    def evict(self, key: str) -> bool:
        with MemoryConnector._LOCK:
            return self._space.pop(key, None) is not None

    @classmethod
    def drop_space(cls, name: str) -> None:
        """Test hook: delete a named space entirely."""
        with cls._LOCK:
            cls._SPACES.pop(name, None)


class FileConnector(Connector):
    """Shared-filesystem storage: one file per key."""

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    def __reduce__(self):
        return (FileConnector, (str(self._dir),))

    def _path(self, key: str) -> Path:
        # Keys are arbitrary strings; hash them into safe filenames.
        return self._dir / hashlib.sha256(key.encode("utf-8")).hexdigest()

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(data)
        tmp.replace(path)  # atomic publish

    def get(self, key: str) -> bytes:
        path = self._path(key)
        if not path.exists():
            raise NotFoundError(f"no data under key {key!r}")
        return path.read_bytes()

    def exists(self, key: str) -> bool:
        return self._path(key).exists()

    def evict(self, key: str) -> bool:
        path = self._path(key)
        if path.exists():
            path.unlink()
            return True
        return False


class GlobusConnector(Connector):
    """Wide-area storage with third-party transfer on remote reads.

    One *fabric* (transfer client + shared location map) is shared by
    the per-site connector instances created with :meth:`at_site`.  A
    read at the owning site is local; a read elsewhere triggers a
    transfer from the owner to the reading site and caches the bytes
    there.  Instances reconnect by (fabric name, site) on unpickling.
    """

    _FABRICS: dict[str, tuple[TransferClient, dict[str, str], threading.Lock]] = {}
    _LOCK = threading.Lock()

    def __init__(self, fabric_name: str, client: TransferClient, site: str) -> None:
        self.fabric_name = fabric_name
        self.site = site
        with GlobusConnector._LOCK:
            if fabric_name not in GlobusConnector._FABRICS:
                GlobusConnector._FABRICS[fabric_name] = (client, {}, threading.Lock())
            stored_client, locations, lock = GlobusConnector._FABRICS[fabric_name]
        self._client = stored_client
        self._locations = locations
        self._loc_lock = lock
        # Validate the site now, not at first use.
        self._client.endpoint(site)

    @classmethod
    def connect(cls, fabric_name: str, site: str) -> "GlobusConnector":
        """Attach to an already-initialized fabric from another site —
        what a remote process does before resolving proxies locally."""
        return cls._reconnect(fabric_name, site)

    @classmethod
    def _reconnect(cls, fabric_name: str, site: str) -> "GlobusConnector":
        with cls._LOCK:
            if fabric_name not in cls._FABRICS:
                raise NotFoundError(
                    f"globus fabric {fabric_name!r} not initialized in this process"
                )
            client = cls._FABRICS[fabric_name][0]
        return cls(fabric_name, client, site)

    def __reduce__(self):
        return (GlobusConnector._reconnect, (self.fabric_name, self.site))

    def at_site(self, site: str) -> "GlobusConnector":
        """A sibling connector bound to another site on the same fabric."""
        return GlobusConnector(self.fabric_name, self._client, site)

    def put(self, key: str, data: bytes) -> None:
        self._client.endpoint(self.site).put(key, data)
        with self._loc_lock:
            self._locations[key] = self.site

    def get(self, key: str) -> bytes:
        local = self._client.endpoint(self.site)
        if local.exists(key):
            return local.get(key)
        with self._loc_lock:
            owner = self._locations.get(key)
        if owner is None:
            raise NotFoundError(f"no data under key {key!r} on fabric {self.fabric_name!r}")
        task = self._client.submit_transfer(owner, self.site, src_key=key, dst_key=key)
        task.wait()
        return local.get(key)

    def exists(self, key: str) -> bool:
        if self._client.endpoint(self.site).exists(key):
            return True
        with self._loc_lock:
            return key in self._locations

    def evict(self, key: str) -> bool:
        """Evict from every site holding the key."""
        removed = False
        with self._loc_lock:
            self._locations.pop(key, None)
        for name in self._client.endpoints():
            removed |= self._client.endpoint(name).delete(key)
        return removed

    @classmethod
    def drop_fabric(cls, fabric_name: str) -> None:
        """Test hook: forget a fabric registration."""
        with cls._LOCK:
            cls._FABRICS.pop(fabric_name, None)

"""The Store: put/get/proxy/evict over a connector.

``Store.proxy(obj)`` is the paper's central data-sharing move: the
object is serialized into the connector and a pointer-sized
:class:`~repro.store.proxy.Proxy` comes back, safe to embed in fabric
task payloads.  The factory inside the proxy references the store *by
name* through the process registry, so a proxy resolved "at another
site" (another registered store instance over the same fabric) pulls the
bytes through whatever movement the connector implements.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.store.connectors import Connector
from repro.store.proxy import Proxy
from repro.store.registry import get_store
from repro.telemetry.tracing import get_tracer
from repro.util.ids import short_id
from repro.util.serialization import decode_object, encode_object


@dataclass(frozen=True)
class StoreFactory:
    """Picklable proxy factory: (store name, key) -> object.

    ``evict`` makes the factory a consume-once reference: the data is
    evicted after the first resolution (useful for large one-shot
    intermediates).
    """

    store_name: str
    key: str
    evict: bool = False

    def __call__(self) -> Any:
        # Resolution often happens "at another site" (inside a handler
        # on a pool thread); the span nests under whatever task span is
        # open there, exposing proxy-pull cost inside task time.
        with get_tracer().span(
            "proxy.resolve", component="store", store=self.store_name, key=self.key
        ):
            store = get_store(self.store_name)
            value = store.get(self.key)
            if self.evict:
                store.evict(self.key)
            return value


@dataclass
class StoreMetrics:
    """Operation counters for benchmarking and tests."""

    puts: int = 0
    gets: int = 0
    evicts: int = 0
    bytes_put: int = 0
    bytes_got: int = 0


class Store:
    """Object store over a connector."""

    def __init__(self, name: str, connector: Connector) -> None:
        self.name = name
        self._connector = connector
        self._lock = threading.Lock()
        self.metrics = StoreMetrics()

    @property
    def connector(self) -> Connector:
        return self._connector

    # -- raw object interface ---------------------------------------------------

    def put(self, obj: Any, key: str | None = None) -> str:
        """Serialize and store an object; returns its key."""
        key = key if key is not None else short_id("obj")
        with get_tracer().span(
            "store.put", component="store", store=self.name, key=key
        ) as sp:
            data = encode_object(obj)
            sp.set_attr("bytes", len(data))
            self._connector.put(key, data)
        with self._lock:
            self.metrics.puts += 1
            self.metrics.bytes_put += len(data)
        return key

    def get(self, key: str) -> Any:
        """Fetch and deserialize an object."""
        with get_tracer().span(
            "store.get", component="store", store=self.name, key=key
        ) as sp:
            data = self._connector.get(key)
            sp.set_attr("bytes", len(data))
            value = decode_object(data)
        with self._lock:
            self.metrics.gets += 1
            self.metrics.bytes_got += len(data)
        return value

    def exists(self, key: str) -> bool:
        return self._connector.exists(key)

    def evict(self, key: str) -> bool:
        removed = self._connector.evict(key)
        if removed:
            with self._lock:
                self.metrics.evicts += 1
        return removed

    # -- proxies ---------------------------------------------------------------------

    def proxy(self, obj: Any, evict: bool = False) -> Proxy:
        """Store ``obj`` and return a lazy, picklable Proxy to it."""
        key = self.put(obj)
        return Proxy(StoreFactory(self.name, key, evict=evict))

    def proxy_from_key(self, key: str, evict: bool = False) -> Proxy:
        """A Proxy for data already stored under ``key``."""
        return Proxy(StoreFactory(self.name, key, evict=evict))

"""Data sharing service: a ProxyStore-style lazy data fabric.

Paper §IV-E: ProxyStore "passes 'Proxy' object references between
participating entities ... and implements a lazy evaluation approach in
which Proxies are resolved only when needed.  Thus, users are presented
with a pure Python interface", with pluggable backends (shared
filesystems, Redis, Globus).

- :class:`Proxy` — a transparent object reference: every attribute
  access, call, or operator resolves the target on first use.
- :class:`Store` — ``put``/``get``/``proxy``/``evict`` over a
  :class:`Connector`; proxies created by a store are picklable and
  resolve through the process-local store registry, so they ride fabric
  task payloads at pointer size while the data moves out of band.
- Connectors: in-memory, filesystem, and Globus (backed by the
  :mod:`repro.transfer` simulator) — the paper's GPR object travels
  exactly this way, "passed as a ProxyStore proxy object, using
  ProxyStore's Globus functionality".
"""

from repro.store.connectors import (
    Connector,
    FileConnector,
    GlobusConnector,
    MemoryConnector,
)
from repro.store.proxy import Proxy, extract, is_resolved, resolve
from repro.store.registry import get_store, register_store, unregister_store
from repro.store.store import Store, StoreFactory

__all__ = [
    "Connector",
    "MemoryConnector",
    "FileConnector",
    "GlobusConnector",
    "Proxy",
    "extract",
    "is_resolved",
    "resolve",
    "Store",
    "StoreFactory",
    "get_store",
    "register_store",
    "unregister_store",
]

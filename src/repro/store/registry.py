"""Process-local store registry.

Proxies serialize as ``(store name, key)`` factories; on resolution the
factory looks the store up here.  Each participating process (in this
reproduction: each simulated site sharing the interpreter) registers the
store instance that can reach the named data — exactly how ProxyStore
factories reconnect to their backend on the resolving side.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.util.errors import NotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.store import Store

_lock = threading.Lock()
_stores: dict[str, "Store"] = {}


def register_store(store: "Store", replace: bool = False) -> None:
    """Make a store resolvable by name in this process."""
    with _lock:
        if not replace and store.name in _stores:
            raise ValueError(f"store {store.name!r} already registered")
        _stores[store.name] = store


def get_store(name: str) -> "Store":
    """The registered store for ``name``; raises NotFoundError if absent."""
    with _lock:
        store = _stores.get(name)
    if store is None:
        raise NotFoundError(
            f"no store registered under {name!r}; call register_store first"
        )
    return store


def unregister_store(name: str) -> bool:
    """Remove a registration; True if it existed."""
    with _lock:
        return _stores.pop(name, None) is not None

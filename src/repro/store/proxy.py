"""Transparent lazy object proxies.

A :class:`Proxy` wraps a zero-argument *factory*; the first operation
that needs the target invokes the factory exactly once and caches the
result.  Thereafter the proxy forwards everything — attributes, calls,
operators, iteration — so downstream code (a scikit-style GPR, a numpy
array consumer) never knows it holds a proxy.

Pickling a proxy serializes only its factory and yields an *unresolved*
proxy on the other side: the data itself never rides the pickle stream.
That is the mechanism that lets large objects cross the fabric's payload
cap as pointer-sized references.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

_UNRESOLVED = object()


class Proxy:
    """A transparent, lazily resolved reference to another object."""

    __slots__ = ("_proxy_factory", "_proxy_target")

    def __init__(self, factory: Callable[[], Any]) -> None:
        object.__setattr__(self, "_proxy_factory", factory)
        object.__setattr__(self, "_proxy_target", _UNRESOLVED)

    # -- resolution core ----------------------------------------------------

    def _proxy_resolve(self) -> Any:
        target = object.__getattribute__(self, "_proxy_target")
        if target is _UNRESOLVED:
            factory = object.__getattribute__(self, "_proxy_factory")
            target = factory()
            object.__setattr__(self, "_proxy_target", target)
        return target

    # -- pickling: ship the factory, not the data ------------------------------

    def __reduce__(self):
        return (Proxy, (object.__getattribute__(self, "_proxy_factory"),))

    # -- attribute protocol ------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._proxy_resolve(), name)

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(self._proxy_resolve(), name, value)

    def __delattr__(self, name: str) -> None:
        delattr(self._proxy_resolve(), name)

    # -- call / container / iteration -----------------------------------------------

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._proxy_resolve()(*args, **kwargs)

    def __len__(self) -> int:
        return len(self._proxy_resolve())

    def __getitem__(self, key: Any) -> Any:
        return self._proxy_resolve()[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._proxy_resolve()[key] = value

    def __delitem__(self, key: Any) -> None:
        del self._proxy_resolve()[key]

    def __iter__(self):
        return iter(self._proxy_resolve())

    def __contains__(self, item: Any) -> bool:
        return item in self._proxy_resolve()

    # -- display / truthiness ------------------------------------------------------------

    def __repr__(self) -> str:
        target = object.__getattribute__(self, "_proxy_target")
        if target is _UNRESOLVED:
            return "Proxy(<unresolved>)"
        return repr(target)

    def __str__(self) -> str:
        return str(self._proxy_resolve())

    def __bool__(self) -> bool:
        return bool(self._proxy_resolve())

    def __hash__(self) -> int:
        return hash(self._proxy_resolve())

    # -- comparisons ----------------------------------------------------------------------

    def __eq__(self, other: Any) -> Any:
        return self._proxy_resolve() == _unwrap(other)

    def __ne__(self, other: Any) -> Any:
        return self._proxy_resolve() != _unwrap(other)

    def __lt__(self, other: Any) -> Any:
        return self._proxy_resolve() < _unwrap(other)

    def __le__(self, other: Any) -> Any:
        return self._proxy_resolve() <= _unwrap(other)

    def __gt__(self, other: Any) -> Any:
        return self._proxy_resolve() > _unwrap(other)

    def __ge__(self, other: Any) -> Any:
        return self._proxy_resolve() >= _unwrap(other)

    # -- arithmetic -------------------------------------------------------------------------

    def __add__(self, other: Any) -> Any:
        return self._proxy_resolve() + _unwrap(other)

    def __radd__(self, other: Any) -> Any:
        return _unwrap(other) + self._proxy_resolve()

    def __sub__(self, other: Any) -> Any:
        return self._proxy_resolve() - _unwrap(other)

    def __rsub__(self, other: Any) -> Any:
        return _unwrap(other) - self._proxy_resolve()

    def __mul__(self, other: Any) -> Any:
        return self._proxy_resolve() * _unwrap(other)

    def __rmul__(self, other: Any) -> Any:
        return _unwrap(other) * self._proxy_resolve()

    def __truediv__(self, other: Any) -> Any:
        return self._proxy_resolve() / _unwrap(other)

    def __rtruediv__(self, other: Any) -> Any:
        return _unwrap(other) / self._proxy_resolve()

    def __floordiv__(self, other: Any) -> Any:
        return self._proxy_resolve() // _unwrap(other)

    def __mod__(self, other: Any) -> Any:
        return self._proxy_resolve() % _unwrap(other)

    def __pow__(self, other: Any) -> Any:
        return self._proxy_resolve() ** _unwrap(other)

    def __neg__(self) -> Any:
        return -self._proxy_resolve()

    def __abs__(self) -> Any:
        return abs(self._proxy_resolve())

    # -- numpy interop ------------------------------------------------------------------------

    def __array__(self, dtype: Any = None, copy: Any = None) -> Any:
        import numpy as np

        target = self._proxy_resolve()
        return np.asarray(target, dtype=dtype)


def _unwrap(value: Any) -> Any:
    """Resolve ``value`` if it is a proxy, else return it unchanged."""
    if isinstance(value, Proxy):
        return value._proxy_resolve()
    return value


def is_resolved(proxy: Proxy) -> bool:
    """True once the proxy's factory has run."""
    return object.__getattribute__(proxy, "_proxy_target") is not _UNRESOLVED


def resolve(proxy: Proxy) -> None:
    """Force resolution without using the value."""
    proxy._proxy_resolve()


def extract(proxy: Proxy) -> Any:
    """The wrapped target object (resolving if necessary)."""
    return proxy._proxy_resolve()

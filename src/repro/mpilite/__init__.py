"""mpilite: a simulated MPI substrate (ranks as threads).

The paper's canonical worker pool is a Swift/T application that
"essentially distributes work among previously launched workers using
MPI messages" (§IV-D).  mpilite reproduces the message-passing substrate
so the pool driver can be written in genuine rank/message style:

- :class:`Communicator` — point-to-point ``send``/``recv`` (+ the
  nonblocking ``isend``/``irecv`` returning :class:`Request`), tag and
  source matching with ``ANY_SOURCE``/``ANY_TAG``, and the classic
  collectives (``barrier``, ``bcast``, ``scatter``, ``gather``,
  ``allgather``, ``reduce``, ``allreduce``, ``alltoall``).
- :func:`mpi_run` — launch an SPMD function across N ranks (threads) and
  collect per-rank return values, like ``mpiexec -n N``.

Messages are pickled on send, so ranks never share mutable state —
the isolation property real MPI gives — and the collectives are built on
the point-to-point layer with an internal tag space, as in a real
implementation.
"""

from repro.mpilite.comm import ANY_SOURCE, ANY_TAG, Communicator, Status
from repro.mpilite.launcher import mpi_run
from repro.mpilite.request import Request

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Status",
    "Request",
    "mpi_run",
]

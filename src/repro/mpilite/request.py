"""Nonblocking communication requests.

Mirrors the mpi4py ``Request`` surface: ``test()`` polls for completion,
``wait()`` blocks.  Send requests complete immediately (mpilite sends
are eager/buffered); receive requests complete when a matching message
arrives.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.util.errors import TimeoutError_

_UNSET = object()


class Request:
    """Handle for a nonblocking send or receive."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = _UNSET

    @classmethod
    def completed(cls, value: Any = None) -> "Request":
        """A request that is already complete (eager sends)."""
        request = cls()
        request._fulfill(value)
        return request

    def _fulfill(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def test(self) -> tuple[bool, Any]:
        """(done, value) without blocking — mpi4py's ``Request.test``."""
        if self._event.is_set():
            return (True, self._value)
        return (False, None)

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; returns the received object (None for
        send requests).  Raises TimeoutError_ on expiry."""
        if not self._event.wait(timeout):
            raise TimeoutError_("request did not complete within timeout")
        return self._value

    @staticmethod
    def waitall(requests: list["Request"], timeout: float | None = None) -> list[Any]:
        """Wait for every request; values in request order
        (mpi4py's ``Request.waitall``)."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        values = []
        for request in requests:
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0)
            values.append(request.wait(remaining))
        return values

    @staticmethod
    def waitany(
        requests: list["Request"], timeout: float | None = None, poll: float = 0.001
    ) -> tuple[int, Any]:
        """Wait until any request completes; returns (index, value)
        (mpi4py's ``Request.waitany``)."""
        import time

        if not requests:
            raise ValueError("waitany needs at least one request")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            for i, request in enumerate(requests):
                done, value = request.test()
                if done:
                    return (i, value)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError_("no request completed within timeout")
            time.sleep(poll)

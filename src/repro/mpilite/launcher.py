"""SPMD launcher: ``mpi_run`` is mpilite's ``mpiexec -n N``.

Runs one Python callable on N rank threads, each handed its
:class:`Communicator`, and collects per-rank return values.  A rank that
raises aborts the whole run (like an MPI abort): the first exception is
re-raised in the caller after all ranks have been joined.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

from repro.mpilite.comm import Communicator, _World
from repro.util.errors import ReproError


class MpiAbortError(ReproError):
    """A rank raised; carries the failing rank and original exception."""

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original


def mpi_run(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = 120.0,
    **kwargs: Any,
) -> list[Any]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``size`` rank threads.

    Returns the per-rank return values in rank order.  Raises
    :class:`MpiAbortError` wrapping the lowest-rank failure if any rank
    raised, and :class:`ReproError` if ranks are still running at
    ``timeout`` (a deadlocked program).
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    world = _World()
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Communicator(world, "world", rank, size)
        try:
            value = fn(comm, *args, **kwargs)
            with lock:
                results[rank] = value
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with lock:
                errors.append((rank, exc))

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"mpilite-rank-{rank}", daemon=True)
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    if any(t.is_alive() for t in threads):
        raise ReproError(
            f"mpi_run: ranks still running after {timeout}s — deadlock suspected"
        )
    if errors:
        rank, original = min(errors, key=lambda e: e[0])
        raise MpiAbortError(rank, original)
    return results

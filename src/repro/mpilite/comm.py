"""Communicator: point-to-point messaging and collectives.

Each rank runs on its own thread; messages are routed through per-rank
mailboxes owned by a :class:`_World`.  Payloads are pickled on send and
unpickled on delivery, so ranks observe value semantics (no shared
mutable state), the isolation property real MPI provides.

Collectives are implemented over the point-to-point layer using an
internal tag space and a per-communicator collective epoch: as in MPI,
all ranks of a communicator must call collectives in the same order.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Sequence
from typing import Any

from repro.mpilite.request import Request
from repro.util.errors import TimeoutError_
from repro.util.serialization import decode_object, encode_object

#: Wildcard source/tag for receives (mirrors MPI.ANY_SOURCE/ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1

#: Default bound on blocking receives; simulated runs that exceed it are
#: deadlocked, and failing beats hanging the test suite.
DEFAULT_RECV_TIMEOUT = 60.0


class Status:
    """Delivery metadata for a received message."""

    __slots__ = ("source", "tag")

    def __init__(self, source: int, tag: Any) -> None:
        self.source = source
        self.tag = tag

    def __repr__(self) -> str:
        return f"Status(source={self.source}, tag={self.tag!r})"


def _matches(pattern_source: int, pattern_tag: Any, source: int, tag: Any) -> bool:
    if pattern_source != ANY_SOURCE and pattern_source != source:
        return False
    if pattern_tag != ANY_TAG and pattern_tag != tag:
        return False
    return True


class _Mailbox:
    """One rank's incoming-message buffer with posted-receive matching."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._pending: deque[tuple[int, Any, bytes]] = deque()
        self._posted: list[tuple[int, Any, Request]] = []

    def put(self, source: int, tag: Any, data: bytes) -> None:
        with self._cond:
            for i, (p_source, p_tag, request) in enumerate(self._posted):
                if _matches(p_source, p_tag, source, tag):
                    del self._posted[i]
                    request._fulfill((decode_object(data), Status(source, tag)))
                    return
            self._pending.append((source, tag, data))
            self._cond.notify_all()

    def _take_pending(self, source: int, tag: Any) -> tuple[int, Any, bytes] | None:
        for i, (m_source, m_tag, data) in enumerate(self._pending):
            if _matches(source, tag, m_source, m_tag):
                del self._pending[i]
                return (m_source, m_tag, data)
        return None

    def get(
        self, source: int, tag: Any, timeout: float | None
    ) -> tuple[Any, Status]:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                found = self._take_pending(source, tag)
                if found is not None:
                    m_source, m_tag, data = found
                    return (decode_object(data), Status(m_source, m_tag))
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError_(
                        f"recv(source={source}, tag={tag!r}) timed out — "
                        "likely a deadlock in the rank program"
                    )
                self._cond.wait(remaining)

    def post(self, source: int, tag: Any) -> Request:
        with self._cond:
            found = self._take_pending(source, tag)
            if found is not None:
                m_source, m_tag, data = found
                return Request.completed((decode_object(data), Status(m_source, m_tag)))
            request = Request()
            self._posted.append((source, tag, request))
            return request

    def probe(self, source: int, tag: Any) -> Status | None:
        with self._cond:
            for m_source, m_tag, _ in self._pending:
                if _matches(source, tag, m_source, m_tag):
                    return Status(m_source, m_tag)
            return None


class _World:
    """Shared routing fabric for one SPMD run: mailboxes keyed by
    (communicator id, rank), created lazily so split/dup communicators
    allocate their own address space."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._mailboxes: dict[tuple[str, int], _Mailbox] = {}

    def mailbox(self, comm_id: str, rank: int) -> _Mailbox:
        key = (comm_id, rank)
        with self._lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = _Mailbox()
                self._mailboxes[key] = box
            return box


class Communicator:
    """One rank's view of a communicator (mirrors ``MPI.Comm``)."""

    def __init__(self, world: _World, comm_id: str, rank: int, size: int) -> None:
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self._world = world
        self._comm_id = comm_id
        self._rank = rank
        self._size = size
        self._coll_epoch = 0

    # -- rank info -----------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._size

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self._size:
            raise ValueError(f"peer rank {peer} out of range [0, {self._size})")

    # -- point-to-point --------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager (buffered) send: pickles ``obj`` and enqueues it."""
        self._check_peer(dest)
        data = encode_object(obj)
        self._world.mailbox(self._comm_id, dest).put(self._rank, tag, data)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; eager, so the request is complete at once."""
        self.send(obj, dest, tag)
        return Request.completed(None)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = DEFAULT_RECV_TIMEOUT,
        status: Status | None = None,
    ) -> Any:
        """Blocking receive; returns the received object.

        Pass a :class:`Status` to capture the actual source/tag of the
        matched message (mpi4py's ``status`` out-parameter idiom).
        """
        obj, delivered = self._world.mailbox(self._comm_id, self._rank).get(
            source, tag, timeout
        )
        if status is not None:
            status.source = delivered.source
            status.tag = delivered.tag
        return obj

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``wait()`` returns the received object."""
        inner = self._world.mailbox(self._comm_id, self._rank).post(source, tag)

        # Wrap so wait()/test() yield just the payload, like mpi4py.
        request = Request()

        def adapt() -> None:
            payload, _status = inner.wait(None)
            request._fulfill(payload)

        done, value = inner.test()
        if done:
            request._fulfill(value[0])
        else:
            threading.Thread(target=adapt, daemon=True).start()
        return request

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Nonblocking probe: Status of a matching pending message, or None."""
        return self._world.mailbox(self._comm_id, self._rank).probe(source, tag)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        timeout: float | None = DEFAULT_RECV_TIMEOUT,
    ) -> Any:
        """Combined send + receive (deadlock-free pairwise exchange).

        Eager sends make the naive send-then-recv ordering safe here,
        but the combined call mirrors mpi4py's ``sendrecv`` so SPMD code
        ports directly.
        """
        self.send(sendobj, dest, sendtag)
        return self.recv(source=source, tag=recvtag, timeout=timeout)

    # -- collectives --------------------------------------------------------------

    def _coll_tag(self, name: str) -> tuple[str, str, int]:
        tag = ("__coll", name, self._coll_epoch)
        self._coll_epoch += 1
        return tag

    def _coll_send(self, obj: Any, dest: int, tag: Any) -> None:
        data = encode_object(obj)
        self._world.mailbox(self._comm_id, dest).put(self._rank, tag, data)

    def _coll_recv(self, source: int, tag: Any) -> Any:
        obj, _ = self._world.mailbox(self._comm_id, self._rank).get(
            source, tag, DEFAULT_RECV_TIMEOUT
        )
        return obj

    def barrier(self) -> None:
        """Synchronize all ranks (gather-then-release through rank 0)."""
        tag = self._coll_tag("barrier")
        if self._rank == 0:
            for source in range(1, self._size):
                self._coll_recv(source, tag)
            for dest in range(1, self._size):
                self._coll_send(None, dest, tag)
        else:
            self._coll_send(None, 0, tag)
            self._coll_recv(0, tag)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast from ``root``; every rank returns the object."""
        self._check_peer(root)
        tag = self._coll_tag("bcast")
        if self._rank == root:
            for dest in range(self._size):
                if dest != root:
                    self._coll_send(obj, dest, tag)
            return obj
        return self._coll_recv(root, tag)

    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one element per rank from ``root``'s sequence."""
        self._check_peer(root)
        tag = self._coll_tag("scatter")
        if self._rank == root:
            if sendobj is None or len(sendobj) != self._size:
                raise ValueError(
                    f"scatter needs exactly {self._size} elements at the root"
                )
            for dest in range(self._size):
                if dest != root:
                    self._coll_send(sendobj[dest], dest, tag)
            return decode_object(encode_object(sendobj[root]))
        return self._coll_recv(root, tag)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank at ``root`` (rank order)."""
        self._check_peer(root)
        tag = self._coll_tag("gather")
        if self._rank == root:
            out: list[Any] = []
            for source in range(self._size):
                if source == root:
                    out.append(decode_object(encode_object(obj)))
                else:
                    out.append(self._coll_recv(source, tag))
            return out
        self._coll_send(obj, root, tag)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather at rank 0, then broadcast the list to everyone."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Any | None:
        """Reduce rank contributions with ``op`` at ``root``.

        ``op`` must be associative; values are folded in rank order.
        """
        gathered = self.gather(obj, root=root)
        if gathered is None:
            return None
        result = gathered[0]
        for value in gathered[1:]:
            result = op(result, value)
        return result

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce at rank 0 then broadcast the result."""
        reduced = self.reduce(obj, op, root=0)
        return self.bcast(reduced, root=0)

    def alltoall(self, sendobjs: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: element j of this rank's sequence
        goes to rank j; returns the objects received from each rank."""
        if len(sendobjs) != self._size:
            raise ValueError(f"alltoall needs exactly {self._size} elements")
        tag = self._coll_tag("alltoall")
        for dest in range(self._size):
            if dest != self._rank:
                self._coll_send(sendobjs[dest], dest, tag)
        out: list[Any] = []
        for source in range(self._size):
            if source == self._rank:
                out.append(decode_object(encode_object(sendobjs[self._rank])))
            else:
                out.append(self._coll_recv(source, tag))
        return out

    # -- communicator management ------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the communicator by ``color``; ranks within each new
        communicator are ordered by (key, old rank), as in MPI_Comm_split."""
        key = self._rank if key is None else key
        epoch = self._coll_epoch  # identical on all ranks at this call
        triples = self.allgather((color, key, self._rank))
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        ranks = [r for _, r in members]
        new_rank = ranks.index(self._rank)
        new_id = f"{self._comm_id}/split@{epoch}:{color}"
        return Communicator(self._world, new_id, new_rank, len(ranks))

    def dup(self) -> "Communicator":
        """A new communicator with the same group (separate tag space)."""
        epoch = self._coll_epoch
        self.barrier()  # keep epochs aligned, as dup is collective
        new_id = f"{self._comm_id}/dup@{epoch}"
        return Communicator(self._world, new_id, self._rank, self._size)

"""Fabric endpoint: the per-resource agent that executes functions.

"Users first deploy specialized funcX endpoint software on a computer to
make it accessible for remote computation" (§IV-B).  An
:class:`Endpoint` registers with the broker, polls for leased tasks,
executes each on its provider, and reports results.  Stopping an
endpoint takes it offline at the broker, which requeues its leased tasks
— the other half of fire-and-forget.

An optional ``latency`` models the WAN hop between the cloud service and
the site (applied around each poll), so examples can show geography
without real networks.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any

from repro.fabric.auth import Token
from repro.fabric.broker import CloudBroker
from repro.fabric.providers import LocalProvider, Provider
from repro.util.errors import EndpointUnavailableError
from repro.util.serialization import decode_object, encode_object


class Endpoint:
    """A registered compute endpoint."""

    def __init__(
        self,
        broker: CloudBroker,
        name: str,
        token: str | Token,
        provider: Provider | None = None,
        poll_delay: float = 0.01,
        prefetch: int = 4,
        latency: float = 0.0,
        endpoint_id: str | None = None,
    ) -> None:
        self._broker = broker
        self._name = name
        self._token = token.value if isinstance(token, Token) else token
        self._provider = provider if provider is not None else LocalProvider()
        self._poll_delay = poll_delay
        self._prefetch = prefetch
        self._latency = latency
        # Passing endpoint_id re-attaches to an existing registration —
        # the restarted-endpoint case of fire-and-forget delivery.
        if endpoint_id is None:
            endpoint_id = broker.register_endpoint(self._token, name)
        self._endpoint_id = endpoint_id
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def endpoint_id(self) -> str:
        """The broker-assigned endpoint identifier clients submit to."""
        return self._endpoint_id

    @property
    def name(self) -> str:
        return self._name

    def start(self) -> "Endpoint":
        """Go online and begin pulling tasks."""
        if self._thread is not None:
            raise RuntimeError("endpoint already started")
        self._stop.clear()
        self._broker.endpoint_online(self._token, self._endpoint_id)
        self._thread = threading.Thread(
            target=self._poll_loop, name=f"endpoint-{self._name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Go offline.  Leased tasks are requeued by the broker; the
        provider is drained of anything already executing."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._broker.endpoint_offline(self._token, self._endpoint_id)

    def __enter__(self) -> "Endpoint":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- execution -----------------------------------------------------------

    def _poll_loop(self) -> None:
        import time

        while not self._stop.is_set():
            if self._latency > 0:
                time.sleep(self._latency)
            try:
                leased = self._broker.fetch_tasks(
                    self._token, self._endpoint_id, max_tasks=self._prefetch
                )
            except EndpointUnavailableError:
                return  # raced with stop()
            if not leased:
                time.sleep(self._poll_delay)
                continue
            for task_id, payload in leased:
                self._provider.submit(self._make_runner(task_id, payload))

    def _make_runner(self, task_id: str, payload: bytes):
        def run() -> None:
            try:
                fn, args, kwargs = decode_object(payload)
                result: Any = fn(*args, **kwargs)
                data = encode_object(result)
                success = True
            except Exception:  # noqa: BLE001 - the failure is the result
                data = traceback.format_exc().encode("utf-8")
                success = False
            try:
                self._broker.put_result(self._token, task_id, success, data)
            except Exception:  # noqa: BLE001
                # Result too large or broker gone: report a failure text
                # so the client is not left waiting.
                try:
                    self._broker.put_result(
                        self._token,
                        task_id,
                        False,
                        traceback.format_exc().encode("utf-8"),
                    )
                except Exception:  # noqa: BLE001 - broker unreachable
                    pass

        return run

"""Execution providers for fabric endpoints.

The funcX endpoint "is responsible for provisioning resources via
various supported systems (e.g., local fork, Slurm, PBS), managing
execution of tasks using a pilot job model" (§IV-B).  A
:class:`Provider` abstracts that: the endpoint hands it callables, the
provider decides where/when they run.

- :class:`LocalProvider` — a bounded thread pool (the "local fork").
- :class:`SchedulerProvider` — submits each task as a pilot job to a
  :class:`repro.sched.Scheduler`, so task starts incur realistic batch
  queue delays.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

from repro.sched.scheduler import Scheduler
from repro.util.errors import InvalidStateError


class Provider(ABC):
    """Runs endpoint task bodies on some resource."""

    @abstractmethod
    def submit(self, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run; returns immediately."""

    @abstractmethod
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for in-flight tasks."""


class LocalProvider(Provider):
    """Execute tasks on a bounded local thread pool."""

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fabric-local"
        )
        self._closed = False
        self._lock = threading.Lock()

    def submit(self, fn: Callable[[], None]) -> None:
        with self._lock:
            if self._closed:
                raise InvalidStateError("provider is shut down")
            self._pool.submit(fn)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait)


class SchedulerProvider(Provider):
    """Execute each task as a pilot job on a cluster scheduler.

    ``walltime`` is the per-task request; tasks that exceed it are
    killed by the scheduler's walltime watchdog and their fabric task
    fails accordingly (the endpoint reports the body's outcome, which
    never arrives — the broker's retry budget then applies when the
    endpoint restarts).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        nodes_per_task: int = 1,
        walltime: float = 3600.0,
    ) -> None:
        self._scheduler = scheduler
        self._nodes = nodes_per_task
        self._walltime = walltime
        self._closed = False
        self._lock = threading.Lock()
        self._inflight: list[object] = []

    def submit(self, fn: Callable[[], None]) -> None:
        with self._lock:
            if self._closed:
                raise InvalidStateError("provider is shut down")
            job = self._scheduler.submit(
                fn, nodes=self._nodes, walltime=self._walltime, name="fabric-task"
            )
            self._inflight.append(job)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            jobs = list(self._inflight)
        if wait:
            for job in jobs:
                job.wait(timeout=self._walltime)  # type: ignore[attr-defined]

"""The compute fabric: a federated function-as-a-service substrate.

Stands in for funcX (paper §IV-B): "arbitrary Python functions can be
reliably executed on remote computers".  The pieces map one-to-one onto
the funcX architecture the paper describes:

- :class:`AuthServer` (:mod:`repro.fabric.auth`) — OAuth2-style client
  credential grants; every fabric request carries a bearer token.
- :class:`CloudBroker` (:mod:`repro.fabric.broker`) — the hosted cloud
  service: accepts task submissions, queues them per endpoint, provides
  *fire-and-forget* execution (tasks survive endpoint restarts and are
  redelivered), stores results until retrieved, and enforces the
  **payload size cap** (funcX's 10 MB limit) that motivates the
  out-of-band data sharing service.
- :class:`Endpoint` (:mod:`repro.fabric.endpoint`) — deployed per
  resource; pulls tasks from the broker and executes them on a
  provisioning provider (local threads, or pilot jobs on a simulated
  cluster scheduler).
- :class:`FabricClient` (:mod:`repro.fabric.client`) — the user-facing
  API: ``submit(fn, *args, endpoint=...)`` returning a
  :class:`FabricFuture`.

The paper uses funcX to start/stop the EMEWS DB, service, and worker
pools remotely, and to run one-off functions (GPR retraining) on
specific resources; the examples reproduce those flows on this fabric.
"""

from repro.fabric.auth import (
    SCOPE_COMPUTE,
    SCOPE_ENDPOINT,
    SCOPE_TRANSFER,
    AuthServer,
    NullAuthServer,
    Token,
)
from repro.fabric.broker import CloudBroker, FabricTaskState
from repro.fabric.client import FabricClient, FabricFuture, RemoteExecutionError
from repro.fabric.endpoint import Endpoint
from repro.fabric.providers import LocalProvider, Provider, SchedulerProvider

__all__ = [
    "SCOPE_COMPUTE",
    "SCOPE_ENDPOINT",
    "SCOPE_TRANSFER",
    "AuthServer",
    "NullAuthServer",
    "Token",
    "CloudBroker",
    "FabricTaskState",
    "FabricClient",
    "FabricFuture",
    "RemoteExecutionError",
    "Endpoint",
    "Provider",
    "LocalProvider",
    "SchedulerProvider",
]

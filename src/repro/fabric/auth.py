"""OAuth2-style authentication for the compute fabric.

The funcX cloud service authenticates and authorizes users via OAuth
2.0 (paper §IV-B).  This module reproduces the client-credentials flow
at the fidelity the platform needs: registered clients exchange their
secret for a bearer :class:`Token` with scopes and an expiry; services
validate tokens per request.  Token values are opaque random strings;
the server holds the mapping.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import threading
from dataclasses import dataclass

from repro.util.clock import Clock, SystemClock
from repro.util.errors import AuthenticationError
from repro.util.errors import AuthorizationError


#: Scope required to submit/inspect fabric tasks.
SCOPE_COMPUTE = "compute"
#: Scope required to register and operate endpoints.
SCOPE_ENDPOINT = "endpoint"
#: Scope required for data transfer operations.
SCOPE_TRANSFER = "transfer"


@dataclass(frozen=True)
class Token:
    """A bearer token: opaque value plus its (client-visible) metadata."""

    value: str
    client_id: str
    scopes: frozenset[str]
    expires_at: float

    def has_scope(self, scope: str) -> bool:
        return scope in self.scopes


def _hash_secret(secret: str) -> str:
    return hashlib.sha256(secret.encode("utf-8")).hexdigest()


class AuthServer:
    """Issues and validates bearer tokens (client-credentials grant).

    Secrets are stored hashed; comparison is constant-time.  Tokens
    expire after ``token_lifetime`` seconds of the injected clock.
    """

    def __init__(self, clock: Clock | None = None, token_lifetime: float = 3600.0) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._lifetime = token_lifetime
        self._lock = threading.Lock()
        self._clients: dict[str, tuple[str, frozenset[str]]] = {}
        self._tokens: dict[str, Token] = {}

    def register_client(
        self, client_id: str, secret: str, scopes: set[str] | frozenset[str]
    ) -> None:
        """Register a client with the scopes it may request."""
        with self._lock:
            if client_id in self._clients:
                raise ValueError(f"client {client_id!r} already registered")
            self._clients[client_id] = (_hash_secret(secret), frozenset(scopes))

    def issue_token(
        self,
        client_id: str,
        secret: str,
        scopes: set[str] | frozenset[str] | None = None,
    ) -> Token:
        """Exchange client credentials for a bearer token.

        ``scopes=None`` requests everything the client is allowed;
        requesting a scope outside the registration fails.
        """
        with self._lock:
            entry = self._clients.get(client_id)
            if entry is None:
                raise AuthenticationError(f"unknown client {client_id!r}")
            secret_hash, allowed = entry
            if not hmac.compare_digest(secret_hash, _hash_secret(secret)):
                raise AuthenticationError("bad client secret")
            requested = allowed if scopes is None else frozenset(scopes)
            if not requested <= allowed:
                raise AuthorizationError(
                    f"client {client_id!r} may not request scopes {sorted(requested - allowed)}"
                )
            token = Token(
                value=secrets.token_urlsafe(32),
                client_id=client_id,
                scopes=requested,
                expires_at=self._clock.now() + self._lifetime,
            )
            self._tokens[token.value] = token
            return token

    def validate(self, token_value: str, scope: str) -> Token:
        """Validate a bearer token and its scope; returns the token."""
        with self._lock:
            token = self._tokens.get(token_value)
        if token is None:
            raise AuthenticationError("unknown token")
        if self._clock.now() >= token.expires_at:
            raise AuthenticationError("token expired")
        if not token.has_scope(scope):
            raise AuthorizationError(f"token lacks scope {scope!r}")
        return token

    def revoke(self, token_value: str) -> bool:
        """Revoke a token; True if it existed."""
        with self._lock:
            return self._tokens.pop(token_value, None) is not None


class NullAuthServer(AuthServer):
    """Accepts every token; used when a deployment disables auth."""

    def validate(self, token_value: str, scope: str) -> Token:  # noqa: D102
        return Token(value=token_value, client_id="anonymous", scopes=frozenset({scope}), expires_at=float("inf"))

"""User-facing fabric client.

The interface the paper's ME algorithm uses: "initializing a funcX
client, and then starting the EMEWS DB, an initial worker pool, and the
EMEWS service remotely ... using funcX" (§VI).  ``submit`` ships a
Python callable (with arguments) to a named endpoint and returns a
:class:`FabricFuture`; ``run`` is the blocking convenience the examples
use for remote setup steps and one-off computations like GPR retraining.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from typing import Any

from repro.fabric.auth import Token
from repro.fabric.broker import CloudBroker, FabricTaskState
from repro.telemetry.tracing import get_tracer
from repro.util.errors import ReproError, TimeoutError_
from repro.util.serialization import decode_object, encode_object


class RemoteExecutionError(ReproError):
    """The remote function raised; carries the remote traceback text."""


class FabricFuture:
    """Handle to one fabric task."""

    def __init__(self, broker: CloudBroker, token: str, task_id: str) -> None:
        self._broker = broker
        self._token = token
        self.task_id = task_id
        self._outcome: tuple[bool, Any] | None = None

    def state(self) -> FabricTaskState:
        """The broker's view of the task (SUCCESS once retrieved)."""
        if self._outcome is not None:
            return (
                FabricTaskState.SUCCESS if self._outcome[0] else FabricTaskState.FAILED
            )
        return self._broker.task_state(self._token, self.task_id)

    def done(self) -> bool:
        return self.state() in (FabricTaskState.SUCCESS, FabricTaskState.FAILED)

    def result(self, timeout: float | None = 60.0, poll: float = 0.01) -> Any:
        """The remote return value; raises :class:`RemoteExecutionError`
        if the function failed, TimeoutError_ if not done in time."""
        if self._outcome is None:
            tracer = get_tracer()
            wait_parent = tracer.current_context() if tracer.enabled else None
            t0 = tracer.clock.now() if tracer.enabled else 0.0
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                stored = self._broker.get_result(self._token, self.task_id)
                if stored is not None:
                    success, data = stored
                    value = decode_object(data) if success else data
                    self._outcome = (success, value)
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError_(
                        f"fabric task {self.task_id} not done after {timeout}s"
                    )
                time.sleep(poll)
            # Retroactive: the client-observed wait for this result.
            tracer.add_span(
                "fabric.wait",
                "fabric_client",
                t0,
                tracer.clock.now(),
                parent=wait_parent,
                attrs={"task_id": self.task_id},
            )
        success, value = self._outcome
        if not success:
            raise RemoteExecutionError(str(value))
        return value


class FabricClient:
    """Submit Python functions to fabric endpoints."""

    def __init__(self, broker: CloudBroker, token: str | Token) -> None:
        self._broker = broker
        self._token = token.value if isinstance(token, Token) else token

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        endpoint: str,
        **kwargs: Any,
    ) -> FabricFuture:
        """Ship ``fn(*args, **kwargs)`` to ``endpoint``; returns a future.

        The callable and arguments must be picklable and fit the
        broker's payload cap — large inputs belong in the data sharing
        service, passed as proxies.
        """
        tracer = get_tracer()
        with tracer.span("fabric.submit", component="fabric_client") as sp:
            payload = encode_object((fn, args, kwargs))
            sp.set_attr("endpoint", endpoint)
            sp.set_attr("payload_bytes", len(payload))
            task_id = self._broker.submit(self._token, endpoint, payload)
            sp.set_attr("task_id", task_id)
        return FabricFuture(self._broker, self._token, task_id)

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        endpoint: str,
        timeout: float | None = 60.0,
        **kwargs: Any,
    ) -> Any:
        """Blocking submit-and-wait."""
        return self.submit(fn, *args, endpoint=endpoint, **kwargs).result(timeout)

    def map(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        endpoint: str,
        timeout: float | None = 60.0,
    ) -> list[Any]:
        """Submit ``fn(item)`` for each item, then gather in order."""
        futures = [self.submit(fn, item, endpoint=endpoint) for item in items]
        return [f.result(timeout) for f in futures]

    def endpoint_status(self, endpoint: str) -> dict[str, object]:
        """Queue depth / liveness for an endpoint."""
        return self._broker.endpoint_status(self._token, endpoint)

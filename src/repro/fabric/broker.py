"""The fabric cloud broker — the "hosted funcX cloud service".

Paper §IV-B: "The hosted funcX cloud service acts as an interface for
users to submit tasks.  The service is responsible for managing secure
communication with an endpoint, authenticating and authorizing users
(via OAuth 2.0), providing fire-and-forget execution by storing and
retrying tasks in the event an endpoint is offline or fails, and storing
results (or failures) until retrieved by a user."

Every one of those behaviours lives here:

- submissions are accepted for offline endpoints and delivered later;
- tasks leased to an endpoint that goes offline are requeued, up to a
  retry budget, after which they fail;
- results persist until the client retrieves them;
- task inputs and outputs are size-capped (the 10 MB funcX limit),
  which is what pushes large data onto the data sharing service.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.fabric.auth import (
    SCOPE_COMPUTE,
    SCOPE_ENDPOINT,
    AuthServer,
    NullAuthServer,
)
from repro.telemetry.metrics import BYTE_BUCKETS, MetricsRegistry, get_metrics
from repro.telemetry.tracing import (
    STATUS_ERROR,
    SpanContext,
    Tracer,
    get_tracer,
)
from repro.util.clock import Clock, SystemClock
from repro.util.errors import (
    EndpointUnavailableError,
    NotFoundError,
    PayloadTooLargeError,
)
from repro.util.ids import short_id

#: funcX's documented input/output size cap (paper §IV-E).
DEFAULT_PAYLOAD_LIMIT = 10 * 1024 * 1024


class FabricTaskState(enum.Enum):
    """Lifecycle of a fabric task."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCESS = "success"
    FAILED = "failed"


@dataclass
class _BrokerTask:
    task_id: str
    endpoint_id: str
    payload: bytes
    state: FabricTaskState = FabricTaskState.PENDING
    result: bytes | None = None
    error: str | None = None
    attempts: int = 0
    submitted_at: float = 0.0
    finished_at: float | None = None


@dataclass
class _EndpointRecord:
    endpoint_id: str
    name: str
    online: bool = False
    queue: deque[str] = field(default_factory=deque)  # pending task ids
    leased: set[str] = field(default_factory=set)  # running task ids


class CloudBroker:
    """Central task routing and result storage for the fabric."""

    def __init__(
        self,
        auth: AuthServer | None = None,
        clock: Clock | None = None,
        payload_limit: int = DEFAULT_PAYLOAD_LIMIT,
        max_attempts: int = 3,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._auth = auth if auth is not None else NullAuthServer()
        self._clock = clock if clock is not None else SystemClock()
        self._payload_limit = payload_limit
        self._max_attempts = max_attempts
        self._tracer = tracer
        registry = metrics if metrics is not None else get_metrics()
        self._m_submitted = registry.counter(
            "fabric.tasks_submitted", "tasks accepted by the broker"
        )
        self._m_completed = registry.counter(
            "fabric.tasks_completed", "tasks that reached SUCCESS"
        )
        self._m_failed = registry.counter(
            "fabric.tasks_failed", "tasks that reached FAILED"
        )
        self._m_payload_bytes = registry.histogram(
            "fabric.payload_bytes", BYTE_BUCKETS, "submitted task payload sizes"
        )
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointRecord] = {}
        self._tasks: dict[str, _BrokerTask] = {}
        # task_id -> endpoint that leased it (for put_result validation).
        self._leases: dict[str, str] = {}
        # task_id -> submitter's span context, for the retroactive
        # fabric.task span emitted when the task reaches a terminal state.
        self._task_traces: dict[str, SpanContext | None] = {}

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def payload_limit(self) -> int:
        return self._payload_limit

    def _check_size(self, data: bytes, what: str) -> None:
        if len(data) > self._payload_limit:
            raise PayloadTooLargeError(len(data), self._payload_limit, what)

    # -- endpoint side ------------------------------------------------------

    def register_endpoint(self, token: str, name: str) -> str:
        """Register an endpoint; returns its id.  Registration leaves
        the endpoint offline until :meth:`endpoint_online`."""
        self._auth.validate(token, SCOPE_ENDPOINT)
        with self._lock:
            endpoint_id = short_id("ep")
            self._endpoints[endpoint_id] = _EndpointRecord(endpoint_id, name)
            return endpoint_id

    def _record(self, endpoint_id: str) -> _EndpointRecord:
        record = self._endpoints.get(endpoint_id)
        if record is None:
            raise NotFoundError(f"unknown endpoint {endpoint_id!r}")
        return record

    def endpoint_online(self, token: str, endpoint_id: str) -> None:
        self._auth.validate(token, SCOPE_ENDPOINT)
        with self._lock:
            self._record(endpoint_id).online = True

    def endpoint_offline(self, token: str, endpoint_id: str) -> None:
        """Mark an endpoint offline and requeue its leased tasks.

        This is the fire-and-forget path: tasks the endpoint was running
        go back to PENDING (until the attempt budget is spent) and will
        be redelivered when the endpoint — or a replacement — returns.
        """
        self._auth.validate(token, SCOPE_ENDPOINT)
        with self._lock:
            record = self._record(endpoint_id)
            record.online = False
            for task_id in list(record.leased):
                record.leased.discard(task_id)
                self._leases.pop(task_id, None)
                self._requeue_locked(record, self._tasks[task_id])

    def _finish_locked(self, task: _BrokerTask, failed: bool) -> None:
        """Terminal-state bookkeeping: span + counters (call under lock).

        Records the task's whole broker residency (submit to finish) as
        a ``fabric.task`` span parented under the submitter's span, so
        fire-and-forget retries and result latency show up per task.
        """
        (self._m_failed if failed else self._m_completed).inc()
        tracer = self.tracer
        parent = self._task_traces.pop(task.task_id, None)
        if not tracer.enabled or task.finished_at is None:
            return
        tracer.add_span(
            "fabric.task",
            "fabric",
            task.submitted_at,
            task.finished_at,
            parent=parent,
            attrs={
                "task_id": task.task_id,
                "endpoint": task.endpoint_id,
                "attempts": task.attempts,
            },
            status=STATUS_ERROR if failed else "ok",
        )

    def _requeue_locked(self, record: _EndpointRecord, task: _BrokerTask) -> None:
        if task.attempts >= self._max_attempts:
            task.state = FabricTaskState.FAILED
            task.error = f"gave up after {task.attempts} attempts (endpoint failures)"
            task.finished_at = self._clock.now()
            self._finish_locked(task, failed=True)
        else:
            task.state = FabricTaskState.PENDING
            record.queue.appendleft(task.task_id)  # retry before new work

    def fetch_tasks(
        self, token: str, endpoint_id: str, max_tasks: int = 1
    ) -> list[tuple[str, bytes]]:
        """Lease up to ``max_tasks`` pending tasks to an endpoint."""
        self._auth.validate(token, SCOPE_ENDPOINT)
        with self._lock:
            record = self._record(endpoint_id)
            if not record.online:
                raise EndpointUnavailableError(
                    f"endpoint {endpoint_id!r} is offline; bring it online first"
                )
            leased: list[tuple[str, bytes]] = []
            while record.queue and len(leased) < max_tasks:
                task_id = record.queue.popleft()
                task = self._tasks[task_id]
                task.state = FabricTaskState.RUNNING
                task.attempts += 1
                record.leased.add(task_id)
                self._leases[task_id] = endpoint_id
                leased.append((task_id, task.payload))
            return leased

    def put_result(
        self, token: str, task_id: str, success: bool, data: bytes
    ) -> None:
        """Store a task's result (or failure text) until retrieved."""
        self._auth.validate(token, SCOPE_ENDPOINT)
        self._check_size(data, "task result")
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None:
                raise NotFoundError(f"unknown task {task_id!r}")
            endpoint_id = self._leases.pop(task_id, None)
            if endpoint_id is not None:
                self._endpoints[endpoint_id].leased.discard(task_id)
            if success:
                task.state = FabricTaskState.SUCCESS
                task.result = data
            else:
                task.state = FabricTaskState.FAILED
                task.error = data.decode("utf-8", errors="replace")
            task.finished_at = self._clock.now()
            self._finish_locked(task, failed=not success)

    # -- client side ----------------------------------------------------------

    def submit(self, token: str, endpoint_id: str, payload: bytes) -> str:
        """Queue a task for an endpoint (online or not); returns task id."""
        self._auth.validate(token, SCOPE_COMPUTE)
        self._check_size(payload, "task payload")
        self._m_submitted.inc()
        self._m_payload_bytes.observe(len(payload))
        tracer = self.tracer
        with self._lock:
            record = self._record(endpoint_id)
            task = _BrokerTask(
                task_id=short_id("ft"),
                endpoint_id=endpoint_id,
                payload=payload,
                submitted_at=self._clock.now(),
            )
            self._tasks[task.task_id] = task
            record.queue.append(task.task_id)
            if tracer.enabled:
                # Remember who submitted; the fabric.task span parents
                # under the submit-side span once the task finishes.
                self._task_traces[task.task_id] = tracer.current_context()
            return task.task_id

    def task_state(self, token: str, task_id: str) -> FabricTaskState:
        self._auth.validate(token, SCOPE_COMPUTE)
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None:
                raise NotFoundError(f"unknown task {task_id!r}")
            return task.state

    def get_result(
        self, token: str, task_id: str, remove: bool = True
    ) -> tuple[bool, bytes | str] | None:
        """The stored outcome: ``(True, result_bytes)`` on success,
        ``(False, error_text)`` on failure, None while incomplete.

        ``remove=True`` frees the stored result (the paper's "storing
        results ... until retrieved by a user").
        """
        self._auth.validate(token, SCOPE_COMPUTE)
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None:
                raise NotFoundError(f"unknown task {task_id!r}")
            if task.state == FabricTaskState.SUCCESS:
                assert task.result is not None
                outcome: tuple[bool, bytes | str] = (True, task.result)
            elif task.state == FabricTaskState.FAILED:
                outcome = (False, task.error or "unknown failure")
            else:
                return None
            if remove:
                del self._tasks[task.task_id]
            return outcome

    # -- introspection ------------------------------------------------------------

    def endpoint_status(self, token: str, endpoint_id: str) -> dict[str, object]:
        """Queue depth and liveness for one endpoint."""
        self._auth.validate(token, SCOPE_COMPUTE)
        with self._lock:
            record = self._record(endpoint_id)
            return {
                "name": record.name,
                "online": record.online,
                "queued": len(record.queue),
                "running": len(record.leased),
            }

    def list_endpoints(self, token: str) -> list[str]:
        self._auth.validate(token, SCOPE_COMPUTE)
        with self._lock:
            return list(self._endpoints)

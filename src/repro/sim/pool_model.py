"""DES worker pool.

Runs the same queueing code as the threaded pool — non-blocking
``EQSQL.query_task_batch`` with the §IV-D batch/threshold policy — as a
simt process.  Each DB round trip costs ``query_cost`` virtual seconds,
which is the mechanism behind Fig 3's middle panel: with batch ==
workers and threshold 1, every completion forces a fetch round trip
during which other workers may go idle.

Workers are a :class:`repro.simt.Resource` of ``n_workers`` slots; task
execution occupies a slot for the task's modelled runtime, then the
result is reported through the real EQSQL API (stamping virtual-time
start/stop into the EMEWS DB, from which the telemetry series are
derived).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.core.constants import EQ_ABORT, EQ_STOP
from repro.core.eqsql import EQSQL
from repro.core.fetch import FetchPolicy
from repro.simt.environment import Environment
from repro.simt.resources import Resource
from repro.telemetry.events import EventKind, TraceCollector
from repro.telemetry.tracing import SpanContext, get_tracer

#: Maps (eq_task_id, payload) to the task's execution time.
RuntimeFn = Callable[[int, str], float]


@dataclass
class SimPoolConfig:
    """DES pool parameters (mirrors :class:`repro.pools.PoolConfig`)."""

    name: str
    work_type: int = 0
    n_workers: int = 33
    batch_size: int | None = None
    threshold: int = 1
    #: Virtual cost of one DB batch query (claim round trip).
    query_cost: float = 0.2
    #: Idle re-check period when the policy says not to fetch.
    poll_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.batch_size is None:
            self.batch_size = self.n_workers
        FetchPolicy(self.batch_size, self.threshold)  # validate


class SimWorkerPool:
    """A worker pool as a discrete-event process."""

    def __init__(
        self,
        env: Environment,
        eqsql: EQSQL,
        config: SimPoolConfig,
        runtime_fn: RuntimeFn,
        trace: TraceCollector | None = None,
    ) -> None:
        self.env = env
        self.eqsql = eqsql
        self.config = config
        self._runtime_fn = runtime_fn
        self._trace = trace
        self._policy = FetchPolicy(config.batch_size or config.n_workers, config.threshold)
        self._workers = Resource(env, config.n_workers)
        self._owned = 0
        self._stopping = False
        self._draining = False
        self.tasks_completed = 0
        self.started_at: float | None = None
        self.process: Any = None

    @property
    def name(self) -> str:
        return self.config.name

    def owned(self) -> int:
        return self._owned

    def start(self) -> "SimWorkerPool":
        """Launch the fetch loop process at the current virtual time."""
        if self.process is not None:
            raise RuntimeError("pool already started")
        self.started_at = self.env.now
        if self._trace is not None:
            self._trace.record(EventKind.POOL_START, self.env.now, source=self.name)
        self.process = self.env.process(self._fetch_loop())
        return self

    def stop(self) -> None:
        """Stop fetching; owned tasks drain (local EQ_STOP)."""
        self._stopping = True

    # -- processes -----------------------------------------------------------

    def _fetch_loop(self):
        config = self.config
        while True:
            if self._stopping:
                if self._owned == 0:
                    break
                yield self.env.timeout(config.poll_delay)
                continue
            want = self._policy.to_fetch(self._owned)
            if want == 0:
                yield self.env.timeout(config.poll_delay)
                continue
            # The claim round trip costs virtual time; completions that
            # land during it increase the next deficit.
            fetch_t0 = self.env.now
            yield self.env.timeout(config.query_cost)
            messages = self.eqsql.query_task_batch(
                config.work_type,
                batch_size=config.batch_size or config.n_workers,
                threshold=config.threshold,
                owned=self._owned,
                worker_pool=config.name,
                timeout=0,
            )
            if not messages:
                yield self.env.timeout(config.poll_delay)
                continue
            # Retroactive only: DES processes interleave on one thread,
            # so implicit (stack-based) spans would cross-nest.  The
            # tracer must share the simulation clock for this to align.
            get_tracer().add_span(
                "pool.fetch",
                "sim_pool",
                fetch_t0,
                self.env.now,
                attrs={"pool": self.name, "n": len(messages)},
            )
            if self._trace is not None:
                self._trace.record(
                    EventKind.FETCH,
                    self.env.now,
                    source=self.name,
                    detail=str(len(messages)),
                )
            for message in messages:
                if message["payload"] in (EQ_STOP, EQ_ABORT):
                    self.eqsql.report_task(
                        message["eq_task_id"], config.work_type, message["payload"]
                    )
                    self._stopping = True
                    continue
                self._owned += 1
                self.env.process(self._execute(message))
        if self._trace is not None:
            self._trace.record(EventKind.POOL_STOP, self.env.now, source=self.name)

    def _execute(self, message: dict):
        eq_task_id = message["eq_task_id"]
        request = self._workers.request()
        yield request
        started_at = self.env.now
        if self._trace is not None:
            self._trace.task_start(started_at, eq_task_id, source=self.name)
        runtime = self._runtime_fn(eq_task_id, message["payload"])
        yield self.env.timeout(runtime)
        # Result payload: the scenario's runtime_fn owns the mapping to
        # objective values; the pool reports a reference result.
        self.eqsql.report_task(eq_task_id, self.config.work_type, message["payload"])
        if self._trace is not None:
            self._trace.task_stop(self.env.now, eq_task_id, source=self.name)
        get_tracer().add_span(
            "pool.task",
            "sim_pool",
            started_at,
            self.env.now,
            parent=SpanContext.from_wire(message.get("trace")),
            attrs={"pool": self.name, "eq_task_id": eq_task_id},
        )
        self._workers.release()
        self._owned -= 1
        self.tasks_completed += 1

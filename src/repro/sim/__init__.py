"""Discrete-event scenario models of the paper's evaluation (§VI).

These models drive the *actual* platform code — the EQSQL task queue,
the batch/threshold fetch policy, the GPR reprioritizer — under virtual
time, with the paper's parameters: 750 4-D Ackley tasks with lognormal
runtimes, 33-worker pools, reprioritization after every 50 completions,
pools joining mid-run behind a scheduler queue delay.

- :mod:`repro.sim.workload` — task sets and runtime models;
- :mod:`repro.sim.pool_model` — the DES worker pool (same fetch policy
  code as the threaded pool);
- :mod:`repro.sim.me_model` — the DES ME algorithm process (the Fig 2
  loop with GPR reprioritization);
- :mod:`repro.sim.scenarios` — Figure 3 panels and the Figure 4
  federated workflow, plus parameter-sweep ablations.
"""

from repro.sim.workload import AckleyWorkload, RuntimeModel
from repro.sim.pool_model import SimPoolConfig, SimWorkerPool
from repro.sim.me_model import SimMEAlgorithm
from repro.sim.metrics import ReassignmentStats, ordering_stabilizes, reassignment_stats
from repro.sim.scenarios import (
    Fig3Config,
    Fig4Config,
    PanelResult,
    Fig4Result,
    run_fig3_panel,
    run_fig3,
    run_fig4,
)

__all__ = [
    "AckleyWorkload",
    "RuntimeModel",
    "SimPoolConfig",
    "SimWorkerPool",
    "SimMEAlgorithm",
    "Fig3Config",
    "Fig4Config",
    "PanelResult",
    "Fig4Result",
    "run_fig3_panel",
    "run_fig3",
    "run_fig4",
    "ReassignmentStats",
    "reassignment_stats",
    "ordering_stabilizes",
]

"""Derived metrics for the Figure 4 reprioritization panel.

The very top of the paper's Figure 4 draws, for every reprioritization,
a line from each task's current priority to its new priority.  These
helpers reduce the recorded priority vectors to the quantities that
panel communicates: how much the ordering churns per round, and whether
the GPR is actually changing its mind as data accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.me_model import ReprioritizationTrace


@dataclass(frozen=True)
class ReassignmentStats:
    """Churn summary for one reprioritization round."""

    index: int
    n_tasks: int
    mean_abs_shift: float  # mean |new rank - old rank|
    max_abs_shift: int
    spearman_vs_previous: float  # rank correlation with previous round


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation of two aligned rank vectors."""
    if a.size < 2:
        return 1.0
    a = a.astype(float)
    b = b.astype(float)
    a_c = a - a.mean()
    b_c = b - b.mean()
    denom = float(np.sqrt(np.sum(a_c**2) * np.sum(b_c**2)))
    if denom == 0:
        return 1.0
    return float(np.sum(a_c * b_c) / denom)


def reassignment_stats(
    reprioritizations: list[ReprioritizationTrace],
) -> list[ReassignmentStats]:
    """Per-round churn relative to the previous round's ordering.

    Successive rounds cover shrinking task sets; the comparison aligns
    on the suffix (the tasks still queued at the later round correspond
    to the later entries of both priority vectors only approximately, so
    alignment is by normalized rank: each vector is scaled to [0, 1]
    before differencing the overlapping tail).
    """
    out: list[ReassignmentStats] = []
    previous: np.ndarray | None = None
    for record in reprioritizations:
        current = np.asarray(record.priorities, dtype=float)
        n = current.size
        if n == 0:
            continue
        if previous is None or previous.size == 0:
            mean_shift, max_shift, rho = 0.0, 0, 1.0
        else:
            # Compare the normalized ranks of the overlapping tail.
            k = min(n, previous.size)
            cur_norm = current[-k:] / max(n, 1)
            prev_norm = previous[-k:] / max(previous.size, 1)
            shifts = np.abs(cur_norm - prev_norm) * n
            mean_shift = float(shifts.mean())
            max_shift = int(round(shifts.max()))
            rho = _spearman(cur_norm, prev_norm)
        out.append(
            ReassignmentStats(
                index=record.index,
                n_tasks=n,
                mean_abs_shift=mean_shift,
                max_abs_shift=max_shift,
                spearman_vs_previous=rho,
            )
        )
        previous = current
    return out


def ordering_stabilizes(stats: list[ReassignmentStats]) -> bool:
    """True when later rounds agree with their predecessors more than
    early rounds did — the GPR converging on an ordering."""
    if len(stats) < 4:
        return True
    early = np.mean([s.spearman_vs_previous for s in stats[1:3]])
    late = np.mean([s.spearman_vs_previous for s in stats[-2:]])
    return bool(late >= early - 0.05)

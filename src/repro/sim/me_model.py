"""DES model of the asynchronous ME algorithm (the Fig 2 loop in §VI).

The process submits the full workload at t=0, then repeatedly waits for
the next ``repri_every`` completions.  At each trigger it computes new
priorities for the uncompleted tasks with the *real*
:class:`repro.me.GPRReprioritizer` (fit on the values observed so far)
and applies them through the real ``update_priorities`` path after a
modelled remote-retraining delay — the Theta/Midway2 round trip of the
paper, during which the pools keep consuming tasks.

Callbacks fire at configured reprioritization indices so scenarios can
attach side effects — Fig 4 submits worker-pool jobs 2 and 3 "during the
2nd and 4th reprioritizations".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.eqsql import EQSQL
from repro.me.reprioritizer import GPRReprioritizer
from repro.simt.environment import Environment
from repro.telemetry.events import EventKind, TraceCollector


@dataclass
class ReprioritizationTrace:
    """One reorder step under virtual time."""

    index: int
    time_start: float
    time_stop: float
    n_completed: int
    n_reprioritized: int
    priorities: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))


class SimMEAlgorithm:
    """The ME algorithm as a DES process."""

    def __init__(
        self,
        env: Environment,
        eqsql: EQSQL,
        work_type: int,
        points: np.ndarray,
        values: np.ndarray,
        payloads: list[str],
        repri_every: int = 50,
        poll_delay: float = 0.5,
        remote_duration: Callable[[int], float] | None = None,
        reprioritizer: GPRReprioritizer | None = None,
        on_reprioritization: Callable[[int], None] | None = None,
        trace: TraceCollector | None = None,
        exp_id: str = "exp-sim",
    ) -> None:
        """``remote_duration(n_completed)`` models the remote GPR
        retraining time; default ``1.0 + 0.004 * n`` virtual seconds."""
        self.env = env
        self.eqsql = eqsql
        self.work_type = work_type
        self.points = points
        self.values = values
        self.payloads = payloads
        self.repri_every = repri_every
        self.poll_delay = poll_delay
        self.remote_duration = (
            remote_duration if remote_duration is not None else lambda n: 1.0 + 0.004 * n
        )
        self.reprioritizer = (
            reprioritizer
            if reprioritizer is not None
            else GPRReprioritizer(optimize_hyperparameters=False, max_train=300)
        )
        self.on_reprioritization = on_reprioritization
        self.trace = trace
        self.exp_id = exp_id

        self.reprioritizations: list[ReprioritizationTrace] = []
        self.completion_order: list[int] = []  # task indices by completion
        self.process = None
        self._task_ids: list[int] = []

    def start(self) -> "SimMEAlgorithm":
        if self.process is not None:
            raise RuntimeError("ME algorithm already started")
        self.process = self.env.process(self._run())
        return self

    def completed_values(self) -> np.ndarray:
        """Objective values in completion order."""
        return self.values[np.array(self.completion_order, dtype=int)]

    # -- process -------------------------------------------------------------

    def _run(self):
        futures = self.eqsql.submit_tasks(self.exp_id, self.work_type, self.payloads)
        self._task_ids = [f.eq_task_id for f in futures]
        index_of = {tid: i for i, tid in enumerate(self._task_ids)}
        pending: set[int] = set(self._task_ids)
        since_repri = 0
        repri_index = 0

        while pending:
            completed = self.eqsql.pop_completed_ids(sorted(pending))
            for tid, _result in completed:
                pending.discard(tid)
                self.completion_order.append(index_of[tid])
                since_repri += 1
            if since_repri >= self.repri_every and pending:
                since_repri = 0
                repri_index += 1
                if self.on_reprioritization is not None:
                    self.on_reprioritization(repri_index)
                yield from self._reprioritize(repri_index, index_of, pending)
            else:
                yield self.env.timeout(self.poll_delay)

    def _reprioritize(self, repri_index: int, index_of: dict[int, int], pending: set[int]):
        t0 = self.env.now
        n_done = len(self.completion_order)
        if self.trace is not None:
            self.trace.record(
                EventKind.PHASE_START, t0, source="reprioritize", detail=str(n_done)
            )
        done_idx = np.array(self.completion_order, dtype=int)
        pending_ids = sorted(pending)
        pending_idx = np.array([index_of[t] for t in pending_ids], dtype=int)
        priorities = self.reprioritizer(
            self.points[done_idx], self.values[done_idx], self.points[pending_idx]
        )
        # The remote round trip: proxy resolution + GPR fit + reply.
        # Pools keep consuming during this window.
        yield self.env.timeout(self.remote_duration(n_done))
        n_updated = self.eqsql.update_priorities(
            pending_ids, [int(p) for p in priorities]
        )
        t1 = self.env.now
        if self.trace is not None:
            self.trace.record(
                EventKind.PHASE_STOP, t1, source="reprioritize", detail=str(n_updated)
            )
        self.reprioritizations.append(
            ReprioritizationTrace(
                index=repri_index,
                time_start=t0,
                time_stop=t1,
                n_completed=n_done,
                n_reprioritized=n_updated,
                priorities=np.asarray(priorities),
            )
        )

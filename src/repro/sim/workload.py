"""Workload generation for the §VI scenarios."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.me.functions import ackley, lognormal_runtime
from repro.me.sampling import uniform_random
from repro.util.serialization import json_dumps

#: The Ackley function's standard domain, used by the paper's example.
ACKLEY_BOUND = 32.768


@dataclass(frozen=True)
class RuntimeModel:
    """Lognormal task-runtime model (the paper's padded Ackley sleep)."""

    mean: float = 3.0
    sigma: float = 0.5

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.sigma == 0:
            return np.full(n, self.mean)
        return np.asarray(lognormal_runtime(rng, self.mean, self.sigma, size=n))


@dataclass
class AckleyWorkload:
    """The paper's task set: random n-D points evaluated by Ackley.

    ``generate`` returns points, true objective values, per-task
    runtimes, and JSON payloads, all deterministic in ``seed``.
    """

    n_tasks: int = 750
    dim: int = 4
    runtime: RuntimeModel = RuntimeModel()
    seed: int = 2023

    def generate(self) -> "GeneratedWorkload":
        rng = np.random.default_rng(self.seed)
        bounds = [(-ACKLEY_BOUND, ACKLEY_BOUND)] * self.dim
        points = uniform_random(rng, self.n_tasks, bounds)
        values = np.asarray(ackley(points))
        runtimes = self.runtime.sample(rng, self.n_tasks)
        payloads = [json_dumps({"x": list(map(float, p))}) for p in points]
        return GeneratedWorkload(points, values, runtimes, payloads)


@dataclass
class GeneratedWorkload:
    """Concrete tasks ready for submission."""

    points: np.ndarray
    values: np.ndarray
    runtimes: np.ndarray
    payloads: list[str]

    def __len__(self) -> int:
        return len(self.payloads)

"""The paper's evaluation scenarios under virtual time.

- :func:`run_fig3` — Figure 3: one 33-worker pool consuming 750
  lognormal Ackley tasks under three fetch policies: (batch 50,
  threshold 1) oversubscribed; (33, 1) exactly subscribed; (33, 15)
  large threshold.  Expected shapes: top panel best utilization, middle
  slightly lower (a DB round trip per completion), bottom a saw-tooth
  with multi-second idle gaps.
- :func:`run_fig4` — Figure 4: the full federated workflow.  Worker
  pool 1 starts at t=0; GPR reprioritization runs after every 50
  completions (remote round-trip delay); pools 2 and 3 are *submitted*
  during reprioritizations 2 and 4 and begin only after a scheduler
  queue delay; all pools drain one output queue equitably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.eqsql import EQSQL
from repro.db.memory_backend import MemoryTaskStore
from repro.sim.me_model import ReprioritizationTrace, SimMEAlgorithm
from repro.sim.pool_model import SimPoolConfig, SimWorkerPool
from repro.sim.workload import AckleyWorkload, RuntimeModel
from repro.simt.environment import Environment
from repro.telemetry.events import TraceCollector
from repro.telemetry.timeseries import (
    ConcurrencySeries,
    concurrency_series,
    utilization_stats,
)

WORK_TYPE = 0


def _make_env() -> tuple[Environment, EQSQL, TraceCollector]:
    env = Environment()
    eqsql = EQSQL(MemoryTaskStore(), clock=env.clock)
    return env, eqsql, TraceCollector()


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig3Config:
    """One Figure 3 panel."""

    batch_size: int
    threshold: int
    n_workers: int = 33
    n_tasks: int = 750
    runtime: RuntimeModel = RuntimeModel(mean=15.0, sigma=0.5)
    query_cost: float = 0.3
    poll_delay: float = 0.5
    seed: int = 2023

    def label(self) -> str:
        return f"batch={self.batch_size} threshold={self.threshold}"


@dataclass
class PanelResult:
    """Series and statistics for one panel."""

    config: Fig3Config
    series: ConcurrencySeries
    stats: dict[str, float]
    makespan: float
    n_fetches: int

    def label(self) -> str:
        return self.config.label()


def run_fig3_panel(config: Fig3Config) -> PanelResult:
    """Simulate one pool/policy combination to completion."""
    env, eqsql, trace = _make_env()
    workload = AckleyWorkload(
        n_tasks=config.n_tasks, runtime=config.runtime, seed=config.seed
    ).generate()
    futures = eqsql.submit_tasks("fig3", WORK_TYPE, workload.payloads)
    first_id = futures[0].eq_task_id

    pool = SimWorkerPool(
        env,
        eqsql,
        SimPoolConfig(
            name="pool-1",
            work_type=WORK_TYPE,
            n_workers=config.n_workers,
            batch_size=config.batch_size,
            threshold=config.threshold,
            query_cost=config.query_cost,
            poll_delay=config.poll_delay,
        ),
        runtime_fn=lambda tid, _p: float(workload.runtimes[tid - first_id]),
        trace=trace,
    ).start()

    while pool.tasks_completed < config.n_tasks:
        env.step()
    makespan = env.now
    pool.stop()
    env.run(until=pool.process)

    events = trace.snapshot()
    series = concurrency_series(events, source=pool.name, end=makespan)
    stats = utilization_stats(series, config.n_workers)
    n_fetches = len([e for e in events if e.kind.name == "FETCH"])
    return PanelResult(
        config=config, series=series, stats=stats, makespan=makespan, n_fetches=n_fetches
    )


#: The three policies of Figure 3, top to bottom.
FIG3_PANELS: tuple[tuple[int, int], ...] = ((50, 1), (33, 1), (33, 15))


def run_fig3(
    n_tasks: int = 750, seed: int = 2023, runtime: RuntimeModel | None = None
) -> dict[str, PanelResult]:
    """All three Figure 3 panels, keyed by their policy label."""
    runtime = runtime if runtime is not None else RuntimeModel(mean=15.0, sigma=0.5)
    results: dict[str, PanelResult] = {}
    for batch, threshold in FIG3_PANELS:
        config = Fig3Config(
            batch_size=batch,
            threshold=threshold,
            n_tasks=n_tasks,
            seed=seed,
            runtime=runtime,
        )
        results[config.label()] = run_fig3_panel(config)
    return results


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig4Config:
    """The federated three-pool workflow."""

    n_tasks: int = 750
    dim: int = 4
    n_workers: int = 33
    batch_size: int = 33
    threshold: int = 1
    repri_every: int = 50
    #: Reprioritization indices at which pools 2 and 3 are submitted.
    pool_submissions: tuple[int, ...] = (2, 4)
    #: Mean scheduler queue delay for the added pools (lognormal).
    queue_delay_mean: float = 15.0
    queue_delay_sigma: float = 0.4
    runtime: RuntimeModel = RuntimeModel(mean=15.0, sigma=0.5)
    query_cost: float = 0.3
    poll_delay: float = 0.5
    seed: int = 2023


@dataclass
class Fig4Result:
    """Everything Figure 4 plots."""

    config: Fig4Config
    makespan: float
    pool_names: list[str]
    #: Pool name -> (submit time, actual start time).
    pool_timing: dict[str, tuple[float, float]]
    #: Pool name -> tasks completed.
    pool_completed: dict[str, int]
    #: Pool name -> concurrency step function over the common horizon.
    pool_series: dict[str, ConcurrencySeries]
    reprioritizations: list[ReprioritizationTrace] = field(default_factory=list)
    #: Objective values in completion order (for the GPR-benefit check).
    completed_values: np.ndarray = field(default_factory=lambda: np.empty(0))

    def repri_start_times(self) -> list[float]:
        return [r.time_start for r in self.reprioritizations]

    def repri_gaps(self) -> np.ndarray:
        """Intervals between consecutive reprioritization starts."""
        times = self.repri_start_times()
        return np.diff(np.asarray(times))

    def best_trajectory(self) -> np.ndarray:
        return np.minimum.accumulate(self.completed_values)


def run_fig4(config: Fig4Config | None = None) -> Fig4Result:
    """Simulate the full §VI workflow."""
    config = config if config is not None else Fig4Config()
    env, eqsql, trace = _make_env()
    rng = np.random.default_rng(config.seed + 1)
    workload = AckleyWorkload(
        n_tasks=config.n_tasks,
        dim=config.dim,
        runtime=config.runtime,
        seed=config.seed,
    ).generate()

    def runtime_fn(tid: int, _payload: str) -> float:
        # The ME submits all tasks first; ids are 1..n_tasks in order.
        return float(workload.runtimes[tid - 1])

    def make_pool(name: str) -> SimWorkerPool:
        return SimWorkerPool(
            env,
            eqsql,
            SimPoolConfig(
                name=name,
                work_type=WORK_TYPE,
                n_workers=config.n_workers,
                batch_size=config.batch_size,
                threshold=config.threshold,
                query_cost=config.query_cost,
                poll_delay=config.poll_delay,
            ),
            runtime_fn=runtime_fn,
            trace=trace,
        )

    pools: list[SimWorkerPool] = [make_pool("pool-1")]
    pool_timing: dict[str, tuple[float, float]] = {}

    def submit_pool(name: str) -> None:
        """Submit a pool job: it starts after a scheduler queue delay."""
        submit_time = env.now
        delay = float(
            np.exp(
                rng.normal(
                    np.log(config.queue_delay_mean)
                    - 0.5 * config.queue_delay_sigma**2,
                    config.queue_delay_sigma,
                )
            )
        )
        pool = make_pool(name)
        pools.append(pool)
        # Record the submission now; a pool still waiting in the batch
        # queue when the workflow drains never gets a start time.
        pool_timing[name] = (submit_time, float("nan"))

        def job():
            yield env.timeout(delay)
            pool.start()
            pool_timing[name] = (submit_time, env.now)

        env.process(job())

    pending_names = [f"pool-{i + 2}" for i in range(len(config.pool_submissions))]

    def on_repri(index: int) -> None:
        if index in config.pool_submissions:
            position = config.pool_submissions.index(index)
            submit_pool(pending_names[position])

    me = SimMEAlgorithm(
        env,
        eqsql,
        WORK_TYPE,
        workload.points,
        workload.values,
        workload.payloads,
        repri_every=config.repri_every,
        poll_delay=config.poll_delay,
        on_reprioritization=on_repri,
        trace=trace,
    )
    me.start()
    pools[0].start()
    pool_timing["pool-1"] = (0.0, 0.0)

    env.run(until=me.process)
    makespan = env.now
    for pool in pools:
        pool.stop()
    for pool in pools:
        if pool.process is not None:
            env.run(until=pool.process)

    events = trace.snapshot()
    pool_names = [p.name for p in pools]
    return Fig4Result(
        config=config,
        makespan=makespan,
        pool_names=pool_names,
        pool_timing=pool_timing,
        pool_completed={p.name: p.tasks_completed for p in pools},
        pool_series={
            name: concurrency_series(events, source=name, end=makespan)
            for name in pool_names
        },
        reprioritizations=me.reprioritizations,
        completed_values=me.completed_values(),
    )

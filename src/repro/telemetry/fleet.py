"""Fleet telemetry plane: push-based worker aggregation on the service.

Per-process telemetry (each pool's metrics registry, each sampler's
history) dies with its process and is invisible to the operator of a
multi-site deployment.  funcX-style federated platforms solve this by
having every executor *push* liveness and load to a central point; this
module is that point for the EMEWS service.

Two halves:

- :class:`TelemetryPusher` runs inside a pool or ME driver: a daemon
  heartbeat thread that builds a JSON envelope every ``interval``
  seconds (worker id, role, busy fraction, counters, sampler
  summaries, metric deltas, recent task profiles, live running tasks)
  and pushes it through a sink — normally the remote store's
  ``telemetry`` RPC.  Push failures are absorbed: telemetry must never
  take a worker down, and a missed beat just shows up as staleness.

- :class:`FleetRegistry` runs inside the service: it ingests envelopes,
  tracks per-worker liveness (last-seen with a configurable expiry
  multiple of each worker's own declared interval), rolls per-work-type
  profile aggregates (count, p50/p95 wall and CPU, max RSS), and keeps
  the live cpu-vs-wall signal that classifies a straggler as *slow*
  (pegged CPU) versus *stuck* (idle).  ``snapshot()`` is the ``/fleet``
  JSON document; ``render_prometheus()`` emits worker-labelled gauges
  appended to ``/metrics`` (label values sanitized, series count
  capped so a runaway fleet cannot blow up scrape cardinality).

Envelope schema (every field optional except ``worker_id``)::

    {"worker_id": str, "role": "pool" | "me" | str,
     "interval": float,            # sender's heartbeat period
     "time": float,                # sender's clock at build time
     "busy_fraction": float, "n_workers": int, "owned": int,
     "tasks_completed": int, "tasks_failed": int, "reports_lost": int,
     "samplers": {name: summary_dict, ...},
     "metrics": {name: value, ...},          # counter deltas / gauges
     "profiles": [profile_dict, ...],        # since the last push
     "running": [{"task_id", "work_type", "elapsed_seconds",
                  "cpu_seconds"?}, ...]}     # live, for classification
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Mapping
from typing import Any

from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.util.clock import Clock, SystemClock
from repro.util.logging import get_logger, log_event

_log = get_logger(__name__)

#: Envelope "running" tasks with at least this CPU-per-wall fraction
#: classify as "slow" (working hard); below it they are "stuck".
SLOW_CPU_FRACTION = 0.5

#: Longest accepted worker id; longer ids are truncated (label safety).
_MAX_WORKER_ID = 64


def _sanitize_label(value: str) -> str:
    """Conservative label value: printable, bounded, no format chars."""
    cleaned = "".join(
        ch if (ch.isalnum() or ch in "._:-") else "_" for ch in str(value)
    )
    return cleaned[:_MAX_WORKER_ID] or "_"


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(idx)]


class ProfileAggregate:
    """Rolling per-work-type reduction of task profiles."""

    __slots__ = ("count", "failed", "max_rss_kb", "_wall", "_cpu")

    def __init__(self, window: int = 256) -> None:
        self.count = 0
        self.failed = 0
        self.max_rss_kb = 0.0
        self._wall: deque[float] = deque(maxlen=window)
        self._cpu: deque[float] = deque(maxlen=window)

    def add(self, profile: Mapping[str, Any]) -> None:
        self.count += 1
        if profile.get("failed"):
            self.failed += 1
        self._wall.append(float(profile.get("wall_seconds", 0.0)))
        self._cpu.append(float(profile.get("cpu_seconds", 0.0)))
        rss = profile.get("max_rss_kb")
        if rss is not None:
            self.max_rss_kb = max(self.max_rss_kb, float(rss))

    def summary(self) -> dict[str, Any]:
        wall = sorted(self._wall)
        cpu = sorted(self._cpu)
        return {
            "count": self.count,
            "failed": self.failed,
            "wall_p50_seconds": _percentile(wall, 0.50),
            "wall_p95_seconds": _percentile(wall, 0.95),
            "cpu_p50_seconds": _percentile(cpu, 0.50),
            "cpu_p95_seconds": _percentile(cpu, 0.95),
            "max_rss_kb": self.max_rss_kb,
        }


class _WorkerState:
    """Everything the registry knows about one pushed worker."""

    __slots__ = (
        "worker_id", "role", "interval", "first_seen", "last_seen",
        "pushes", "busy_fraction", "n_workers", "owned",
        "tasks_completed", "tasks_failed", "reports_lost",
        "samplers", "metrics", "running",
    )

    def __init__(self, worker_id: str, now: float) -> None:
        self.worker_id = worker_id
        self.role = ""
        self.interval = 0.0
        self.first_seen = now
        self.last_seen = now
        self.pushes = 0
        self.busy_fraction = 0.0
        self.n_workers = 0
        self.owned = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.reports_lost = 0
        self.samplers: dict[str, Any] = {}
        self.metrics: dict[str, float] = {}
        self.running: list[dict[str, Any]] = []


class FleetRegistry:
    """Service-side aggregation of pushed worker telemetry.

    Parameters
    ----------
    clock:
        Liveness time source; must be the service's clock so ages agree
        with lease arithmetic.
    default_interval:
        Assumed heartbeat period for envelopes that do not declare one.
    stale_multiple, expiry_multiple:
        A worker is *stale* once unseen for ``stale_multiple`` × its
        interval, and dropped entirely (with its labelled ``/metrics``
        series) after ``expiry_multiple`` × interval.
    max_workers:
        Hard cap on tracked workers; envelopes from new ids beyond it
        are rejected (counted in ``fleet.rejected``) rather than
        growing without bound.
    max_labelled:
        Cap on workers given per-worker labelled series on ``/metrics``
        (cardinality guard); the overflow count is itself a gauge.
    profile_window:
        Samples kept per work type for the p50/p95 reductions.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        default_interval: float = 10.0,
        stale_multiple: float = 2.0,
        expiry_multiple: float = 3.0,
        max_workers: int = 256,
        max_labelled: int = 50,
        profile_window: int = 256,
        top_profiles: int = 10,
    ) -> None:
        if stale_multiple <= 0 or expiry_multiple <= 0:
            raise ValueError("stale/expiry multiples must be positive")
        if expiry_multiple < stale_multiple:
            raise ValueError(
                f"expiry_multiple ({expiry_multiple}) must be >="
                f" stale_multiple ({stale_multiple})"
            )
        self._clock = clock if clock is not None else SystemClock()
        self.default_interval = default_interval
        self.stale_multiple = stale_multiple
        self.expiry_multiple = expiry_multiple
        self.max_workers = max_workers
        self.max_labelled = max_labelled
        self._profile_window = profile_window
        self._top_n = top_profiles
        self._lock = threading.Lock()
        self._workers: dict[str, _WorkerState] = {}
        self._aggregates: dict[int, ProfileAggregate] = {}
        # A profile can reach the registry twice — on its report RPC
        # and again inside the next push envelope — so aggregation
        # dedupes by task id over a bounded recency window.
        self._seen_profile_ids: set[int] = set()
        self._seen_profile_order: deque[int] = deque()
        #: Worst recent profiles by CPU seconds (the "top resource
        #: consumers" table in ``repro fleet``).
        self._top_cpu: list[dict[str, Any]] = []
        registry = metrics if metrics is not None else get_metrics()
        self._m_envelopes = registry.counter(
            "fleet.envelopes", "telemetry envelopes accepted"
        )
        self._m_rejected = registry.counter(
            "fleet.rejected", "telemetry envelopes rejected (bad or over cap)"
        )
        self._m_expired = registry.counter(
            "fleet.workers_expired", "workers dropped after missing heartbeats"
        )
        self._m_profiles = registry.counter(
            "fleet.profiles", "task profiles aggregated"
        )
        self._g_workers = registry.gauge(
            "fleet.workers", "workers currently tracked (live + stale)"
        )

    # -- ingestion ----------------------------------------------------------

    def observe(self, envelope: Mapping[str, Any], now: float | None = None) -> dict:
        """Ingest one pushed envelope; returns a small ack document.

        Raises ``ValueError`` for an envelope without a usable
        ``worker_id`` (the service surfaces it as a typed remote
        error).  Unknown fields are ignored — the envelope schema may
        grow without breaking old services.
        """
        if now is None:
            now = self._clock.now()
        if not isinstance(envelope, Mapping):
            self._m_rejected.inc()
            raise ValueError("telemetry envelope must be an object")
        raw_id = envelope.get("worker_id")
        if not raw_id or not isinstance(raw_id, str):
            self._m_rejected.inc()
            raise ValueError("telemetry envelope missing worker_id")
        worker_id = _sanitize_label(raw_id)
        with self._lock:
            self._sweep_locked(now)
            state = self._workers.get(worker_id)
            if state is None:
                if len(self._workers) >= self.max_workers:
                    self._m_rejected.inc()
                    return {"accepted": False, "reason": "fleet at max_workers"}
                state = _WorkerState(worker_id, now)
                self._workers[worker_id] = state
            state.last_seen = now
            state.pushes += 1
            state.role = str(envelope.get("role", state.role or "worker"))
            interval = envelope.get("interval")
            if isinstance(interval, (int, float)) and interval > 0:
                state.interval = float(interval)
            state.busy_fraction = float(envelope.get("busy_fraction", 0.0))
            state.n_workers = int(envelope.get("n_workers", state.n_workers))
            state.owned = int(envelope.get("owned", 0))
            state.tasks_completed = int(
                envelope.get("tasks_completed", state.tasks_completed)
            )
            state.tasks_failed = int(
                envelope.get("tasks_failed", state.tasks_failed)
            )
            state.reports_lost = int(
                envelope.get("reports_lost", state.reports_lost)
            )
            samplers = envelope.get("samplers")
            if isinstance(samplers, Mapping):
                state.samplers = dict(samplers)
            metric_deltas = envelope.get("metrics")
            if isinstance(metric_deltas, Mapping):
                for name, value in metric_deltas.items():
                    if isinstance(value, (int, float)):
                        state.metrics[str(name)] = float(value)
            running = envelope.get("running")
            state.running = (
                [dict(r) for r in running if isinstance(r, Mapping)]
                if isinstance(running, list)
                else []
            )
            profiles = envelope.get("profiles")
            if isinstance(profiles, list):
                for profile in profiles:
                    if isinstance(profile, Mapping):
                        self._add_profile_locked(profile)
            self._g_workers.set(len(self._workers))
        self._m_envelopes.inc()
        return {"accepted": True, "workers": len(self._workers)}

    def observe_profiles(self, profiles: list[Mapping[str, Any]]) -> None:
        """Fold report-path profiles into the aggregates.

        The service calls this for ``report``/``report_batch`` params
        carrying profiles, so the per-work-type tables fill even when
        no worker has push telemetry configured.
        """
        with self._lock:
            for profile in profiles:
                if isinstance(profile, Mapping):
                    self._add_profile_locked(profile)

    #: Recency window for profile task-id dedup.
    _SEEN_PROFILE_WINDOW = 4096

    def _add_profile_locked(self, profile: Mapping[str, Any]) -> None:
        task_id = int(profile.get("task_id", -1))
        if task_id >= 0:
            if task_id in self._seen_profile_ids:
                return
            self._seen_profile_ids.add(task_id)
            self._seen_profile_order.append(task_id)
            if len(self._seen_profile_order) > self._SEEN_PROFILE_WINDOW:
                self._seen_profile_ids.discard(self._seen_profile_order.popleft())
        work_type = int(profile.get("work_type", -1))
        aggregate = self._aggregates.get(work_type)
        if aggregate is None:
            aggregate = ProfileAggregate(self._profile_window)
            self._aggregates[work_type] = aggregate
        aggregate.add(profile)
        self._m_profiles.inc()
        entry = dict(profile)
        self._top_cpu.append(entry)
        self._top_cpu.sort(key=lambda p: p.get("cpu_seconds", 0.0), reverse=True)
        del self._top_cpu[self._top_n :]

    # -- liveness -----------------------------------------------------------

    def _interval_of(self, state: _WorkerState) -> float:
        return state.interval if state.interval > 0 else self.default_interval

    def _sweep_locked(self, now: float) -> None:
        expired = [
            worker_id
            for worker_id, state in self._workers.items()
            if now - state.last_seen > self.expiry_multiple * self._interval_of(state)
        ]
        for worker_id in expired:
            del self._workers[worker_id]
        if expired:
            self._m_expired.inc(len(expired))
            log_event(
                _log, "fleet.workers_expired", workers=",".join(expired)
            )

    def _state_of(self, state: _WorkerState, now: float) -> str:
        age = now - state.last_seen
        return "stale" if age > self.stale_multiple * self._interval_of(state) else "live"

    # -- classification -----------------------------------------------------

    def classify_task(self, task_id: int) -> dict[str, Any] | None:
        """The cpu-vs-wall verdict for one live task, if any worker's
        last envelope reported it running.

        Returns ``{"classification": "slow" | "stuck" | "unknown",
        "cpu_fraction": float | None, "worker_id": str}`` or ``None``
        when no envelope mentions the task.  "unknown" means the
        sending platform could not read cross-thread CPU.
        """
        with self._lock:
            for state in self._workers.values():
                for entry in state.running:
                    if int(entry.get("task_id", -1)) != task_id:
                        continue
                    elapsed = float(entry.get("elapsed_seconds", 0.0))
                    cpu = entry.get("cpu_seconds")
                    if cpu is None or elapsed <= 0:
                        return {
                            "classification": "unknown",
                            "cpu_fraction": None,
                            "worker_id": state.worker_id,
                        }
                    fraction = float(cpu) / elapsed
                    return {
                        "classification": (
                            "slow" if fraction >= SLOW_CPU_FRACTION else "stuck"
                        ),
                        "cpu_fraction": fraction,
                        "worker_id": state.worker_id,
                    }
        return None

    # -- surfaces -----------------------------------------------------------

    def workers(self, now: float | None = None) -> list[dict[str, Any]]:
        """Per-worker liveness rows (sweeps expired workers first)."""
        if now is None:
            now = self._clock.now()
        with self._lock:
            self._sweep_locked(now)
            self._g_workers.set(len(self._workers))
            return [
                {
                    "worker_id": state.worker_id,
                    "role": state.role,
                    "state": self._state_of(state, now),
                    "age_seconds": max(0.0, now - state.last_seen),
                    "interval": self._interval_of(state),
                    "pushes": state.pushes,
                    "busy_fraction": state.busy_fraction,
                    "n_workers": state.n_workers,
                    "owned": state.owned,
                    "tasks_completed": state.tasks_completed,
                    "tasks_failed": state.tasks_failed,
                    "reports_lost": state.reports_lost,
                    "running": list(state.running),
                    "samplers": dict(state.samplers),
                    "metrics": dict(state.metrics),
                }
                for state in sorted(
                    self._workers.values(), key=lambda s: s.worker_id
                )
            ]

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """The ``/fleet`` JSON document."""
        if now is None:
            now = self._clock.now()
        workers = self.workers(now)
        with self._lock:
            profiles = {
                str(work_type): aggregate.summary()
                for work_type, aggregate in sorted(self._aggregates.items())
            }
            top = [dict(p) for p in self._top_cpu]
        return {
            "time": now,
            "workers": workers,
            "counts": {
                "total": len(workers),
                "live": sum(1 for w in workers if w["state"] == "live"),
                "stale": sum(1 for w in workers if w["state"] == "stale"),
            },
            "expiry": {
                "stale_multiple": self.stale_multiple,
                "expiry_multiple": self.expiry_multiple,
                "default_interval": self.default_interval,
            },
            "profiles": profiles,
            "top_cpu": top,
        }

    def summary(self, now: float | None = None) -> dict[str, Any]:
        """Compact fleet section for ``/status``."""
        workers = self.workers(now)
        return {
            "workers": len(workers),
            "live": sum(1 for w in workers if w["state"] == "live"),
            "stale": sum(1 for w in workers if w["state"] == "stale"),
            "profiled_work_types": len(self._aggregates),
        }

    def render_prometheus(self, now: float | None = None) -> str:
        """Worker-labelled gauge series appended to ``/metrics``.

        Labels are sanitized and the per-worker series count is capped
        at ``max_labelled`` (sorted by worker id for stable scrapes);
        the overflow count is exposed so a capped fleet is visible.
        """
        from repro.telemetry.monitor.prometheus import escape_label_value

        if now is None:
            now = self._clock.now()
        workers = self.workers(now)
        lines: list[str] = []
        emit = lines.append
        emit("# HELP repro_fleet_worker_up 1 while the worker is live, 0 when stale")
        emit("# TYPE repro_fleet_worker_up gauge")
        shown = workers[: self.max_labelled]
        for w in shown:
            label = (
                f'worker="{escape_label_value(w["worker_id"])}",'
                f'role="{escape_label_value(w["role"])}"'
            )
            emit(
                f"repro_fleet_worker_up{{{label}}} "
                f"{1 if w['state'] == 'live' else 0}"
            )
        emit("# TYPE repro_fleet_worker_busy_fraction gauge")
        for w in shown:
            label = f'worker="{escape_label_value(w["worker_id"])}"'
            emit(
                f"repro_fleet_worker_busy_fraction{{{label}}} "
                f"{w['busy_fraction']:.6g}"
            )
        emit("# TYPE repro_fleet_worker_last_seen_age_seconds gauge")
        for w in shown:
            label = f'worker="{escape_label_value(w["worker_id"])}"'
            emit(
                f"repro_fleet_worker_last_seen_age_seconds{{{label}}} "
                f"{w['age_seconds']:.6g}"
            )
        emit("# TYPE repro_fleet_worker_tasks_completed gauge")
        for w in shown:
            label = f'worker="{escape_label_value(w["worker_id"])}"'
            emit(
                f"repro_fleet_worker_tasks_completed{{{label}}} "
                f"{w['tasks_completed']}"
            )
        emit("# TYPE repro_fleet_workers_overflow gauge")
        emit(f"repro_fleet_workers_overflow {max(0, len(workers) - len(shown))}")
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        with self._lock:
            self._workers.clear()
            self._aggregates.clear()
            self._top_cpu.clear()
            self._seen_profile_ids.clear()
            self._seen_profile_order.clear()
            self._g_workers.set(0)


#: A telemetry sink: envelope -> ack (return value ignored).
TelemetrySink = Callable[[dict], Any]


class TelemetryPusher:
    """Heartbeat thread pushing envelopes from a worker to a sink.

    ``envelope_fn`` builds the per-beat payload (the owning component
    closes over its own state); the pusher adds ``worker_id``, ``role``,
    ``interval``, sampler summaries, and registry metric deltas, then
    calls ``sink(envelope)``.  Sink failures are absorbed and counted —
    a telemetry outage must never take a worker down.  Tests drive
    :meth:`push_once` directly; ``start``/``stop`` are idempotent.
    """

    def __init__(
        self,
        worker_id: str,
        role: str,
        sink: TelemetrySink,
        interval: float = 10.0,
        envelope_fn: Callable[[], dict] | None = None,
        samplers: Mapping[str, Any] | None = None,
        metrics: MetricsRegistry | None = None,
        metric_prefixes: tuple[str, ...] = (),
        clock: Clock | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"telemetry interval must be positive, got {interval}")
        self.worker_id = worker_id
        self.role = role
        self.interval = interval
        self._sink = sink
        self._envelope_fn = envelope_fn
        self._samplers = dict(samplers) if samplers else {}
        self._registry = metrics
        self._prefixes = metric_prefixes
        self._clock = clock if clock is not None else SystemClock()
        self._last_counters: dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.pushes = 0
        self.push_errors = 0

    def build_envelope(self) -> dict[str, Any]:
        envelope: dict[str, Any] = {
            "worker_id": self.worker_id,
            "role": self.role,
            "interval": self.interval,
            "time": self._clock.now(),
        }
        if self._envelope_fn is not None:
            envelope.update(self._envelope_fn())
        if self._samplers:
            summaries = {}
            for name, sampler in self._samplers.items():
                try:
                    summaries[name] = sampler.summary()
                except Exception:  # noqa: BLE001 - telemetry is best-effort
                    continue
            if summaries:
                envelope["samplers"] = summaries
        if self._registry is not None and self._prefixes:
            envelope.setdefault("metrics", {}).update(self._metric_deltas())
        return envelope

    def _metric_deltas(self) -> dict[str, float]:
        """Counter deltas (and gauge levels) since the previous push for
        metrics under the configured prefixes."""
        deltas: dict[str, float] = {}
        for name in self._registry.names():
            if not name.startswith(self._prefixes):
                continue
            metric = self._registry.get(name)
            if metric is None:
                continue
            snap = metric.snapshot()
            if snap["type"] == "counter":
                value = float(snap["value"])
                deltas[name] = value - self._last_counters.get(name, 0.0)
                self._last_counters[name] = value
            elif snap["type"] == "gauge":
                deltas[name] = float(snap["value"])
        return deltas

    def push_once(self) -> bool:
        """Build and push one envelope; True when the sink accepted it."""
        envelope = self.build_envelope()
        try:
            self._sink(envelope)
        except Exception as exc:  # noqa: BLE001 - must never kill the worker
            self.push_errors += 1
            log_event(
                _log, "fleet.push_error", level=30,
                worker=self.worker_id, error=str(exc),
            )
            return False
        self.pushes += 1
        return True

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.push_once()
        # Parting beat so the registry sees final counters before the
        # worker disappears (best-effort, like every push).
        self.push_once()

    def start(self) -> "TelemetryPusher":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"{self.worker_id}-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    def is_alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "TelemetryPusher":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

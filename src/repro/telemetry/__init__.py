"""Task execution tracing, distributed spans, metrics, and reporting.

The paper's evaluation figures are built from task start/stop events:
Figure 3 plots the number of concurrently executing tasks over time for
one pool under different fetch policies; Figure 4 plots per-pool
concurrency plus the GPR reprioritization timeline.  This package
records those events (:class:`TraceCollector`), reduces them to step
functions and utilization statistics (:mod:`repro.telemetry.timeseries`),
and renders compact text charts for benchmark output
(:mod:`repro.telemetry.report`).

Beyond the flat event stream, :mod:`repro.telemetry.tracing` provides
distributed spans correlated across the ME → service → fabric → pool
pipeline (trace ids ride the task payload path and the service wire),
:mod:`repro.telemetry.metrics` aggregates counters/gauges/histograms on
the same hot paths, and :mod:`repro.telemetry.trace_export` emits JSONL,
Chrome ``trace_event`` JSON (Perfetto/about:tracing), and per-hop
latency-breakdown tables.

:mod:`repro.telemetry.journal` is the task flight recorder — a bounded
per-task lifecycle journal emitted at every hop across roles, merged
into causally-ordered timelines by ``python -m repro timeline`` — and
:mod:`repro.telemetry.anomaly` streams it through a rolling-median
straggler detector surfaced on the status server's ``/events`` route.

:mod:`repro.telemetry.profiling` attributes wall/CPU time and memory to
individual task executions, and :mod:`repro.telemetry.fleet` aggregates
pushed worker telemetry (liveness, load, profiles) on the service —
surfaced as ``/fleet`` and ``python -m repro fleet``.
"""

from repro.telemetry.anomaly import StragglerDetector
from repro.telemetry.events import EventKind, TaskEvent, TraceCollector
from repro.telemetry.fleet import FleetRegistry, TelemetryPusher
from repro.telemetry.profiling import ProfileHandle, TaskProfile, TaskProfiler
from repro.telemetry.journal import (
    Journal,
    JournalRecord,
    configure_journal,
    get_journal,
    load_journal,
    merge_timeline,
    render_timeline,
    set_journal,
    task_timeline,
)
from repro.telemetry.timeseries import (
    ConcurrencySeries,
    concurrency_series,
    mean_concurrency,
    sample_series,
    utilization_stats,
)
from repro.telemetry.report import ascii_chart, render_table
from repro.telemetry.export import load_trace, save_trace
from repro.telemetry.tracing import (
    Span,
    SpanContext,
    Tracer,
    configure_tracing,
    get_tracer,
    set_tracer,
)
from repro.telemetry.metrics import (
    BYTE_BUCKETS,
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.telemetry.trace_export import (
    chrome_trace,
    latency_breakdown,
    load_spans,
    render_latency_breakdown,
    save_chrome_trace,
    save_spans,
)

__all__ = [
    "load_trace",
    "save_trace",
    "EventKind",
    "TaskEvent",
    "TraceCollector",
    "Journal",
    "JournalRecord",
    "StragglerDetector",
    "FleetRegistry",
    "TelemetryPusher",
    "ProfileHandle",
    "TaskProfile",
    "TaskProfiler",
    "configure_journal",
    "get_journal",
    "set_journal",
    "load_journal",
    "merge_timeline",
    "task_timeline",
    "render_timeline",
    "ConcurrencySeries",
    "concurrency_series",
    "mean_concurrency",
    "sample_series",
    "utilization_stats",
    "ascii_chart",
    "render_table",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "set_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "DEFAULT_BUCKETS",
    "BYTE_BUCKETS",
    "COUNT_BUCKETS",
    "chrome_trace",
    "latency_breakdown",
    "load_spans",
    "render_latency_breakdown",
    "save_chrome_trace",
    "save_spans",
]

"""Task execution tracing and time-series extraction.

The paper's evaluation figures are built from task start/stop events:
Figure 3 plots the number of concurrently executing tasks over time for
one pool under different fetch policies; Figure 4 plots per-pool
concurrency plus the GPR reprioritization timeline.  This package
records those events (:class:`TraceCollector`), reduces them to step
functions and utilization statistics (:mod:`repro.telemetry.timeseries`),
and renders compact text charts for benchmark output
(:mod:`repro.telemetry.report`).
"""

from repro.telemetry.events import EventKind, TaskEvent, TraceCollector
from repro.telemetry.timeseries import (
    ConcurrencySeries,
    concurrency_series,
    mean_concurrency,
    sample_series,
    utilization_stats,
)
from repro.telemetry.report import ascii_chart, render_table
from repro.telemetry.export import load_trace, save_trace

__all__ = [
    "load_trace",
    "save_trace",
    "EventKind",
    "TaskEvent",
    "TraceCollector",
    "ConcurrencySeries",
    "concurrency_series",
    "mean_concurrency",
    "sample_series",
    "utilization_stats",
    "ascii_chart",
    "render_table",
]

"""Trace import/export.

Traces are valuable beyond a single process: the examples produce them
under wall-clock time, the benchmarks under virtual time, and users will
want to plot either with their own tooling.  Events serialize to a
line-oriented JSON format (one event per line, header first) that
round-trips exactly.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.events import EventKind, TaskEvent, TraceCollector
from repro.util.errors import SerializationError
from repro.util.serialization import json_dumps, json_loads

FORMAT_VERSION = 1


def events_to_lines(events: list[TaskEvent]) -> list[str]:
    """Serialize events to JSON lines (header line first)."""
    lines = [json_dumps({"format": "repro-trace", "version": FORMAT_VERSION})]
    for event in events:
        lines.append(
            json_dumps(
                {
                    "kind": event.kind.value,
                    "time": event.time,
                    "task_id": event.task_id,
                    "source": event.source,
                    "detail": event.detail,
                }
            )
        )
    return lines


def events_from_lines(lines: list[str]) -> list[TaskEvent]:
    """Parse events written by :func:`events_to_lines`."""
    if not lines:
        raise SerializationError("empty trace")
    header = json_loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != "repro-trace":
        raise SerializationError("not a repro trace (bad header)")
    if header.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported trace version {header.get('version')!r}"
        )
    events: list[TaskEvent] = []
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        data = json_loads(line)
        try:
            events.append(
                TaskEvent(
                    kind=EventKind(data["kind"]),
                    time=float(data["time"]),
                    task_id=data.get("task_id"),
                    source=data.get("source", ""),
                    detail=data.get("detail", ""),
                )
            )
        except (KeyError, ValueError) as exc:
            raise SerializationError(f"bad trace event on line {i}: {exc}") from exc
    return events


def save_trace(trace: TraceCollector, path: str | Path) -> int:
    """Write a collector's events to a file; returns the event count."""
    events = trace.snapshot()
    Path(path).write_text("\n".join(events_to_lines(events)) + "\n")
    return len(events)


def load_trace(path: str | Path) -> TraceCollector:
    """Read a trace file into a fresh collector."""
    lines = Path(path).read_text().splitlines()
    trace = TraceCollector()
    for event in events_from_lines(lines):
        trace.record(
            event.kind, event.time, event.task_id, event.source, event.detail
        )
    return trace

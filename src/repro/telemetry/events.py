"""Task lifecycle events and their thread-safe collector."""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass


class EventKind(enum.Enum):
    """What happened to a task (or workflow phase) at an instant."""

    TASK_START = "task_start"
    TASK_STOP = "task_stop"
    FETCH = "fetch"
    POOL_START = "pool_start"
    POOL_STOP = "pool_stop"
    PHASE_START = "phase_start"
    PHASE_STOP = "phase_stop"


@dataclass(frozen=True)
class TaskEvent:
    """One timestamped event.

    ``source`` identifies the emitting component (worker pool name,
    algorithm phase); ``detail`` carries event-specific data such as a
    fetch's task count or a phase label.
    """

    kind: EventKind
    time: float
    task_id: int | None = None
    source: str = ""
    detail: str = ""


class TraceCollector:
    """Thread-safe, append-only event sink.

    Pools and algorithm drivers share one collector per run; analysis
    code takes immutable snapshots.  Events need not arrive in time
    order (pools race); consumers sort.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[TaskEvent] = []

    def record(
        self,
        kind: EventKind,
        time: float,
        task_id: int | None = None,
        source: str = "",
        detail: str = "",
    ) -> None:
        """Append one event."""
        event = TaskEvent(kind=kind, time=time, task_id=task_id, source=source, detail=detail)
        with self._lock:
            self._events.append(event)

    def task_start(self, time: float, task_id: int, source: str = "") -> None:
        self.record(EventKind.TASK_START, time, task_id, source)

    def task_stop(self, time: float, task_id: int, source: str = "") -> None:
        self.record(EventKind.TASK_STOP, time, task_id, source)

    def snapshot(self) -> list[TaskEvent]:
        """A time-sorted copy of all events so far."""
        with self._lock:
            events = list(self._events)
        events.sort(key=lambda e: e.time)
        return events

    def filter(
        self, kind: EventKind | None = None, source: str | None = None
    ) -> list[TaskEvent]:
        """Time-sorted events matching a kind and/or source.

        Filters the raw snapshot first and sorts only the matches —
        sorting the full event list per call made repeated per-source
        extraction (one call per pool per figure series) quadratic-ish
        on large traces.
        """
        with self._lock:
            events = list(self._events)
        matched = [
            e
            for e in events
            if (kind is None or e.kind == kind)
            and (source is None or e.source == source)
        ]
        matched.sort(key=lambda e: e.time)
        return matched

    def clear(self) -> None:
        """Drop all recorded events, allowing collector reuse between
        runs without re-plumbing a fresh instance."""
        with self._lock:
            self._events.clear()

    def sources(self) -> list[str]:
        """Distinct event sources, in first-seen order."""
        seen: dict[str, None] = {}
        with self._lock:
            for event in self._events:
                if event.source:
                    seen.setdefault(event.source, None)
        return list(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

"""Task lifecycle events and their thread-safe collector.

This is the original (PR 0) event stream the figure pipeline consumes.
The task flight recorder (:mod:`repro.telemetry.journal`) supersedes it
as the lifecycle *record* — one vocabulary across every role — so the
two are unified here rather than duplicated:

- every :class:`EventKind` maps onto the journal vocabulary via
  :attr:`EventKind.journal_event` (``TASK_START`` is the journal's
  ``run_start``, ``FETCH`` is ``fetch``, and so on);
- a :class:`TraceCollector` constructed with ``journal=`` forwards each
  recorded event into that journal as a pool-role record, so legacy
  emitters (the pool's ``_trace``, the driver's phase markers)
  contribute to merged timelines without double-instrumentation.

Existing callers are untouched: a bare ``TraceCollector()`` behaves
exactly as before.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.telemetry.journal import Journal


class EventKind(enum.Enum):
    """What happened to a task (or workflow phase) at an instant."""

    TASK_START = "task_start"
    TASK_STOP = "task_stop"
    FETCH = "fetch"
    POOL_START = "pool_start"
    POOL_STOP = "pool_stop"
    PHASE_START = "phase_start"
    PHASE_STOP = "phase_stop"

    @property
    def journal_event(self) -> str:
        """This kind's name in the unified journal vocabulary."""
        from repro.telemetry import journal as j

        return {
            EventKind.TASK_START: j.EV_RUN_START,
            EventKind.TASK_STOP: j.EV_RUN_END,
            EventKind.FETCH: j.EV_FETCH,
            EventKind.POOL_START: j.EV_POOL_START,
            EventKind.POOL_STOP: j.EV_POOL_STOP,
            EventKind.PHASE_START: j.EV_PHASE_START,
            EventKind.PHASE_STOP: j.EV_PHASE_STOP,
        }[self]


@dataclass(frozen=True)
class TaskEvent:
    """One timestamped event.

    ``source`` identifies the emitting component (worker pool name,
    algorithm phase); ``detail`` carries event-specific data such as a
    fetch's task count or a phase label.
    """

    kind: EventKind
    time: float
    task_id: int | None = None
    source: str = ""
    detail: str = ""


class TraceCollector:
    """Thread-safe, append-only event sink.

    Pools and algorithm drivers share one collector per run; analysis
    code takes immutable snapshots.  Events need not arrive in time
    order (pools race); consumers sort.

    ``journal`` (optional) bridges the legacy stream into the flight
    recorder: each recorded event is also emitted into that journal as
    a pool-role record under the unified vocabulary.  Opt-in only —
    the pool/driver emit their own journal records directly, so the
    bridge is for callers who have *only* a collector wired up.
    """

    def __init__(self, journal: "Journal | None" = None) -> None:
        self._lock = threading.Lock()
        self._events: list[TaskEvent] = []
        self._journal = journal

    def record(
        self,
        kind: EventKind,
        time: float,
        task_id: int | None = None,
        source: str = "",
        detail: str = "",
    ) -> None:
        """Append one event."""
        event = TaskEvent(kind=kind, time=time, task_id=task_id, source=source, detail=detail)
        with self._lock:
            self._events.append(event)
        journal = self._journal
        if journal is not None and journal.enabled:
            from repro.telemetry.journal import ROLE_POOL

            journal.emit(
                kind.journal_event,
                task_id if task_id is not None else -1,
                role=ROLE_POOL,
                source=source,
                time=time,
                extra={"detail": detail} if detail else None,
            )

    def task_start(self, time: float, task_id: int, source: str = "") -> None:
        self.record(EventKind.TASK_START, time, task_id, source)

    def task_stop(self, time: float, task_id: int, source: str = "") -> None:
        self.record(EventKind.TASK_STOP, time, task_id, source)

    def snapshot(self) -> list[TaskEvent]:
        """A time-sorted copy of all events so far."""
        with self._lock:
            events = list(self._events)
        events.sort(key=lambda e: e.time)
        return events

    def filter(
        self, kind: EventKind | None = None, source: str | None = None
    ) -> list[TaskEvent]:
        """Time-sorted events matching a kind and/or source.

        Filters the raw snapshot first and sorts only the matches —
        sorting the full event list per call made repeated per-source
        extraction (one call per pool per figure series) quadratic-ish
        on large traces.
        """
        with self._lock:
            events = list(self._events)
        matched = [
            e
            for e in events
            if (kind is None or e.kind == kind)
            and (source is None or e.source == source)
        ]
        matched.sort(key=lambda e: e.time)
        return matched

    def clear(self) -> None:
        """Drop all recorded events, allowing collector reuse between
        runs without re-plumbing a fresh instance."""
        with self._lock:
            self._events.clear()

    def sources(self) -> list[str]:
        """Distinct event sources, in first-seen order."""
        seen: dict[str, None] = {}
        with self._lock:
            for event in self._events:
                if event.source:
                    seen.setdefault(event.source, None)
        return list(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

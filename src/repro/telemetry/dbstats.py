"""Timing statistics straight from the EMEWS DB.

The tasks table stamps creation, start, and stop for every task, so the
database itself is a telemetry source: queue wait (created → start) and
runtime (start → stop) distributions per experiment and per pool — the
operational numbers a deployment watches without any in-process tracing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.eqsql import EQSQL
from repro.db.schema import TaskStatus


@dataclass(frozen=True)
class TimingSummary:
    """Distribution summary of one duration series (seconds)."""

    count: int
    mean: float
    median: float
    p95: float
    max: float

    @classmethod
    def from_values(cls, values) -> "TimingSummary":
        # Accept any sequence, not just ndarrays — callers pass plain
        # lists, and an empty list has no .size.
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return cls(count=0, mean=0.0, median=0.0, p95=0.0, max=0.0)
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            median=float(np.median(values)),
            p95=float(np.percentile(values, 95)),
            max=float(values.max()),
        )


@dataclass
class ExperimentTiming:
    """Queue-wait and runtime distributions for one experiment."""

    exp_id: str
    queue_wait: TimingSummary
    runtime: TimingSummary
    per_pool_completed: dict[str, int]
    n_incomplete: int


def task_timing_stats(eqsql: EQSQL, exp_id: str) -> ExperimentTiming:
    """Compute timing distributions for an experiment's completed tasks.

    Queue wait is ``time_start - time_created`` (how long the task sat
    on the output queue — the latency the batch/threshold policy and
    pool capacity jointly set); runtime is ``time_stop - time_start``.
    """
    waits: list[float] = []
    runtimes: list[float] = []
    per_pool: dict[str, int] = {}
    incomplete = 0
    for eq_task_id in eqsql.store.tasks_for_experiment(exp_id):
        row = eqsql.task_info(eq_task_id)
        if row.eq_status != TaskStatus.COMPLETE or row.time_start is None:
            incomplete += 1
            continue
        waits.append(row.time_start - row.time_created)
        if row.time_stop is not None:
            runtimes.append(row.time_stop - row.time_start)
        pool = row.worker_pool or "?"
        per_pool[pool] = per_pool.get(pool, 0) + 1
    return ExperimentTiming(
        exp_id=exp_id,
        queue_wait=TimingSummary.from_values(np.asarray(waits)),
        runtime=TimingSummary.from_values(np.asarray(runtimes)),
        per_pool_completed=dict(sorted(per_pool.items())),
        n_incomplete=incomplete,
    )

"""Task flight recorder: a per-task lifecycle journal across roles.

Aggregate metrics (PR 1/3) answer "how is the system doing?"; spans
answer "how long did this operation take?".  Neither answers the
forensic question operators of federated executors actually ask — *what
exactly happened to task 4711?* — because that requires every hop of a
single task's lifecycle, in order, across roles.  funcX and UniFaaS
both lean on per-task state timelines to debug exactly this.  The
journal records one :class:`JournalRecord` per hop — submit, enqueue,
pop (lease), fetch, run start/end, lease renewal, requeue, report,
withdraw, cancel, collect — each carrying the emitting *role* (``me``,
``service``, ``db``, ``pool``), the task id, the work type, the trace
id when known, and an injected-clock timestamp.

Design constraints (the PR 1 discipline):

- **Near-zero cost when disabled.**  :meth:`Journal.emit` returns
  immediately on a disabled journal, and every instrumented call site
  guards with ``journal.enabled`` so no record, dict, or timestamp is
  built.  The global default journal starts disabled.
- **Lock-free hot path when enabled.**  Records append to a pending
  list (``list.append`` is one atomic bytecode under the GIL) and fold
  into the bounded ring under the lock only when the buffer fills or a
  reader asks — the pending-buffer pattern of
  :mod:`repro.telemetry.metrics`.
- **Bounded memory.**  The ring keeps the most recent ``capacity``
  records; older ones are dropped (counted in :attr:`Journal.dropped`)
  or, with ``spill_path`` set, appended to a JSONL file first so the
  full history survives the ring.

Timeline reconstruction (:func:`merge_timeline`) merges journals from
multiple roles into one causally-ordered lifecycle view.  Roles on
different hosts have skewed clocks, so the merge never reorders records
*within* a role — each role's records stay in emission (sequence-number)
order and the merge only uses timestamps to interleave *across* roles.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from collections.abc import Iterable, Sequence
from typing import IO, Any

from repro.util.clock import Clock, SystemClock

# -- the one event vocabulary -------------------------------------------------
#
# Every lifecycle emitter — the legacy TraceCollector included, via
# EventKind.journal_event — names hops from this set.

EV_SUBMIT = "submit"            #: ME handed the task to the store
EV_ENQUEUE = "enqueue"          #: DB inserted the task into the output queue
EV_POP = "pop"                  #: DB popped (leased) the task to a pool
EV_FETCH = "fetch"              #: pool received the task off the wire
EV_RUN_START = "run_start"      #: worker began executing the payload
EV_RUN_END = "run_end"          #: handler returned (or raised)
EV_LEASE_RENEW = "lease_renew"  #: heartbeat extended the task's lease
EV_REQUEUE = "requeue"          #: RUNNING task moved back to QUEUED
EV_REPORT = "report"            #: result landed on the input queue
EV_WITHDRAW = "withdraw"        #: requeued copy withdrawn by a late report
EV_CANCEL = "cancel"            #: queued task canceled
EV_COLLECT = "collect"          #: ME popped the result off the input queue
EV_POOL_START = "pool_start"    #: pool lifecycle (legacy TraceCollector)
EV_POOL_STOP = "pool_stop"
EV_PHASE_START = "phase_start"  #: algorithm phase (legacy TraceCollector)
EV_PHASE_STOP = "phase_stop"

#: Lifecycle precedence, used only as a tie-break when two roles stamp
#: the same timestamp: a submit sorts before the enqueue it caused.
EVENT_ORDER: dict[str, int] = {
    EV_SUBMIT: 0,
    EV_ENQUEUE: 1,
    EV_POP: 2,
    EV_FETCH: 3,
    EV_RUN_START: 4,
    EV_LEASE_RENEW: 5,
    EV_RUN_END: 6,
    EV_REQUEUE: 7,
    EV_REPORT: 8,
    EV_WITHDRAW: 9,
    EV_CANCEL: 10,
    EV_COLLECT: 11,
}

#: Well-known roles (free-form strings are accepted).
ROLE_ME = "me"
ROLE_SERVICE = "service"
ROLE_DB = "db"
ROLE_POOL = "pool"

#: Pending-buffer size at which hot-path emits fold into the ring.
_FLUSH_AT = 256


class JournalRecord:
    """One hop of one task's lifecycle.

    ``seq`` is a per-journal monotonic sequence number: within a single
    journal (one role, one process) it totally orders records even when
    timestamps collide or the emitting clock is skewed.  ``extra``
    carries hop-specific detail (worker pool, lease seconds, failure
    flags) and is None for the common bare record.
    """

    __slots__ = ("seq", "time", "role", "event", "task_id", "work_type",
                 "trace_id", "source", "extra")

    def __init__(
        self,
        seq: int,
        time: float,
        role: str,
        event: str,
        task_id: int,
        work_type: int = -1,
        trace_id: str = "",
        source: str = "",
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.seq = seq
        self.time = time
        self.role = role
        self.event = event
        self.task_id = task_id
        self.work_type = work_type
        self.trace_id = trace_id
        self.source = source
        self.extra = extra

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the JSONL spill / ``/events`` wire format)."""
        record: dict[str, Any] = {
            "seq": self.seq,
            "time": self.time,
            "role": self.role,
            "event": self.event,
            "task_id": self.task_id,
            "work_type": self.work_type,
        }
        if self.trace_id:
            record["trace_id"] = self.trace_id
        if self.source:
            record["source"] = self.source
        if self.extra:
            record["extra"] = self.extra
        return record

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JournalRecord":
        return cls(
            seq=int(data["seq"]),
            time=float(data["time"]),
            role=str(data["role"]),
            event=str(data["event"]),
            task_id=int(data["task_id"]),
            work_type=int(data.get("work_type", -1)),
            trace_id=str(data.get("trace_id", "")),
            source=str(data.get("source", "")),
            extra=data.get("extra"),
        )

    def __repr__(self) -> str:
        return (
            f"JournalRecord(seq={self.seq}, t={self.time:.6f}, "
            f"{self.role}.{self.event}, task={self.task_id})"
        )


class Journal:
    """Bounded, thread-safe flight recorder for one process/role set.

    Parameters
    ----------
    clock:
        Fallback time source for records emitted without an explicit
        timestamp.  Emitters that already hold a timestamp from their
        own injected clock (the DB's ``now=``, the pool's fetch time)
        pass it through so one run shares one timebase.
    enabled:
        Starts the journal recording.  A disabled journal's ``emit`` is
        a single attribute check — leave instrumentation inline.
    capacity:
        Ring size: the most recent ``capacity`` records are kept in
        memory; older records are dropped (counted) or spilled.
    spill_path:
        When set, records evicted from the pending buffer are appended
        to this JSONL file *before* ring eviction can drop them, so the
        file holds the complete history regardless of ring size.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        enabled: bool = True,
        capacity: int = 65_536,
        spill_path: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1, got {capacity}")
        self._clock = clock if clock is not None else SystemClock()
        self._enabled = enabled
        self._capacity = capacity
        self._ring: deque[JournalRecord] = deque(maxlen=capacity)
        self._pending: list[JournalRecord] = []
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._spill_path = spill_path
        self._spill_file: IO[str] | None = None
        self.dropped = 0

    # -- state ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def spill_path(self) -> str | None:
        return self._spill_path

    # -- recording --------------------------------------------------------

    def emit(
        self,
        event: str,
        task_id: int,
        *,
        role: str,
        work_type: int = -1,
        trace_id: str = "",
        source: str = "",
        time: float | None = None,
        extra: dict[str, Any] | None = None,
    ) -> JournalRecord | None:
        """Record one lifecycle hop; returns the record (None if disabled).

        Hot-path discipline: no lock is taken unless the pending buffer
        is full.  ``time=None`` stamps with the journal's clock;
        emitters holding a timestamp from their own injected clock pass
        it explicitly.
        """
        if not self._enabled:
            return None
        record = JournalRecord(
            seq=next(self._seq),
            time=self._clock.now() if time is None else time,
            role=role,
            event=event,
            task_id=task_id,
            work_type=work_type,
            trace_id=trace_id,
            source=source,
            extra=extra,
        )
        pending = self._pending
        pending.append(record)
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._fold()
        return record

    def _fold(self) -> None:
        """Fold pending records into the ring (call under the lock).

        Consumes a fixed prefix so emits racing the fold are kept for
        the next one.  Spill happens here — amortized over the buffer,
        never on the emit path.
        """
        pending = self._pending
        n = len(pending)
        if not n:
            return
        chunk = pending[:n]
        del pending[:n]
        if self._spill_path is not None:
            if self._spill_file is None:
                self._spill_file = open(self._spill_path, "a")
            for record in chunk:
                self._spill_file.write(json.dumps(record.to_dict()) + "\n")
        overflow = len(self._ring) + n - self._capacity
        if overflow > 0:
            self.dropped += overflow
        self._ring.extend(chunk)

    # -- inspection -------------------------------------------------------

    def records(self, task_id: int | None = None) -> list[JournalRecord]:
        """A seq-ordered snapshot of the ring (optionally one task's)."""
        with self._lock:
            self._fold()
            records = list(self._ring)
        if task_id is not None:
            records = [r for r in records if r.task_id == task_id]
        records.sort(key=lambda r: r.seq)
        return records

    def tail(self, since_seq: int = 0) -> list[JournalRecord]:
        """Records with ``seq > since_seq``, seq-ordered — the streaming
        consumer's incremental read (straggler detector, ``/events``)."""
        with self._lock:
            self._fold()
            records = [r for r in self._ring if r.seq > since_seq]
        records.sort(key=lambda r: r.seq)
        return records

    def last_seq(self) -> int:
        """The highest sequence number folded so far (0 when empty)."""
        with self._lock:
            self._fold()
            return max((r.seq for r in self._ring), default=0)

    def __len__(self) -> int:
        with self._lock:
            self._fold()
            return len(self._ring)

    # -- maintenance ------------------------------------------------------

    def flush(self) -> None:
        """Fold pending records and flush the spill file to disk."""
        with self._lock:
            self._fold()
            if self._spill_file is not None:
                self._spill_file.flush()

    def clear(self) -> None:
        """Drop all in-memory records (the spill file is untouched)."""
        with self._lock:
            self._pending.clear()
            self._ring.clear()
            self.dropped = 0

    def close(self) -> None:
        """Flush and close the spill file (idempotent)."""
        with self._lock:
            self._fold()
            if self._spill_file is not None:
                self._spill_file.close()
                self._spill_file = None

    def save_jsonl(self, path: str) -> int:
        """Write the current ring to ``path`` as JSONL; returns count."""
        records = self.records()
        with open(path, "w") as f:
            for record in records:
                f.write(json.dumps(record.to_dict()) + "\n")
        return len(records)


# -- loading ------------------------------------------------------------------


def load_journal(path: str) -> list[JournalRecord]:
    """Read a JSONL journal file (spill or :meth:`Journal.save_jsonl`).

    Blank lines are skipped; a malformed line raises — a truncated final
    line from a crashed process is the one tolerated defect (ignored).
    """
    records: list[JournalRecord] = []
    with open(path) as f:
        lines = f.readlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(JournalRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            if i == len(lines) - 1:
                continue  # torn final write from a crashed process
            raise ValueError(f"{path}:{i + 1}: malformed journal line") from None
    return records


# -- timeline reconstruction --------------------------------------------------


def merge_timeline(records: Iterable[JournalRecord]) -> list[JournalRecord]:
    """Merge records from any number of roles into one lifecycle view.

    Guarantees:

    - Records of the same role never reorder: each role's stream stays
      in sequence-number (emission) order, whatever its timestamps say.
      This is the clock-skew tolerance — a role with a skewed clock
      keeps its internal causality.
    - Across roles, the merge repeatedly takes the role whose *next*
      record has the earliest timestamp (ties broken by lifecycle
      precedence, then role name), which interleaves well-synchronized
      roles in true time order.
    """
    streams: dict[str, list[JournalRecord]] = {}
    for record in records:
        streams.setdefault(record.role, []).append(record)
    for stream in streams.values():
        stream.sort(key=lambda r: r.seq)
    heads = {role: 0 for role in streams}
    merged: list[JournalRecord] = []
    while heads:
        best_role = min(
            heads,
            key=lambda role: (
                streams[role][heads[role]].time,
                EVENT_ORDER.get(streams[role][heads[role]].event, 99),
                role,
            ),
        )
        merged.append(streams[best_role][heads[best_role]])
        heads[best_role] += 1
        if heads[best_role] >= len(streams[best_role]):
            del heads[best_role]
    return merged


def task_timeline(
    records: Iterable[JournalRecord], task_id: int
) -> list[JournalRecord]:
    """One task's merged lifecycle from a mixed record stream."""
    return merge_timeline(r for r in records if r.task_id == task_id)


def render_timeline(records: Sequence[JournalRecord]) -> str:
    """Human-readable timeline table: relative time, delta, role, hop.

    Times are shown relative to the first record; ``dt`` is the gap to
    the previous record (where a straggler's stall is visible at a
    glance).
    """
    from repro.telemetry.report import render_table

    if not records:
        return "(no records)"
    t0 = records[0].time
    rows = []
    previous = t0
    for record in records:
        detail = ""
        if record.extra:
            detail = " ".join(f"{k}={v}" for k, v in sorted(record.extra.items()))
        rows.append(
            [
                f"{record.time - t0:+.6f}",
                f"{record.time - previous:+.6f}",
                record.role,
                record.event,
                record.source,
                record.trace_id,
                detail,
            ]
        )
        previous = record.time
    return render_table(
        ["t (s)", "dt (s)", "role", "event", "source", "trace", "detail"], rows
    )


# -- global default journal ---------------------------------------------------

#: The process-wide default journal.  Disabled out of the box so that
#: all inline emit points are a single attribute check until a run opts
#: in (the same discipline as the default tracer).
_global_journal = Journal(enabled=False)
_global_lock = threading.Lock()


def get_journal() -> Journal:
    """The process-wide default journal."""
    return _global_journal


def set_journal(journal: Journal) -> Journal:
    """Install ``journal`` as the default; returns the previous one."""
    global _global_journal
    with _global_lock:
        previous = _global_journal
        _global_journal = journal
        return previous


def configure_journal(
    clock: Clock | None = None,
    enabled: bool = True,
    capacity: int = 65_536,
    spill_path: str | None = None,
) -> Journal:
    """Create and install a fresh default journal; returns it.

    Share the ``clock`` instance with the components under observation
    (EQSQL, pools, the service) so every hop timestamp in the run comes
    from one timebase; roles in other processes keep their own clocks
    and rely on the merge's skew tolerance.
    """
    journal = Journal(
        clock=clock, enabled=enabled, capacity=capacity, spill_path=spill_path
    )
    set_journal(journal)
    return journal

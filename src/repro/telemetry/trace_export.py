"""Span exporters: JSONL, Chrome ``trace_event`` JSON, latency report.

Three consumers, three formats:

- :func:`save_spans` / :func:`load_spans` — line-oriented JSON that
  round-trips exactly (archival, cross-run diffing);
- :func:`chrome_trace` / :func:`save_chrome_trace` — the Chrome
  ``trace_event`` format, loadable in ``about:tracing`` or Perfetto,
  with one "process" lane per component and one "thread" lane per
  OS thread, so the ME → service → fabric → pool pipeline reads as a
  swimlane diagram;
- :func:`latency_breakdown` / :func:`render_latency_breakdown` — the
  per-hop decomposition table (count, mean, p50, p95, max, total per
  component/operation) that the funcX papers use to explain federated
  performance.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.telemetry.tracing import Span, Tracer
from repro.util.errors import SerializationError
from repro.util.logging import get_logger, log_event
from repro.util.serialization import json_dumps, json_loads

SPAN_FORMAT_VERSION = 1

_log = get_logger(__name__)


def _as_spans(source: Tracer | Sequence[Span]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    return sorted(source, key=lambda s: s.start)


# -- JSONL ---------------------------------------------------------------------


def spans_to_lines(spans: Sequence[Span]) -> list[str]:
    """Serialize spans to JSON lines (header line first)."""
    lines = [json_dumps({"format": "repro-spans", "version": SPAN_FORMAT_VERSION})]
    lines.extend(json_dumps(span.to_dict()) for span in spans)
    return lines


def spans_from_lines(lines: Sequence[str]) -> list[Span]:
    """Parse spans written by :func:`spans_to_lines`."""
    if not lines:
        raise SerializationError("empty span trace")
    header = json_loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != "repro-spans":
        raise SerializationError("not a repro span trace (bad header)")
    if header.get("version") != SPAN_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported span trace version {header.get('version')!r}"
        )
    spans: list[Span] = []
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            spans.append(Span.from_dict(json_loads(line)))
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad span on line {i}: {exc}") from exc
    return spans


def save_spans(source: Tracer | Sequence[Span], path: str | Path) -> int:
    """Write spans to a JSONL file; returns the span count."""
    spans = _as_spans(source)
    Path(path).write_text("\n".join(spans_to_lines(spans)) + "\n")
    log_event(_log, "trace.spans_saved", path=str(path), spans=len(spans))
    return len(spans)


def load_spans(path: str | Path) -> list[Span]:
    """Read spans from a JSONL file."""
    return spans_from_lines(Path(path).read_text().splitlines())


# -- Chrome trace_event --------------------------------------------------------


def chrome_trace(source: Tracer | Sequence[Span]) -> dict[str, Any]:
    """Spans as a Chrome ``trace_event`` document.

    Components map to trace "processes" and threads to trace "threads"
    (named via metadata events); each finished span becomes one complete
    ("X") event with microsecond timestamps.  Span/trace/parent ids ride
    in ``args`` so the tree stays recoverable from the exported file.
    """
    spans = _as_spans(source)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict[str, Any]] = []

    for span in spans:
        component = span.component or "unknown"
        if component not in pids:
            pids[component] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[component],
                    "tid": 0,
                    "args": {"name": component},
                }
            )
        thread_key = (component, span.thread or "main")
        if thread_key not in tids:
            tids[thread_key] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pids[component],
                    "tid": tids[thread_key],
                    "args": {"name": span.thread or "main"},
                }
            )
        if span.end is None:
            continue
        args: dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
        args.update(span.attrs)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": component,
                "pid": pids[component],
                "tid": tids[thread_key],
                "ts": span.start * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(source: Tracer | Sequence[Span], path: str | Path) -> int:
    """Write the Chrome trace document; returns the event count."""
    document = chrome_trace(source)
    Path(path).write_text(json_dumps(document))
    log_event(
        _log, "trace.chrome_saved", path=str(path), events=len(document["traceEvents"])
    )
    return len(document["traceEvents"])


# -- latency breakdown ---------------------------------------------------------


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = q * (len(sorted_values) - 1)
    low = int(index)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = index - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def latency_breakdown(
    source: Tracer | Sequence[Span],
) -> list[dict[str, Any]]:
    """Per (component, operation) latency statistics.

    Exact percentiles (spans carry raw durations, unlike the bucketed
    metrics), sorted by total time descending — the hop eating the run
    appears first.
    """
    groups: dict[tuple[str, str], list[float]] = {}
    for span in _as_spans(source):
        if span.end is None:
            continue
        groups.setdefault((span.component, span.name), []).append(span.duration())
    rows: list[dict[str, Any]] = []
    for (component, name), durations in groups.items():
        durations.sort()
        total = sum(durations)
        rows.append(
            {
                "component": component,
                "operation": name,
                "count": len(durations),
                "total_s": total,
                "mean_s": total / len(durations),
                "p50_s": _percentile(durations, 0.5),
                "p95_s": _percentile(durations, 0.95),
                "max_s": durations[-1],
            }
        )
    rows.sort(key=lambda row: row["total_s"], reverse=True)
    return rows


def render_latency_breakdown(source: Tracer | Sequence[Span]) -> str:
    """The breakdown as an aligned text table."""
    from repro.telemetry.report import render_table

    rows = latency_breakdown(source)
    return render_table(
        ["component", "operation", "count", "total_s", "mean_s", "p50_s", "p95_s", "max_s"],
        [
            [
                row["component"],
                row["operation"],
                row["count"],
                row["total_s"],
                row["mean_s"],
                row["p50_s"],
                row["p95_s"],
                row["max_s"],
            ]
            for row in rows
        ],
        floatfmt=".6f",
    )

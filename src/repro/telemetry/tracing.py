"""Distributed tracing: spans, a tracer, and trace-context propagation.

The paper's evaluation is an observability exercise — every series in
Figures 3 and 4 is derived from task lifecycle timing — and the funcX
line of work explains federated performance through per-hop latency
decomposition (serialization, queueing, dispatch, execution).  This
module provides the substrate for both: a :class:`Span` records one
timed operation in one component; spans link into trees via parent ids
and into end-to-end task journeys via a shared trace id that rides the
task payload path (:mod:`repro.core.task`) and the service wire
(:mod:`repro.core.protocol`).

Design constraints:

- **Near-zero overhead when disabled.**  ``tracer.span(...)`` returns a
  shared no-op context manager without allocating when tracing is off,
  so instrumentation can stay inline on hot paths.  The global default
  tracer starts disabled.
- **Virtual or wall time.**  The tracer reads time through the injected
  :class:`repro.util.clock.Clock`, so discrete-event simulation runs
  produce spans in virtual time.  Components that timestamp events with
  their own clock should share one clock instance with the tracer so
  retroactive spans (:meth:`Tracer.add_span`) align.
- **Thread-local implicit parenting.**  ``with tracer.span(...)`` nests
  within the innermost open span *of the same thread*; hops across
  threads, sockets, or task queues pass an explicit
  :class:`SpanContext`.
"""

from __future__ import annotations

import threading
import uuid
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.util.clock import Clock, SystemClock

F = TypeVar("F", bound=Callable[..., Any])

#: Span status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def _new_id() -> str:
    """A 16-character random hex identifier (span / trace ids)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """The propagatable part of a span: which trace, which span.

    This is what crosses component boundaries — embedded in task
    payloads, protocol frames, and MPI messages — so that work done on
    the far side parents correctly under the originating span.
    """

    trace_id: str
    span_id: str

    def to_wire(self) -> list[str]:
        """Wire form: a two-element JSON-ready list."""
        return [self.trace_id, self.span_id]

    @classmethod
    def from_wire(cls, data: Any) -> "SpanContext | None":
        """Parse the wire form; None for anything malformed."""
        if (
            isinstance(data, (list, tuple))
            and len(data) == 2
            and all(isinstance(part, str) and part for part in data)
        ):
            return cls(trace_id=data[0], span_id=data[1])
        return None


class Span:
    """One timed operation in one component.

    ``start``/``end`` are clock timestamps (seconds); ``end`` is None
    while the span is open.  ``attrs`` carries operation-specific data
    (task ids, batch sizes, byte counts).
    """

    __slots__ = (
        "name",
        "component",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "status",
        "thread",
    )

    def __init__(
        self,
        name: str,
        component: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start: float,
        end: float | None = None,
        attrs: dict[str, Any] | None = None,
        status: str = STATUS_OK,
        thread: str = "",
    ) -> None:
        self.name = name
        self.component = component
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}
        self.status = status
        self.thread = thread

    @property
    def context(self) -> SpanContext:
        """This span's propagatable context."""
        return SpanContext(self.trace_id, self.span_id)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    @property
    def finished(self) -> bool:
        return self.end is not None

    def duration(self) -> float:
        """Elapsed seconds; 0.0 while still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (used by the exporters)."""
        return {
            "name": self.name,
            "component": self.component,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
            "status": self.status,
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            component=data.get("component", ""),
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=float(data["start"]),
            end=None if data.get("end") is None else float(data["end"]),
            attrs=dict(data.get("attrs", {})),
            status=data.get("status", STATUS_OK),
            thread=data.get("thread", ""),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, component={self.component!r}, "
            f"start={self.start:.6f}, dur={self.duration():.6f})"
        )


class _NoopSpan:
    """Stand-in yielded by a disabled tracer: absorbs attribute writes."""

    __slots__ = ()

    context: SpanContext | None = None

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _NoopHandle:
    """Reusable no-op context manager (stateless, hence shareable)."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_HANDLE = _NoopHandle()


class _SpanHandle:
    """Context manager for one live span: finishes it on exit and
    records an error status when the body raises."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None:
            self._span.status = STATUS_ERROR
            self._span.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        self._tracer.end_span(self._span)
        return False


class Tracer:
    """Records spans against an injected clock.

    Thread-safe: any number of threads may open spans concurrently; each
    thread gets its own implicit-parent stack.  ``max_spans`` bounds
    memory — spans beyond it are counted in :attr:`dropped` rather than
    stored, so a forgotten enabled tracer cannot exhaust memory.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        enabled: bool = True,
        max_spans: int = 200_000,
    ) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._enabled = enabled
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()
        self.dropped = 0

    # -- state ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def clock(self) -> Clock:
        return self._clock

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_context(self) -> SpanContext | None:
        """The innermost open span's context on this thread, if any."""
        stack = self._stack()
        return stack[-1].context if stack else None

    # -- span creation ----------------------------------------------------

    def span(
        self,
        name: str,
        component: str = "",
        parent: SpanContext | None = None,
        **attrs: Any,
    ) -> _SpanHandle | _NoopHandle:
        """Open a span as a context manager.

        ``parent`` overrides the implicit (thread-local) parent — pass
        the propagated context when the logical parent lives in another
        thread or process.  When tracing is disabled this returns a
        shared no-op handle without allocating.
        """
        if not self._enabled:
            return _NOOP_HANDLE
        span = self.start_span(name, component, parent=parent, _push=True, **attrs)
        assert span is not None
        return _SpanHandle(self, span)

    def start_span(
        self,
        name: str,
        component: str = "",
        parent: SpanContext | None = None,
        _push: bool = False,
        **attrs: Any,
    ) -> Span | None:
        """Open a span without a context manager (for spans whose end is
        observed in a different callback, e.g. an async dispatch).

        The caller must pass the span to :meth:`end_span`.  Returns None
        when tracing is disabled (``end_span(None)`` is a no-op, so call
        sites stay branch-free).  Spans opened this way do NOT become
        the implicit parent of nested spans unless opened via
        :meth:`span`.
        """
        if not self._enabled:
            return None
        if parent is None:
            stack = self._stack()
            parent = stack[-1].context if stack else None
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _new_id(), None
        span = Span(
            name=name,
            component=component,
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            start=self._clock.now(),
            attrs=dict(attrs) if attrs else {},
            thread=threading.current_thread().name,
        )
        if _push:
            self._stack().append(span)
        return span

    def end_span(self, span: Span | None) -> None:
        """Close and record a span (None is ignored; double-end is too)."""
        if span is None or span.end is not None:
            return
        span.end = self._clock.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._record(span)

    def add_span(
        self,
        name: str,
        component: str,
        start: float,
        end: float,
        parent: SpanContext | None = None,
        trace_id: str | None = None,
        attrs: dict[str, Any] | None = None,
        status: str = STATUS_OK,
    ) -> Span | None:
        """Record an already-completed span retroactively.

        Used where instrumented code only learns after the fact that an
        interval was interesting (a fetch that actually returned tasks,
        a finished transfer).  Timestamps must come from the same clock
        the tracer uses for live spans to keep exports aligned.
        """
        if not self._enabled:
            return None
        if parent is not None:
            tid, parent_id = parent.trace_id, parent.span_id
        else:
            tid, parent_id = (trace_id if trace_id is not None else _new_id()), None
        span = Span(
            name=name,
            component=component,
            trace_id=tid,
            span_id=_new_id(),
            parent_id=parent_id,
            start=start,
            end=end,
            attrs=dict(attrs) if attrs else {},
            status=status,
            thread=threading.current_thread().name,
        )
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self._max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    # -- decorator --------------------------------------------------------

    def traced(self, name: str | None = None, component: str = "") -> Callable[[F], F]:
        """Decorator form: ``@tracer.traced(component="store")``."""

        def decorate(fn: F) -> F:
            span_name = name if name is not None else fn.__qualname__

            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self._enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name, component):
                    return fn(*args, **kwargs)

            wrapper.__name__ = fn.__name__
            wrapper.__qualname__ = fn.__qualname__
            wrapper.__doc__ = fn.__doc__
            return wrapper  # type: ignore[return-value]

        return decorate

    # -- inspection -------------------------------------------------------

    def spans(self, component: str | None = None) -> list[Span]:
        """A start-time-sorted snapshot of recorded (finished) spans."""
        with self._lock:
            spans = list(self._spans)
        if component is not None:
            spans = [s for s in spans if s.component == component]
        spans.sort(key=lambda s: s.start)
        return spans

    def components(self) -> list[str]:
        """Distinct components seen, in first-recorded order."""
        seen: dict[str, None] = {}
        with self._lock:
            for span in self._spans:
                seen.setdefault(span.component, None)
        return list(seen)

    def clear(self) -> None:
        """Drop all recorded spans (multi-run reuse)."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# -- context propagation helpers ----------------------------------------------


def inject(ctx: SpanContext | None) -> list[str] | None:
    """Wire form of a context (None passes through)."""
    return None if ctx is None else ctx.to_wire()


def extract(data: Any) -> SpanContext | None:
    """Context from wire form (None / malformed → None)."""
    return SpanContext.from_wire(data)


# -- global default tracer ----------------------------------------------------

#: The process-wide default tracer.  Disabled out of the box so that all
#: inline instrumentation is free until a run opts in.
_global_tracer = Tracer(enabled=False)
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the default; returns the previous one."""
    global _global_tracer
    with _global_lock:
        previous = _global_tracer
        _global_tracer = tracer
        return previous


def configure_tracing(
    clock: Clock | None = None,
    enabled: bool = True,
    max_spans: int = 200_000,
) -> Tracer:
    """Create and install a fresh default tracer; returns it.

    Pass the same ``clock`` instance to the components under trace
    (EQSQL, pools, broker, transfer client) so every timestamp in the
    run shares one timebase.
    """
    tracer = Tracer(clock=clock, enabled=enabled, max_spans=max_spans)
    set_tracer(tracer)
    return tracer


def span_tree(spans: Sequence[Span]) -> dict[str | None, list[Span]]:
    """Index spans by parent id (None key = roots) for tree walks."""
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children

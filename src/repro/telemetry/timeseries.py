"""Concurrency time series and utilization statistics.

Reduces TASK_START/TASK_STOP event streams to the step functions the
paper's figures plot, and to the summary statistics the benchmarks
report: time-weighted mean concurrency, utilization (mean concurrency /
worker count), idle-worker fraction, and a saw-tooth measure (how deep
and how often concurrency dips), which quantifies the Fig 3 bottom-panel
behaviour under a large fetch threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.events import EventKind, TaskEvent


@dataclass(frozen=True)
class ConcurrencySeries:
    """A right-continuous step function: ``counts[i]`` tasks are running
    on the half-open interval ``[times[i], times[i+1])``; the final count
    holds from ``times[-1]`` to :attr:`end`."""

    times: np.ndarray
    counts: np.ndarray
    end: float

    def value_at(self, t: float) -> int:
        """Concurrency at time ``t`` (0 before the first event)."""
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        if idx < 0:
            return 0
        return int(self.counts[idx])

    def duration(self) -> float:
        """Span from first event to :attr:`end`."""
        if len(self.times) == 0:
            return 0.0
        return float(self.end - self.times[0])


def concurrency_series(
    events: list[TaskEvent],
    source: str | None = None,
    end: float | None = None,
) -> ConcurrencySeries:
    """Build the running-task step function from start/stop events.

    ``source`` restricts to one worker pool (Fig 4 plots per-pool
    series); ``end`` extends the series to a common horizon so multiple
    pools can be compared over the same window.
    """
    deltas: list[tuple[float, int]] = []
    for event in events:
        if source is not None and event.source != source:
            continue
        if event.kind == EventKind.TASK_START:
            deltas.append((event.time, +1))
        elif event.kind == EventKind.TASK_STOP:
            deltas.append((event.time, -1))
    if not deltas:
        return ConcurrencySeries(np.array([]), np.array([], dtype=int), end or 0.0)
    deltas.sort()
    times: list[float] = []
    counts: list[int] = []
    running = 0
    for t, d in deltas:
        running += d
        if times and times[-1] == t:
            counts[-1] = running
        else:
            times.append(t)
            counts.append(running)
    series_end = max(end if end is not None else times[-1], times[-1])
    return ConcurrencySeries(np.asarray(times), np.asarray(counts, dtype=int), series_end)


def mean_concurrency(series: ConcurrencySeries) -> float:
    """Time-weighted mean of the step function over its span."""
    if len(series.times) == 0 or series.duration() == 0:
        return 0.0
    edges = np.append(series.times, series.end)
    widths = np.diff(edges)
    return float(np.sum(series.counts * widths) / series.duration())


def time_at_or_above(series: ConcurrencySeries, level: int) -> float:
    """Fraction of the span spent with concurrency >= ``level``."""
    if len(series.times) == 0 or series.duration() == 0:
        return 0.0
    edges = np.append(series.times, series.end)
    widths = np.diff(edges)
    mask = series.counts >= level
    return float(np.sum(widths[mask]) / series.duration())


def utilization_stats(
    series: ConcurrencySeries, n_workers: int
) -> dict[str, float]:
    """Summary statistics against a pool's worker count.

    - ``mean_concurrency``: time-weighted average of running tasks.
    - ``utilization``: mean concurrency / workers (capped counts — an
      oversubscribed pool still cannot *run* more than its workers).
    - ``idle_fraction``: time-weighted fraction of worker-seconds idle.
    - ``full_fraction``: fraction of time every worker was busy.
    - ``dip_depth_mean``: mean depth below full when not full — the
      saw-tooth amplitude of Fig 3 (bottom).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if len(series.times) == 0 or series.duration() == 0:
        return {
            "mean_concurrency": 0.0,
            "utilization": 0.0,
            "idle_fraction": 1.0,
            "full_fraction": 0.0,
            "dip_depth_mean": float(n_workers),
        }
    edges = np.append(series.times, series.end)
    widths = np.diff(edges)
    running = np.minimum(series.counts, n_workers)
    total = series.duration()
    mean = float(np.sum(running * widths) / total)
    idle = float(np.sum((n_workers - running) * widths) / (n_workers * total))
    full_mask = running >= n_workers
    full = float(np.sum(widths[full_mask]) / total)
    not_full = widths[~full_mask]
    if not_full.sum() > 0:
        dip = float(
            np.sum((n_workers - running[~full_mask]) * not_full) / not_full.sum()
        )
    else:
        dip = 0.0
    return {
        "mean_concurrency": mean,
        "utilization": mean / n_workers,
        "idle_fraction": idle,
        "full_fraction": full,
        "dip_depth_mean": dip,
    }


def sample_series(
    series: ConcurrencySeries, n_samples: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the step function on a uniform grid (for plotting and for
    the text charts benchmarks print)."""
    if len(series.times) == 0:
        return np.array([]), np.array([])
    grid = np.linspace(float(series.times[0]), float(series.end), n_samples)
    idx = np.searchsorted(series.times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(series.counts) - 1)
    values = series.counts[idx].astype(float)
    values[grid < series.times[0]] = 0.0
    return grid, values


def completion_counts(
    events: list[TaskEvent], source: str | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative completed-task count over time (tasks-done curve)."""
    stops = sorted(
        e.time
        for e in events
        if e.kind == EventKind.TASK_STOP and (source is None or e.source == source)
    )
    return np.asarray(stops), np.arange(1, len(stops) + 1)

"""Plain-text rendering of benchmark series.

The benchmark harness prints the same series the paper's figures plot;
these helpers render them as aligned tables and block-character charts
so shapes (full utilization vs saw-tooth) are visible in terminal output
and in ``bench_output.txt``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def ascii_chart(
    values: Sequence[float],
    max_value: float | None = None,
    width: int = 80,
    label: str = "",
) -> str:
    """A one-line block chart of ``values`` scaled to ``max_value``.

    Values are resampled to ``width`` columns by averaging.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return f"{label} (no data)"
    top = max_value if max_value is not None else float(arr.max())
    if top <= 0:
        top = 1.0
    if arr.size > width:
        # Average into `width` buckets.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])])
    scaled = np.clip(arr / top, 0.0, 1.0) * (len(_BLOCKS) - 1)
    chars = "".join(_BLOCKS[int(round(v))] for v in scaled)
    prefix = f"{label} " if label else ""
    return f"{prefix}|{chars}| max={top:g}"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], floatfmt: str = ".3f"
) -> str:
    """A simple aligned text table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in text_rows)
    return "\n".join(out)

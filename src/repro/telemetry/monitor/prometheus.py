"""Prometheus text exposition (format version 0.0.4).

Renders the :class:`~repro.telemetry.metrics.MetricsRegistry` as the
``/metrics`` scrape document: ``# HELP`` / ``# TYPE`` headers, counters
with the ``_total`` suffix convention, and histograms as *cumulative*
``_bucket{le="..."}`` series ending in ``+Inf`` plus ``_sum`` and
``_count`` — exactly what a Prometheus server (or funcX-style endpoint
monitor) expects to pull from a long-running service.

The registry's internal names use dots (``service.requests``); the
exposition format only permits ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so names
are sanitized here and only here — the registry stays the single
source of truth for instrumented code.
"""

from __future__ import annotations

import re

from repro.telemetry.metrics import MetricsRegistry, get_metrics

#: Content-Type a compliant scraper expects for this document.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitize a registry name into a legal Prometheus metric name."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value (backslash, newline, double quote)."""
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def format_value(value: float) -> str:
    """Shortest exact decimal for a sample value (ints stay integral)."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_histogram(name: str, snap: dict, lines: list[str]) -> None:
    cumulative = 0
    for bound, count in zip(snap["bounds"], snap["counts"]):
        cumulative += count
        lines.append(
            f'{name}_bucket{{le="{format_value(bound)}"}} {cumulative}'
        )
    # The implicit overflow bucket: le="+Inf" must equal _count.
    lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
    lines.append(f"{name}_sum {format_value(snap['sum'])}")
    lines.append(f"{name}_count {snap['count']}")


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The full scrape document for every metric in ``registry``.

    Metrics render in sorted registry order; each one snapshots
    atomically (per metric), which is the consistency Prometheus
    itself guarantees per scrape.
    """
    registry = registry if registry is not None else get_metrics()
    lines: list[str] = []
    for raw_name in registry.names():
        metric = registry.get(raw_name)
        if metric is None:  # raced a clear(); skip
            continue
        name = metric_name(raw_name)
        snap = metric.snapshot()
        kind = snap["type"]
        if kind == "counter" and not name.endswith("_total"):
            name += "_total"
        if metric.help:
            lines.append(f"# HELP {name} {escape_help(metric.help)}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            _render_histogram(name, snap, lines)
        else:
            lines.append(f"{name} {format_value(snap['value'])}")
    return "\n".join(lines) + "\n" if lines else ""

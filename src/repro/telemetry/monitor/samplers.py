"""Background samplers: periodic state snapshots into the metrics registry.

Counters and histograms capture *events* as they happen; queue depth,
lease health, and worker occupancy are *levels* that nothing increments.
Samplers close the gap: a daemon thread with an injected clock wakes
every ``interval`` seconds, reads the level, and publishes it as gauges
in the shared :class:`~repro.telemetry.metrics.MetricsRegistry` — so a
``/metrics`` scrape or ``/status`` poll always sees fresh operational
state without any hot-path cost.

Each sampler also keeps a bounded in-memory history of its headline
level and exposes it as a :class:`~repro.telemetry.timeseries.
ConcurrencySeries`, so the same reducers that analyze benchmark event
streams (``mean_concurrency``, ``utilization_stats``) summarize live
runs.  Tests drive :meth:`Sampler.sample_once` directly under a
:class:`~repro.util.clock.VirtualClock`; the threaded mode is
wall-clock.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Mapping

import numpy as np

from repro.db.backend import TaskStore
from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.telemetry.timeseries import (
    ConcurrencySeries,
    mean_concurrency,
    utilization_stats,
)
from repro.util.clock import Clock, SystemClock
from repro.util.logging import get_logger, log_event

_log = get_logger(__name__)


class Sampler:
    """Base class: a periodic :meth:`sample_once` on a daemon thread.

    Subclasses override :meth:`sample_once`; the loop absorbs exceptions
    (a transient store error must not kill monitoring) and keeps
    sampling.  ``history`` bounds the in-memory level series.
    """

    #: Name used for the thread and log events.
    name = "sampler"

    def __init__(
        self,
        interval: float = 1.0,
        clock: Clock | None = None,
        history: int = 512,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampler interval must be positive, got {interval}")
        self._interval = interval
        self._clock = clock if clock is not None else SystemClock()
        self._history: deque[tuple[float, float]] = deque(maxlen=history)
        self._history_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0

    # -- override points ----------------------------------------------------

    def sample_once(self) -> None:
        """Take one snapshot (override; call :meth:`record_level` with
        the headline level)."""
        raise NotImplementedError

    # -- history ------------------------------------------------------------

    def record_level(self, value: float) -> None:
        """Append one (now, value) point to the level history."""
        with self._history_lock:
            self._history.append((self._clock.now(), float(value)))
        self.samples_taken += 1

    def level_series(self) -> ConcurrencySeries:
        """The sampled level as a step function the timeseries reducers
        understand (an empty series when nothing was sampled yet)."""
        with self._history_lock:
            points = list(self._history)
        if not points:
            return ConcurrencySeries(np.array([]), np.array([], dtype=int), 0.0)
        times = np.asarray([t for t, _ in points])
        counts = np.asarray([v for _, v in points])
        return ConcurrencySeries(times, counts, float(times[-1]))

    def summary(self) -> dict:
        """JSON-ready reduction of the level history."""
        series = self.level_series()
        n = len(series.times)
        return {
            "samples": self.samples_taken,
            "level_last": float(series.counts[-1]) if n else 0.0,
            "level_mean": mean_concurrency(series),
            "level_max": float(series.counts.max()) if n else 0.0,
        }

    # -- lifecycle ------------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.sample_once()
            except Exception as exc:  # noqa: BLE001 - samplers must outlive faults
                log_event(
                    _log, "monitor.sampler_error", level=30,
                    sampler=self.name, error=str(exc),
                )

    def start(self) -> "Sampler":
        """Begin sampling on a daemon thread; returns self for chaining.

        Idempotent: starting a running sampler is a no-op (callers that
        share a sampler — a pool and its bench harness, say — need not
        coordinate), and a stopped sampler restarts cleanly.
        """
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=self.name, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "Sampler":
        """Stop the sampling thread; idempotent, returns self.

        A double stop must not join a dead thread: the first call Nones
        out ``_thread``, so the second is a pure no-op.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None
        return self

    def is_alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "Sampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class StoreSampler(Sampler):
    """Snapshots a :class:`TaskStore` into queue/lease gauges.

    One :meth:`~repro.db.backend.TaskStore.stats` round trip per tick
    feeds:

    - ``store.tasks.<status>`` — tasks per lifecycle status,
    - ``store.queue_out_depth`` (+ ``store.queue_out_depth.type_<t>``
      per work type) and ``store.queue_in_depth``,
    - ``leases.active`` / ``leases.expired`` / ``leases.unleased_running``.

    The headline level is the total output-queue depth, so
    :meth:`summary` reports the time-weighted mean/max backlog.
    """

    name = "store-sampler"

    def __init__(
        self,
        store: TaskStore,
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
        interval: float = 1.0,
        history: int = 512,
    ) -> None:
        super().__init__(interval=interval, clock=clock, history=history)
        self._store = store
        self._registry = metrics if metrics is not None else get_metrics()
        self._g_out = self._registry.gauge(
            "store.queue_out_depth", "tasks waiting on the output queue"
        )
        self._g_in = self._registry.gauge(
            "store.queue_in_depth", "results waiting on the input queue"
        )
        self._g_active = self._registry.gauge(
            "leases.active", "RUNNING tasks holding an unexpired lease"
        )
        self._g_expired = self._registry.gauge(
            "leases.expired", "RUNNING tasks whose lease lapsed (reapable)"
        )
        self._g_unleased = self._registry.gauge(
            "leases.unleased_running", "RUNNING tasks popped without a lease"
        )
        self.last_stats: dict | None = None

    def sample_once(self) -> None:
        stats = self._store.stats(now=self._clock.now())
        self.last_stats = stats
        for status, count in stats["tasks"].items():
            if status == "total":
                continue
            self._registry.gauge(
                f"store.tasks.{status}", f"tasks currently {status}"
            ).set(count)
        for eq_type, depth in stats["queue_out"].items():
            self._registry.gauge(
                f"store.queue_out_depth.type_{eq_type}",
                f"queued tasks of work type {eq_type}",
            ).set(depth)
        self._g_out.set(stats["queue_out_total"])
        self._g_in.set(stats["queue_in"])
        leases = stats["leases"]
        self._g_active.set(leases["active"])
        self._g_expired.set(leases["expired"])
        self._g_unleased.set(leases["unleased_running"])
        self.record_level(stats["queue_out_total"])

    def summary(self) -> dict:
        summary = super().summary()
        summary["queue_out_mean_depth"] = summary.pop("level_mean")
        summary["queue_out_max_depth"] = summary.pop("level_max")
        summary["queue_out_last_depth"] = summary.pop("level_last")
        return summary


class PoolSampler(Sampler):
    """Snapshots a :class:`~repro.pools.pool.ThreadedWorkerPool`.

    Publishes ``pool.<name>.owned``, ``pool.<name>.busy`` and
    ``pool.<name>.busy_fraction`` gauges; the headline level is the busy
    worker count, so :meth:`summary` yields live utilization statistics
    through the same :func:`~repro.telemetry.timeseries.utilization_stats`
    reducer the Fig 3 benchmarks use offline.
    """

    name = "pool-sampler"

    def __init__(
        self,
        pool,
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
        interval: float = 1.0,
        history: int = 512,
    ) -> None:
        super().__init__(interval=interval, clock=clock, history=history)
        self._pool = pool
        registry = metrics if metrics is not None else get_metrics()
        prefix = f"pool.{pool.name}"
        self._g_owned = registry.gauge(
            f"{prefix}.owned", "tasks claimed but not yet completed"
        )
        self._g_busy = registry.gauge(
            f"{prefix}.busy", "workers currently executing a task"
        )
        self._g_busy_fraction = registry.gauge(
            f"{prefix}.busy_fraction", "busy workers / total workers"
        )

    def sample_once(self) -> None:
        busy = self._pool.busy()
        self._g_owned.set(self._pool.owned())
        self._g_busy.set(busy)
        self._g_busy_fraction.set(self._pool.busy_fraction())
        self.record_level(busy)

    def summary(self) -> dict:
        summary = super().summary()
        summary["utilization"] = utilization_stats(
            self.level_series(), self._pool.config.n_workers
        )
        return summary


class CallbackSampler(Sampler):
    """Publishes arbitrary levels from callables — e.g. ME driver
    progress (completed / pending counts) or any component exposing a
    cheap numeric probe.

    ``probes`` maps gauge names to zero-argument callables returning a
    number; the first probe's value is the headline level.
    """

    name = "callback-sampler"

    def __init__(
        self,
        probes: Mapping[str, Callable[[], float]],
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
        interval: float = 1.0,
        history: int = 512,
        name: str | None = None,
    ) -> None:
        if not probes:
            raise ValueError("CallbackSampler needs at least one probe")
        super().__init__(interval=interval, clock=clock, history=history)
        if name is not None:
            self.name = name
        registry = metrics if metrics is not None else get_metrics()
        self._probes = [
            (registry.gauge(gauge_name), fn) for gauge_name, fn in probes.items()
        ]

    def sample_once(self) -> None:
        headline: float | None = None
        for gauge, fn in self._probes:
            value = float(fn())
            gauge.set(value)
            if headline is None:
                headline = value
        assert headline is not None
        self.record_level(headline)

"""Embeddable HTTP status server: health, readiness, metrics, status.

A tiny stdlib-only (``http.server``) endpoint meant to ride inside a
long-running process — most importantly :class:`~repro.core.service.
TaskService` — on its own daemon thread.  Four routes:

- ``GET /healthz``  — liveness: 200 whenever the thread serves at all.
- ``GET /readyz``   — readiness: runs the registered checks (DB
  reachable, reaper thread alive, ...); 200 if all pass, 503 otherwise,
  with per-check detail in the JSON body either way.
- ``GET /metrics``  — Prometheus text exposition of the shared registry.
- ``GET /status``   — a JSON snapshot from the owning component
  (queue depths, lease counts, uptime, RPC counters); what
  ``python -m repro monitor`` polls.
- ``GET /events``   — recent flight-recorder records plus the straggler
  summary, when the owner wires an ``events_fn``; what
  ``python -m repro stragglers`` polls.
- ``GET /fleet``    — the fleet registry snapshot (pushed worker
  telemetry), when the owner wires a ``fleet_fn``; what
  ``python -m repro fleet`` polls.

The server binds before :meth:`start` returns, so ``port=0`` (ephemeral)
is safe: read the real port from :attr:`address` afterwards.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Callable, Mapping
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.telemetry.monitor.prometheus import CONTENT_TYPE, render_prometheus
from repro.util.logging import get_logger, log_event

_log = get_logger(__name__)

#: A readiness probe: () -> (ok, human-readable detail).
ReadinessCheck = Callable[[], tuple[bool, str]]


class _StatusHandler(BaseHTTPRequestHandler):
    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a 1 Hz monitor poll would drown real service logs.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    server: "_StatusHTTPServer"

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._send(code, body, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner = self.server.owner
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                self._send_json(200, {"ok": True})
            elif path == "/readyz":
                ok, checks = owner.run_readiness_checks()
                self._send_json(200 if ok else 503, {"ok": ok, "checks": checks})
            elif path == "/metrics":
                body = owner.render_metrics().encode("utf-8")
                self._send(200, body, CONTENT_TYPE)
            elif path == "/status":
                self._send_json(200, owner.status())
            elif path == "/events" and owner.has_events:
                self._send_json(200, owner.events())
            elif path == "/fleet" and owner.has_fleet:
                self._send_json(200, owner.fleet())
            else:
                self._send_json(404, {"ok": False, "error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - a probe must never kill serving
            log_event(_log, "monitor.endpoint_error", level=30,
                      path=path, error=str(exc))
            try:
                self._send_json(500, {"ok": False, "error": str(exc)})
            except OSError:
                pass  # client already gone


class _StatusHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: "StatusServer"


class StatusServer:
    """The embeddable endpoint; see module docstring for routes.

    ``status_fn`` supplies the ``/status`` body; ``events_fn`` supplies
    the ``/events`` body (the route 404s without one); ``fleet_fn``
    supplies the ``/fleet`` body (ditto); ``extra_metrics_fn`` returns
    pre-rendered exposition text appended to ``/metrics`` (how the
    fleet registry adds worker-labelled series the plain registry
    cannot express); ``readiness_checks`` maps check names to probes
    for ``/readyz``.  All are optional — with none, the server still
    serves ``/healthz`` and ``/metrics``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: MetricsRegistry | None = None,
        status_fn: Callable[[], dict] | None = None,
        events_fn: Callable[[], dict] | None = None,
        fleet_fn: Callable[[], dict] | None = None,
        extra_metrics_fn: Callable[[], str] | None = None,
        readiness_checks: Mapping[str, ReadinessCheck] | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else get_metrics()
        self._status_fn = status_fn
        self._events_fn = events_fn
        self._fleet_fn = fleet_fn
        self._extra_metrics_fn = extra_metrics_fn
        self._checks = dict(readiness_checks) if readiness_checks else {}
        # Scrape identity: every /metrics exposition carries the package
        # version as repro_build_info{...}-style gauge (value always 1).
        from repro import __version__

        self.metrics.gauge(
            "repro.build_info", f"build metadata (version {__version__})"
        ).set(1)
        self._httpd = _StatusHTTPServer((host, port), _StatusHandler)
        self._httpd.owner = self
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound — resolves ``port=0``."""
        addr = self._httpd.server_address
        return str(addr[0]), int(addr[1])

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def run_readiness_checks(self) -> tuple[bool, dict[str, dict]]:
        """Run every registered probe; a probe that raises counts as
        failed (its exception text becomes the detail)."""
        results: dict[str, dict] = {}
        all_ok = True
        for name, check in self._checks.items():
            try:
                ok, detail = check()
            except Exception as exc:  # noqa: BLE001 - failed probe, not a crash
                ok, detail = False, str(exc)
            results[name] = {"ok": ok, "detail": detail}
            all_ok = all_ok and ok
        return all_ok, results

    def status(self) -> dict:
        return self._status_fn() if self._status_fn is not None else {}

    @property
    def has_events(self) -> bool:
        return self._events_fn is not None

    def events(self) -> dict:
        return self._events_fn() if self._events_fn is not None else {}

    @property
    def has_fleet(self) -> bool:
        return self._fleet_fn is not None

    def fleet(self) -> dict:
        return self._fleet_fn() if self._fleet_fn is not None else {}

    def render_metrics(self) -> str:
        """The full ``/metrics`` body: registry exposition plus any
        owner-supplied labelled series."""
        body = render_prometheus(self.metrics)
        if self._extra_metrics_fn is not None:
            body += self._extra_metrics_fn()
        return body

    def start(self) -> "StatusServer":
        if self._thread is not None:
            raise RuntimeError("status server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="status-server",
            daemon=True,
        )
        self._thread.start()
        log_event(_log, "monitor.status_server_started", url=self.url)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

"""``python -m repro monitor`` — a terminal view over ``/status``.

Polls a :class:`~repro.telemetry.monitor.server.StatusServer`'s
``/status`` route and renders queue depths, lease health, and RPC
counters as aligned tables, with per-second deltas computed between
consecutive polls (completed/s, bytes/s).  ``--once`` takes a single
snapshot; ``--once --json`` prints the raw JSON payload verbatim, which
makes the endpoint scriptable (``repro monitor URL --once --json | jq``).

Only stdlib networking (``urllib.request``) — the monitor must work on a
login node with nothing but the repo installed.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import TextIO

from repro.telemetry.report import render_table


def parse_url(target: str) -> str:
    """Normalize a monitor target into a base URL.

    Accepts ``host:port``, ``http://host:port``, or a full ``/status``
    URL; returns the base (no trailing slash, no route).
    """
    if "://" not in target:
        target = "http://" + target
    target = target.rstrip("/")
    for route in ("/status", "/metrics", "/healthz", "/readyz", "/events"):
        if target.endswith(route):
            target = target[: -len(route)]
            break
    return target


def fetch_json(url: str, timeout: float = 5.0) -> dict:
    """GET ``url`` and decode the JSON body."""
    with urllib.request.urlopen(url, timeout=timeout) as response:  # noqa: S310
        return json.loads(response.read().decode("utf-8"))


def _rate(current: dict, previous: dict | None, path: list[str],
          elapsed: float) -> float | None:
    """Per-second delta of a nested counter between two snapshots."""
    if previous is None or elapsed <= 0:
        return None

    def dig(snapshot: dict) -> float | None:
        node: object = snapshot
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        return float(node) if isinstance(node, (int, float)) else None

    now_v, prev_v = dig(current), dig(previous)
    if now_v is None or prev_v is None:
        return None
    return (now_v - prev_v) / elapsed


def _fmt_rate(value: float | None) -> str:
    return "-" if value is None else f"{value:+.1f}/s"


def render_status(
    status: dict, previous: dict | None = None, elapsed: float = 0.0
) -> str:
    """The human-readable monitor frame for one ``/status`` snapshot."""
    lines: list[str] = []
    service = status.get("service", {})
    if service:
        address = service.get("address")
        if isinstance(address, (list, tuple)) and len(address) == 2:
            address = f"{address[0]}:{address[1]}"
        uptime = service.get("uptime_seconds", 0.0)
        lines.append(
            f"service {address}  up {uptime:.1f}s  "
            f"clients {service.get('connections_active', 0)} active / "
            f"{service.get('connections_total', 0)} total"
        )
        rows = [
            ["requests", service.get("requests", 0),
             _fmt_rate(_rate(status, previous, ["service", "requests"], elapsed))],
            ["errors", service.get("errors", 0),
             _fmt_rate(_rate(status, previous, ["service", "errors"], elapsed))],
            ["bytes in", service.get("bytes_received", 0),
             _fmt_rate(_rate(status, previous,
                             ["service", "bytes_received"], elapsed))],
            ["bytes out", service.get("bytes_sent", 0),
             _fmt_rate(_rate(status, previous, ["service", "bytes_sent"], elapsed))],
        ]
        lines.append(render_table(["rpc", "count", "rate"], rows))

    store = status.get("store", {})
    if store:
        tasks = store.get("tasks", {})
        task_rows = [
            [name, count,
             _fmt_rate(_rate(status, previous, ["store", "tasks", name], elapsed))]
            for name, count in tasks.items()
        ]
        lines.append(render_table(["tasks", "count", "rate"], task_rows))

        queue_rows = [
            [f"out type {eq_type}", depth, ""]
            for eq_type, depth in store.get("queue_out", {}).items()
        ]
        queue_rows.append(["out total", store.get("queue_out_total", 0), ""])
        queue_rows.append(["in", store.get("queue_in", 0), ""])
        lines.append(render_table(["queue", "depth", ""], queue_rows))

        leases = store.get("leases", {})
        lease_rows = [[name, count] for name, count in leases.items()]
        if lease_rows:
            lines.append(render_table(["leases", "count"], lease_rows))

    sampler = status.get("sampler")
    if sampler:
        lines.append(
            "sampler: "
            + "  ".join(
                f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sampler.items()
            )
        )
    if not lines:
        lines.append("(empty status payload)")
    return "\n\n".join(lines)


def render_stragglers(events: dict) -> str:
    """The human-readable frame for one ``/events`` snapshot."""
    lines: list[str] = []
    stragglers = events.get("stragglers", {})
    active = stragglers.get("active", [])
    if active:
        rows = [
            [
                f["task_id"],
                f["work_type"],
                f["phase"],
                f"{f['elapsed_seconds']:.3f}",
                f"{f['baseline_seconds']:.3f}",
                f"{f['ratio']:.1f}x",
                f.get("source", ""),
            ]
            for f in active
        ]
        lines.append(
            render_table(
                ["task", "type", "phase", "elapsed", "median", "ratio", "pool"],
                rows,
            )
        )
    else:
        lines.append("no stragglers")
    baselines = stragglers.get("baselines", {})
    if baselines:
        rows = [
            [key, b.get("samples", 0), f"{b.get('median_seconds', 0.0):.4f}"]
            for key, b in sorted(baselines.items())
        ]
        lines.append(render_table(["type/phase", "samples", "median (s)"], rows))
    lines.append(
        f"open intervals: {stragglers.get('open_intervals', 0)}  "
        f"flagged ever: {stragglers.get('flagged_total', 0)}"
    )
    journal = events.get("journal", {})
    if journal:
        lines.append(
            f"journal: enabled={journal.get('enabled')}  "
            f"records={journal.get('total_in_ring', 0)}  "
            f"dropped={journal.get('dropped', 0)}"
        )
    return "\n\n".join(lines)


def run_stragglers(
    target: str,
    interval: float = 2.0,
    once: bool = False,
    json_mode: bool = False,
    iterations: int | None = None,
    out: TextIO | None = None,
) -> int:
    """Poll ``target``'s ``/events`` route and render straggler frames.

    The live-view counterpart of :func:`run_monitor` for the flight
    recorder: shows currently flagged stragglers, per-work-type
    baselines, and journal health.  Returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    base = parse_url(target)
    n = 0
    try:
        while True:
            try:
                events = fetch_json(base + "/events")
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
                print(f"stragglers: cannot reach {base}/events: {exc}", file=sys.stderr)
                return 1
            if json_mode:
                print(json.dumps(events, indent=2, sort_keys=True), file=out)
            else:
                stamp = time.strftime("%H:%M:%S")
                frame = render_stragglers(events)
                print(f"=== {base}  {stamp} ===\n{frame}\n", file=out)
            n += 1
            if once or (iterations is not None and n >= iterations):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def run_monitor(
    target: str,
    interval: float = 2.0,
    once: bool = False,
    json_mode: bool = False,
    iterations: int | None = None,
    out: TextIO | None = None,
) -> int:
    """Poll ``target`` and render frames until interrupted.

    ``iterations`` bounds the number of polls (tests use it; the CLI
    leaves it unbounded).  Returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    base = parse_url(target)
    previous: dict | None = None
    previous_at = 0.0
    n = 0
    try:
        while True:
            try:
                status = fetch_json(base + "/status")
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
                print(f"monitor: cannot reach {base}/status: {exc}", file=sys.stderr)
                return 1
            now = time.monotonic()
            if json_mode:
                print(json.dumps(status, indent=2, sort_keys=True), file=out)
            else:
                frame = render_status(status, previous, now - previous_at)
                stamp = time.strftime("%H:%M:%S")
                print(f"=== {base}  {stamp} ===\n{frame}\n", file=out)
            previous, previous_at = status, now
            n += 1
            if once or (iterations is not None and n >= iterations):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0

"""``python -m repro monitor`` — a terminal view over ``/status``.

Polls a :class:`~repro.telemetry.monitor.server.StatusServer`'s
``/status`` route and renders queue depths, lease health, and RPC
counters as aligned tables, with per-second deltas computed between
consecutive polls (completed/s, bytes/s).  ``--once`` takes a single
snapshot; ``--once --json`` prints the raw JSON payload verbatim, which
makes the endpoint scriptable (``repro monitor URL --once --json | jq``).

Only stdlib networking (``urllib.request``) — the monitor must work on a
login node with nothing but the repo installed.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import TextIO

from repro.telemetry.report import render_table


def parse_url(target: str) -> str:
    """Normalize a monitor target into a base URL.

    Accepts ``host:port``, ``http://host:port``, or a full ``/status``
    URL; returns the base (no trailing slash, no route).
    """
    if "://" not in target:
        target = "http://" + target
    target = target.rstrip("/")
    for route in ("/status", "/metrics", "/healthz", "/readyz", "/events",
                  "/fleet"):
        if target.endswith(route):
            target = target[: -len(route)]
            break
    return target


def fetch_json(url: str, timeout: float = 5.0) -> dict:
    """GET ``url`` and decode the JSON body."""
    with urllib.request.urlopen(url, timeout=timeout) as response:  # noqa: S310
        return json.loads(response.read().decode("utf-8"))


def _rate(current: dict, previous: dict | None, path: list[str],
          elapsed: float) -> float | None:
    """Per-second delta of a nested counter between two snapshots."""
    if previous is None or elapsed <= 0:
        return None

    def dig(snapshot: dict) -> float | None:
        node: object = snapshot
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        return float(node) if isinstance(node, (int, float)) else None

    now_v, prev_v = dig(current), dig(previous)
    if now_v is None or prev_v is None:
        return None
    return (now_v - prev_v) / elapsed


def _fmt_rate(value: float | None) -> str:
    return "-" if value is None else f"{value:+.1f}/s"


def render_status(
    status: dict, previous: dict | None = None, elapsed: float = 0.0
) -> str:
    """The human-readable monitor frame for one ``/status`` snapshot."""
    lines: list[str] = []
    service = status.get("service", {})
    if service:
        address = service.get("address")
        if isinstance(address, (list, tuple)) and len(address) == 2:
            address = f"{address[0]}:{address[1]}"
        uptime = service.get("uptime_seconds", 0.0)
        lines.append(
            f"service {address}  up {uptime:.1f}s  "
            f"clients {service.get('connections_active', 0)} active / "
            f"{service.get('connections_total', 0)} total"
        )
        rows = [
            ["requests", service.get("requests", 0),
             _fmt_rate(_rate(status, previous, ["service", "requests"], elapsed))],
            ["errors", service.get("errors", 0),
             _fmt_rate(_rate(status, previous, ["service", "errors"], elapsed))],
            ["bytes in", service.get("bytes_received", 0),
             _fmt_rate(_rate(status, previous,
                             ["service", "bytes_received"], elapsed))],
            ["bytes out", service.get("bytes_sent", 0),
             _fmt_rate(_rate(status, previous, ["service", "bytes_sent"], elapsed))],
            ["waiters", service.get("waiters", 0), ""],
        ]
        lines.append(render_table(["rpc", "count", "rate"], rows))

    store = status.get("store", {})
    if store:
        tasks = store.get("tasks", {})
        task_rows = [
            [name, count,
             _fmt_rate(_rate(status, previous, ["store", "tasks", name], elapsed))]
            for name, count in tasks.items()
        ]
        lines.append(render_table(["tasks", "count", "rate"], task_rows))

        queue_rows = [
            [f"out type {eq_type}", depth, ""]
            for eq_type, depth in store.get("queue_out", {}).items()
        ]
        queue_rows.append(["out total", store.get("queue_out_total", 0), ""])
        queue_rows.append(["in", store.get("queue_in", 0), ""])
        lines.append(render_table(["queue", "depth", ""], queue_rows))

        leases = store.get("leases", {})
        lease_rows = [[name, count] for name, count in leases.items()]
        if lease_rows:
            lines.append(render_table(["leases", "count"], lease_rows))

    sampler = status.get("sampler")
    if isinstance(sampler, dict):
        lines.append(
            "sampler: "
            + "  ".join(
                f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sampler.items()
            )
        )
    stragglers = status.get("stragglers")
    if isinstance(stragglers, dict):
        active = stragglers.get("active") or []
        verdicts = [
            f"{f.get('task_id', '?')}:{f.get('classification', 'unclassified')}"
            for f in active
            if isinstance(f, dict)
        ]
        lines.append(
            f"stragglers: active={len(active)}  "
            f"flagged ever={stragglers.get('flagged_total', 0)}"
            + (f"  [{', '.join(verdicts)}]" if verdicts else "")
        )
    fleet = status.get("fleet")
    if isinstance(fleet, dict):
        lines.append(
            f"fleet: {fleet.get('workers', 0)} workers "
            f"({fleet.get('live', 0)} live, {fleet.get('stale', 0)} stale)"
        )
    if not lines:
        lines.append("(empty status payload)")
    return "\n\n".join(lines)


def render_stragglers(events: dict) -> str:
    """The human-readable frame for one ``/events`` snapshot.

    Every field access is defensive: an older or differently-configured
    server omits optional sections (no detector → no ``stragglers``
    key) and individual entries may lack fields the renderer grew
    after that server shipped — a monitor must degrade, not crash.
    """
    lines: list[str] = []
    stragglers = events.get("stragglers") or {}
    active = stragglers.get("active") or []
    if active:
        rows = [
            [
                f.get("task_id", "?"),
                f.get("work_type", "?"),
                f.get("phase", "?"),
                f"{f.get('elapsed_seconds', 0.0):.3f}",
                f"{f.get('baseline_seconds', 0.0):.3f}",
                f"{f.get('ratio', 0.0):.1f}x",
                f.get("classification", ""),
                f.get("source", ""),
            ]
            for f in active
            if isinstance(f, dict)
        ]
        lines.append(
            render_table(
                ["task", "type", "phase", "elapsed", "median", "ratio",
                 "verdict", "pool"],
                rows,
            )
        )
    else:
        lines.append("no stragglers")
    baselines = stragglers.get("baselines") or {}
    if baselines:
        rows = [
            [key, b.get("samples", 0), f"{b.get('median_seconds', 0.0):.4f}"]
            for key, b in sorted(baselines.items())
            if isinstance(b, dict)
        ]
        lines.append(render_table(["type/phase", "samples", "median (s)"], rows))
    lines.append(
        f"open intervals: {stragglers.get('open_intervals', 0)}  "
        f"flagged ever: {stragglers.get('flagged_total', 0)}"
    )
    journal = events.get("journal")
    if isinstance(journal, dict):
        lines.append(
            f"journal: enabled={journal.get('enabled')}  "
            f"records={journal.get('total_in_ring', 0)}  "
            f"dropped={journal.get('dropped', 0)}"
        )
    return "\n\n".join(lines)


def render_fleet(fleet: dict) -> str:
    """The human-readable frame for one ``/fleet`` snapshot."""
    lines: list[str] = []
    counts = fleet.get("counts") or {}
    lines.append(
        f"fleet: {counts.get('total', 0)} workers  "
        f"{counts.get('live', 0)} live / {counts.get('stale', 0)} stale"
    )
    workers = fleet.get("workers") or []
    if workers:
        rows = []
        for w in workers:
            if not isinstance(w, dict):
                continue
            busy = w.get("busy_fraction", 0.0)
            rows.append(
                [
                    w.get("worker_id", "?"),
                    w.get("role", "?"),
                    w.get("state", "?"),
                    f"{w.get('age_seconds', 0.0):.1f}s",
                    f"{busy * 100:.0f}%" if isinstance(busy, (int, float)) else "-",
                    w.get("owned", 0),
                    w.get("tasks_completed", 0),
                    w.get("tasks_failed", 0),
                    len(w.get("running") or []),
                ]
            )
        lines.append(
            render_table(
                ["worker", "role", "state", "age", "busy", "owned",
                 "done", "failed", "running"],
                rows,
            )
        )
    else:
        lines.append("no workers have pushed telemetry")
    profiles = fleet.get("profiles") or {}
    if profiles:
        rows = [
            [
                work_type,
                p.get("count", 0),
                f"{p.get('wall_p50_seconds', 0.0):.4f}",
                f"{p.get('wall_p95_seconds', 0.0):.4f}",
                f"{p.get('cpu_p50_seconds', 0.0):.4f}",
                f"{p.get('cpu_p95_seconds', 0.0):.4f}",
                f"{p.get('max_rss_kb', 0.0):.0f}",
                p.get("failed", 0),
            ]
            for work_type, p in sorted(profiles.items())
            if isinstance(p, dict)
        ]
        lines.append(
            render_table(
                ["type", "tasks", "wall p50", "wall p95", "cpu p50",
                 "cpu p95", "rss KB", "failed"],
                rows,
            )
        )
    top = fleet.get("top_cpu") or []
    if top:
        rows = [
            [
                p.get("task_id", "?"),
                p.get("work_type", "?"),
                f"{p.get('cpu_seconds', 0.0):.4f}",
                f"{p.get('wall_seconds', 0.0):.4f}",
                f"{p.get('max_rss_delta_kb', 0.0):.0f}",
            ]
            for p in top
            if isinstance(p, dict)
        ]
        lines.append(
            render_table(
                ["top task", "type", "cpu (s)", "wall (s)", "rss Δ KB"], rows
            )
        )
    return "\n\n".join(lines)


def run_fleet(
    target: str,
    interval: float = 2.0,
    once: bool = False,
    json_mode: bool = False,
    iterations: int | None = None,
    out: TextIO | None = None,
) -> int:
    """Poll ``target``'s ``/fleet`` route and render fleet frames.

    The live worker table for the push-telemetry plane: per-worker
    liveness/staleness, throughput counters, per-work-type profile
    aggregates, and the top recent resource consumers.  ``--once
    --json`` prints the registry snapshot verbatim.  Returns a process
    exit code.
    """
    out = out if out is not None else sys.stdout
    base = parse_url(target)
    n = 0
    try:
        while True:
            try:
                fleet = fetch_json(base + "/fleet")
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
                print(f"fleet: cannot reach {base}/fleet: {exc}", file=sys.stderr)
                return 1
            if json_mode:
                print(json.dumps(fleet, indent=2, sort_keys=True), file=out)
            else:
                stamp = time.strftime("%H:%M:%S")
                frame = render_fleet(fleet)
                print(f"=== {base}  {stamp} ===\n{frame}\n", file=out)
            n += 1
            if once or (iterations is not None and n >= iterations):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def run_stragglers(
    target: str,
    interval: float = 2.0,
    once: bool = False,
    json_mode: bool = False,
    iterations: int | None = None,
    out: TextIO | None = None,
) -> int:
    """Poll ``target``'s ``/events`` route and render straggler frames.

    The live-view counterpart of :func:`run_monitor` for the flight
    recorder: shows currently flagged stragglers, per-work-type
    baselines, and journal health.  Returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    base = parse_url(target)
    n = 0
    try:
        while True:
            try:
                events = fetch_json(base + "/events")
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
                print(f"stragglers: cannot reach {base}/events: {exc}", file=sys.stderr)
                return 1
            if json_mode:
                print(json.dumps(events, indent=2, sort_keys=True), file=out)
            else:
                stamp = time.strftime("%H:%M:%S")
                frame = render_stragglers(events)
                print(f"=== {base}  {stamp} ===\n{frame}\n", file=out)
            n += 1
            if once or (iterations is not None and n >= iterations):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def run_monitor(
    target: str,
    interval: float = 2.0,
    once: bool = False,
    json_mode: bool = False,
    iterations: int | None = None,
    out: TextIO | None = None,
) -> int:
    """Poll ``target`` and render frames until interrupted.

    ``iterations`` bounds the number of polls (tests use it; the CLI
    leaves it unbounded).  Returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    base = parse_url(target)
    previous: dict | None = None
    previous_at = 0.0
    n = 0
    try:
        while True:
            try:
                status = fetch_json(base + "/status")
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
                print(f"monitor: cannot reach {base}/status: {exc}", file=sys.stderr)
                return 1
            now = time.monotonic()
            if json_mode:
                print(json.dumps(status, indent=2, sort_keys=True), file=out)
            else:
                frame = render_status(status, previous, now - previous_at)
                stamp = time.strftime("%H:%M:%S")
                print(f"=== {base}  {stamp} ===\n{frame}\n", file=out)
            previous, previous_at = status, now
            n += 1
            if once or (iterations is not None and n >= iterations):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0

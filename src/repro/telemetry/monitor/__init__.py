"""Live operational monitoring: samplers, HTTP endpoints, terminal view.

The pieces compose into the observability loop the platform papers
describe for long-running campaigns: background :mod:`samplers
<repro.telemetry.monitor.samplers>` publish queue/lease/pool levels as
gauges, the :mod:`status server <repro.telemetry.monitor.server>`
exposes them (plus liveness/readiness and Prometheus text) over HTTP,
and the :mod:`terminal view <repro.telemetry.monitor.view>` polls the
JSON route for an operator's-eye live display.

Imported lazily by :class:`~repro.core.service.TaskService` so the
monitoring stack costs nothing unless a status port is requested.
"""

from repro.telemetry.monitor.prometheus import (
    CONTENT_TYPE,
    metric_name,
    render_prometheus,
)
from repro.telemetry.monitor.samplers import (
    CallbackSampler,
    PoolSampler,
    Sampler,
    StoreSampler,
)
from repro.telemetry.monitor.server import StatusServer
from repro.telemetry.monitor.view import (
    fetch_json,
    parse_url,
    render_fleet,
    render_status,
    render_stragglers,
    run_fleet,
    run_monitor,
    run_stragglers,
)

__all__ = [
    "CONTENT_TYPE",
    "CallbackSampler",
    "PoolSampler",
    "Sampler",
    "StatusServer",
    "StoreSampler",
    "fetch_json",
    "metric_name",
    "parse_url",
    "render_fleet",
    "render_prometheus",
    "render_status",
    "render_stragglers",
    "run_fleet",
    "run_monitor",
    "run_stragglers",
]

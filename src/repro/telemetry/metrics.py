"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

The registry instruments the same hot paths the tracer does — queue
wait, run time, report time, service RTT, fetch batch size, payload
bytes — but aggregates instead of recording per-operation, so metrics
stay cheap enough to leave on permanently.  Bucket layouts are fixed at
histogram creation (Prometheus-style), which keeps ``observe`` to a
bisect plus two adds under a lock and makes quantile estimates
mergeable across runs.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Sequence
from typing import Any

#: Default latency buckets (seconds): half-millisecond to a minute.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Payload / transfer size buckets (bytes): 64 B to 10 MB (the fabric cap).
BYTE_BUCKETS: tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 10485760,
)

#: Small-count buckets (fetch batch sizes, queue depths).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


#: Pending-buffer size at which hot-path writes fold into the aggregate.
_FLUSH_AT = 512


class Counter:
    """A monotonically increasing count.

    ``inc`` stays off the lock on the hot path: the amount is appended
    to a pending list (``list.append`` is a single atomic bytecode under
    the GIL) and folded into the total under the lock when the buffer
    fills or a reader asks for the value.  Folds consume a fixed prefix
    of the list, so appends racing with a fold are kept for the next
    one — totals are exact at every read.
    """

    __slots__ = ("name", "help", "_value", "_pending", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._pending: list[float] = []
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease (got {amount})")
        pending = self._pending
        pending.append(amount)
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._fold()

    def _fold(self) -> None:
        """Fold buffered increments into the total (call under the lock)."""
        pending = self._pending
        n = len(pending)
        if n:
            chunk = pending[:n]
            del pending[:n]
            self._value += sum(chunk)

    @property
    def value(self) -> float:
        with self._lock:
            self._fold()
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (queue depth, owned tasks)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are inclusive upper bounds of each bucket; one implicit
    overflow bucket catches everything larger.  Quantiles interpolate
    linearly within the winning bucket (the overflow bucket reports the
    observed max), which is the usual fixed-bucket estimate: exact
    enough for latency reporting, O(buckets) memory forever.
    """

    __slots__ = ("name", "help", "_bounds", "_counts", "_sum", "_count",
                 "_min", "_max", "_pending", "_lock")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram {name}: bounds must be strictly increasing")
        self.name = name
        self.help = help
        self._bounds = ordered
        self._counts = [0] * (len(ordered) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._pending: list[float] = []
        self._lock = threading.Lock()

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        # Hot path: same lock-free pending-buffer discipline as
        # :meth:`Counter.inc`; bucketing happens at fold time.
        pending = self._pending
        pending.append(value)
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._fold()

    def _fold(self) -> None:
        """Fold buffered observations into the buckets (call under the lock)."""
        pending = self._pending
        n = len(pending)
        if not n:
            return
        chunk = pending[:n]
        del pending[:n]
        bounds = self._bounds
        counts = self._counts
        total = 0.0
        low = self._min
        high = self._max
        for value in chunk:
            counts[bisect_left(bounds, value)] += 1
            total += value
            if value < low:
                low = value
            if value > high:
                high = value
        self._sum += total
        self._count += n
        self._min = low
        self._max = high

    @property
    def count(self) -> int:
        with self._lock:
            self._fold()
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            self._fold()
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            self._fold()
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            self._fold()
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            self._fold()
            return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            self._fold()
            if self._count == 0:
                return 0.0
            target = q * self._count
            seen = 0.0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= target:
                    if index == len(self._bounds):
                        return self._max  # overflow bucket
                    upper = self._bounds[index]
                    lower = self._bounds[index - 1] if index > 0 else min(self._min, upper)
                    fraction = (target - seen) / bucket_count
                    # Clamp to the observed range: wide buckets would
                    # otherwise interpolate past the true extremes.
                    return min(max(lower + (upper - lower) * fraction, self._min), self._max)
                seen += bucket_count
            return self._max

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._fold()
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "bounds": list(self._bounds),
                "counts": list(self._counts),
            }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Creation is idempotent — components instantiated repeatedly (pools
    per benchmark round, EQSQL per test) share the process-wide series —
    but re-registering a name as a different metric type is an error, as
    is re-registering a histogram with different buckets.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type, factory: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif type(metric) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        histogram = self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds, help)
        )
        if histogram.bounds != tuple(float(b) for b in bounds):
            raise ValueError(f"histogram {name!r} already registered with other buckets")
        return histogram

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-ready state of every metric."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot() for name, metric in sorted(metrics.items())}

    def render_text(self) -> str:
        """Human-readable exposition of every metric."""
        lines: list[str] = []
        for name, metric in sorted(self.snapshot().items()):
            if metric["type"] == "histogram":
                live = self.get(name)
                assert isinstance(live, Histogram)
                lines.append(
                    f"{name}: count={metric['count']} sum={metric['sum']:.6g} "
                    f"min={metric['min']:.6g} mean={live.mean:.6g} "
                    f"p50={live.quantile(0.5):.6g} p95={live.quantile(0.95):.6g} "
                    f"max={metric['max']:.6g}"
                )
            else:
                lines.append(f"{name}: {metric['value']:.6g}")
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


# -- global default registry --------------------------------------------------

_global_registry = MetricsRegistry()
_global_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry."""
    return _global_registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the default; returns the previous one."""
    global _global_registry
    with _global_lock:
        previous = _global_registry
        _global_registry = registry
        return previous

"""Per-task resource profiling: wall/CPU time and memory attribution.

The straggler detector (``repro.telemetry.anomaly``) sees only
wall-clock intervals, which cannot distinguish a task that is *slow*
(pegging a core on a hard input) from one that is *stuck* (blocked on
I/O, a lock, or a dead dependency).  This module closes that gap at the
source: worker pools wrap each task execution in a
:class:`ProfileHandle` whose :meth:`~ProfileHandle.finish` produces a
:class:`TaskProfile` — wall seconds (``time.perf_counter`` delta),
thread CPU seconds (``time.thread_time`` delta), the process max-RSS
delta (``resource.getrusage``), and an optional tracemalloc allocation
peak.  Profiles are plain dicts on the wire: they ride ``report`` /
``report_batch`` payloads (absent field = no profile, so old clients
and servers interoperate) and land in the journal's ``run_end`` extra.

Two portability gates keep the module import-safe everywhere:

- ``resource`` is POSIX-only; where it is missing, RSS fields are
  ``None`` and everything else still works.
- Live cross-thread CPU reads use ``/proc/self/task/<tid>/stat``
  (Linux).  ``time.thread_time`` only measures the *calling* thread, so
  a telemetry heartbeat thread snapshotting a busy worker needs the
  procfs path; elsewhere the live ``cpu_seconds`` is ``None`` and the
  cpu-vs-wall classification degrades to "unknown" rather than lying.

``ru_maxrss`` is a process-wide high-water mark, so per-task deltas are
attribution hints, not exact charges: concurrent tasks in one process
can only *grow* the watermark, and the task running when it grows gets
the delta.  That is exactly the "which work type is the memory hog"
signal fleet aggregation needs, at getrusage cost.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any

try:  # POSIX only; Windows runs with RSS fields disabled.
    import resource as _resource
except ImportError:  # pragma: no cover - platform dependent
    _resource = None  # type: ignore[assignment]

#: Divisor turning ``ru_maxrss`` into kilobytes: Linux reports KB,
#: macOS reports bytes.
_MAXRSS_TO_KB = 1024 if sys.platform == "darwin" else 1

#: Clock ticks per second for /proc stat CPU fields (Linux).
try:
    _CLK_TCK = os.sysconf("SC_CLK_TCK")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _CLK_TCK = 100

#: Whether per-thread CPU time is readable across threads on this host.
_PROC_TASK_STAT = os.path.isdir("/proc/self/task")


def max_rss_kb() -> float | None:
    """Process max-RSS high-water mark in KB (``None`` off-POSIX)."""
    if _resource is None:
        return None
    return _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss / _MAXRSS_TO_KB


def thread_cpu_seconds(native_tid: int) -> float | None:
    """CPU seconds (user+system) consumed by one OS thread of this
    process, readable from *any* thread.

    Parses ``/proc/self/task/<tid>/stat`` fields 14/15 (utime, stime in
    clock ticks).  Returns ``None`` anywhere the procfs layout is
    unavailable or the thread has exited — callers must treat the live
    CPU signal as best-effort.
    """
    if not _PROC_TASK_STAT:
        return None
    try:
        with open(f"/proc/self/task/{native_tid}/stat", "rb") as f:
            data = f.read()
    except OSError:
        return None
    # comm may contain spaces/parens; fields are positional after the
    # closing paren of field 2.
    rparen = data.rfind(b")")
    if rparen < 0:
        return None
    fields = data[rparen + 2 :].split()
    try:
        utime, stime = int(fields[11]), int(fields[12])
    except (IndexError, ValueError):
        return None
    return (utime + stime) / _CLK_TCK


@dataclass
class TaskProfile:
    """Resource usage of one task execution, JSON-ready via ``to_dict``.

    ``max_rss_delta_kb`` is the growth of the process high-water mark
    during the task (0.0 when the watermark did not move, ``None``
    where ``resource`` is unavailable); ``alloc_peak_kb`` is the
    tracemalloc peak over the task, only when memory profiling was on.
    """

    task_id: int
    work_type: int
    wall_seconds: float
    cpu_seconds: float
    max_rss_kb: float | None = None
    max_rss_delta_kb: float | None = None
    alloc_peak_kb: float | None = None
    failed: bool = False

    @property
    def cpu_fraction(self) -> float:
        """CPU seconds per wall second — ~1.0 for compute-bound work,
        ~0.0 for a task blocked the whole time."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cpu_seconds / self.wall_seconds

    def to_dict(self) -> dict[str, Any]:
        """Wire/journal form; ``None`` fields are omitted to keep
        report frames small."""
        out: dict[str, Any] = {
            "task_id": self.task_id,
            "work_type": self.work_type,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.max_rss_kb is not None:
            out["max_rss_kb"] = self.max_rss_kb
        if self.max_rss_delta_kb is not None:
            out["max_rss_delta_kb"] = self.max_rss_delta_kb
        if self.alloc_peak_kb is not None:
            out["alloc_peak_kb"] = self.alloc_peak_kb
        if self.failed:
            out["failed"] = True
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TaskProfile":
        return cls(
            task_id=int(data.get("task_id", -1)),
            work_type=int(data.get("work_type", -1)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),
            max_rss_kb=data.get("max_rss_kb"),
            max_rss_delta_kb=data.get("max_rss_delta_kb"),
            alloc_peak_kb=data.get("alloc_peak_kb"),
            failed=bool(data.get("failed", False)),
        )


class ProfileHandle:
    """One in-flight task's measurement window.

    Created by :meth:`TaskProfiler.start` on the executing thread;
    :meth:`finish` (same thread) closes the window and returns the
    :class:`TaskProfile`.  While open, :meth:`live` is safe to call
    from *other* threads (the telemetry heartbeat) and reports elapsed
    wall time plus — on Linux — the worker thread's live CPU delta.
    """

    __slots__ = (
        "task_id", "work_type", "_t0_wall", "_t0_cpu", "_t0_rss",
        "_t0_proc_cpu", "_native_tid", "_memory",
    )

    def __init__(self, task_id: int, work_type: int, memory: bool) -> None:
        self.task_id = task_id
        self.work_type = work_type
        self._memory = memory
        self._native_tid = threading.get_native_id()
        if memory:
            import tracemalloc

            if not tracemalloc.is_tracing():  # pragma: no cover - config guard
                self._memory = False
            else:
                tracemalloc.reset_peak()
        self._t0_rss = max_rss_kb()
        self._t0_proc_cpu = thread_cpu_seconds(self._native_tid)
        self._t0_cpu = time.thread_time()
        self._t0_wall = time.perf_counter()

    def live(self, _clock: Any = None) -> dict[str, Any]:
        """Cross-thread snapshot of the running task for push envelopes."""
        elapsed = time.perf_counter() - self._t0_wall
        out: dict[str, Any] = {
            "task_id": self.task_id,
            "work_type": self.work_type,
            "elapsed_seconds": elapsed,
        }
        if self._t0_proc_cpu is not None:
            now_cpu = thread_cpu_seconds(self._native_tid)
            if now_cpu is not None:
                out["cpu_seconds"] = max(0.0, now_cpu - self._t0_proc_cpu)
        return out

    def finish(self, *, failed: bool = False) -> TaskProfile:
        """Close the window (on the executing thread) and return the
        completed profile."""
        wall = time.perf_counter() - self._t0_wall
        cpu = time.thread_time() - self._t0_cpu
        rss = max_rss_kb()
        delta = None
        if rss is not None and self._t0_rss is not None:
            delta = max(0.0, rss - self._t0_rss)
        alloc_peak = None
        if self._memory:
            import tracemalloc

            _current, peak = tracemalloc.get_traced_memory()
            alloc_peak = peak / 1024.0
        return TaskProfile(
            task_id=self.task_id,
            work_type=self.work_type,
            wall_seconds=wall,
            cpu_seconds=max(0.0, cpu),
            max_rss_kb=rss,
            max_rss_delta_kb=delta,
            alloc_peak_kb=alloc_peak,
            failed=failed,
        )


class TaskProfiler:
    """Factory for :class:`ProfileHandle` windows.

    ``memory=True`` additionally samples the tracemalloc peak per task;
    it starts tracemalloc on construction (process-wide — the peak is a
    between-reset high-water mark, so concurrent tasks see a shared
    watermark, same caveat as RSS) and is off by default because
    tracemalloc taxes every allocation.
    """

    def __init__(self, *, memory: bool = False) -> None:
        self._memory = memory
        if memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()

    @property
    def memory(self) -> bool:
        return self._memory

    def start(self, task_id: int, work_type: int) -> ProfileHandle:
        """Open a measurement window on the calling (executing) thread."""
        return ProfileHandle(task_id, work_type, self._memory)

"""Streaming straggler detection over the task flight recorder.

The detector consumes journal records incrementally (:meth:`ingest`
reads the journal's tail by sequence number), maintains per-work-type
rolling baselines of completed queue and run durations, and flags any
*open* interval — a task sitting queued or running right now — whose
elapsed time exceeds a configurable multiple of the rolling median for
its work type.  The quantile comes from a bounded sliding window
(``deque(maxlen=window)``), so the baseline adapts as workload latency
drifts — funcX/UniFaaS-style per-task forensics rather than a static
threshold.

Only ``db``-role records drive the state machine: the DB is the one
role that observes every transition (enqueue, pop, requeue, report,
cancel), and service/pool/ME records for the same hop would otherwise
double-count.  Lifecycle per task::

    enqueue           -> queue interval opens
    pop               -> queue closes (baseline sample), run opens
    requeue           -> run closes *unobserved* (lease loss isn't the
                         task's own runtime), queue reopens
    report            -> run closes (baseline sample), task done
    withdraw / cancel -> any open interval discarded

Flags are exported as gauges (``stragglers.active``,
``stragglers.flagged_total``) and via :meth:`summary` for the
StatusServer's ``/status`` stragglers section and ``GET /events``.
"""

from __future__ import annotations

import threading
from collections import deque
from statistics import median
from typing import Any

from repro.telemetry.journal import (
    EV_CANCEL,
    EV_ENQUEUE,
    EV_POP,
    EV_REPORT,
    EV_REQUEUE,
    EV_WITHDRAW,
    ROLE_DB,
    Journal,
)


class _OpenInterval:
    """A task currently queued or running."""

    __slots__ = ("task_id", "work_type", "phase", "since", "source")

    def __init__(
        self, task_id: int, work_type: int, phase: str, since: float, source: str
    ) -> None:
        self.task_id = task_id
        self.work_type = work_type
        self.phase = phase  # "queue" | "run"
        self.since = since
        self.source = source


class StragglerDetector:
    """Flag tasks whose queue or run time exceeds the rolling median.

    Parameters
    ----------
    journal:
        The flight recorder to stream from (``ingest`` with no argument
        reads its tail).  Optional — tests may feed records directly.
    multiple:
        A task is a straggler when its open interval exceeds
        ``multiple`` × the rolling median for its (work type, phase).
    window:
        Completed-duration samples kept per (work type, phase).
    min_samples:
        Baseline samples required before flagging; below this the
        detector stays silent rather than guessing.
    min_seconds:
        Absolute floor — never flag an interval shorter than this, so
        microsecond medians in fast test workloads don't flag everything.
    metrics:
        Optional registry for the ``stragglers.*`` gauges/counters.
    """

    def __init__(
        self,
        journal: Journal | None = None,
        multiple: float = 4.0,
        window: int = 256,
        min_samples: int = 5,
        min_seconds: float = 0.0,
        metrics: Any = None,
    ) -> None:
        if multiple <= 0:
            raise ValueError(f"straggler multiple must be > 0, got {multiple}")
        self._journal = journal
        self.multiple = multiple
        self.min_samples = min_samples
        self.min_seconds = min_seconds
        self._windows: dict[tuple[int, str], deque[float]] = {}
        self._window_size = window
        self._open: dict[int, _OpenInterval] = {}
        self._flagged: set[int] = set()
        self._flagged_total = 0
        self._since_seq = 0
        self._lock = threading.Lock()
        self._g_active = None
        self._c_flagged = None
        if metrics is not None:
            self._g_active = metrics.gauge(
                "stragglers.active", "tasks currently flagged as stragglers"
            )
            self._c_flagged = metrics.counter(
                "stragglers.flagged_total", "tasks ever flagged as stragglers"
            )

    # -- streaming ingest --------------------------------------------------

    def ingest(self, records: Any = None) -> int:
        """Advance the state machine; returns records consumed.

        With no argument, reads the attached journal's tail since the
        last ingest (the streaming mode the service uses on each
        ``/events`` request — no dedicated thread needed).
        """
        if records is None:
            if self._journal is None:
                return 0
            records = self._journal.tail(self._since_seq)
            if records:
                self._since_seq = records[-1].seq
        consumed = 0
        with self._lock:
            for record in records:
                if record.role != ROLE_DB:
                    continue
                consumed += 1
                self._apply(record)
        return consumed

    def _apply(self, record: Any) -> None:
        event = record.event
        task_id = record.task_id
        if event == EV_ENQUEUE:
            self._open[task_id] = _OpenInterval(
                task_id, record.work_type, "queue", record.time, record.source
            )
        elif event == EV_POP:
            interval = self._open.get(task_id)
            if interval is not None and interval.phase == "queue":
                self._observe(interval.work_type, "queue", record.time - interval.since)
            work_type = record.work_type if record.work_type >= 0 else (
                interval.work_type if interval is not None else -1
            )
            self._open[task_id] = _OpenInterval(
                task_id, work_type, "run", record.time, record.source
            )
        elif event == EV_REQUEUE:
            # Lease loss: the run never completed, so its duration says
            # nothing about healthy runtime — reopen as queued, unobserved.
            interval = self._open.get(task_id)
            work_type = record.work_type if record.work_type >= 0 else (
                interval.work_type if interval is not None else -1
            )
            self._open[task_id] = _OpenInterval(
                task_id, work_type, "queue", record.time, record.source
            )
        elif event == EV_REPORT:
            interval = self._open.pop(task_id, None)
            if interval is not None and interval.phase == "run":
                self._observe(interval.work_type, "run", record.time - interval.since)
            self._flagged.discard(task_id)
        elif event in (EV_WITHDRAW, EV_CANCEL):
            self._open.pop(task_id, None)
            self._flagged.discard(task_id)

    def _observe(self, work_type: int, phase: str, duration: float) -> None:
        if duration < 0:
            return
        key = (work_type, phase)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = deque(maxlen=self._window_size)
        window.append(duration)

    # -- queries -----------------------------------------------------------

    def threshold(self, work_type: int, phase: str) -> float | None:
        """The flagging threshold for (work type, phase); None = no baseline."""
        with self._lock:
            window = self._windows.get((work_type, phase))
            if window is None or len(window) < self.min_samples:
                return None
            return max(self.multiple * median(window), self.min_seconds)

    def baseline(self, work_type: int, phase: str) -> float | None:
        """The rolling median for (work type, phase); None = no baseline."""
        with self._lock:
            window = self._windows.get((work_type, phase))
            if window is None or len(window) < self.min_samples:
                return None
            return median(window)

    def stragglers(self, now: float) -> list[dict[str, Any]]:
        """Open intervals currently exceeding their threshold.

        Worst-first (largest overrun ratio).  Flagging is sticky per
        task id in ``flagged_total`` — a task is counted once however
        many times it is observed over threshold.
        """
        flagged: list[dict[str, Any]] = []
        with self._lock:
            for interval in self._open.values():
                window = self._windows.get((interval.work_type, interval.phase))
                if window is None or len(window) < self.min_samples:
                    continue
                base = median(window)
                limit = max(self.multiple * base, self.min_seconds)
                elapsed = now - interval.since
                if elapsed > limit and limit > 0:
                    flagged.append(
                        {
                            "task_id": interval.task_id,
                            "work_type": interval.work_type,
                            "phase": interval.phase,
                            "elapsed_seconds": elapsed,
                            "baseline_seconds": base,
                            "threshold_seconds": limit,
                            "ratio": elapsed / base if base > 0 else float("inf"),
                            "source": interval.source,
                        }
                    )
            newly = [f["task_id"] for f in flagged if f["task_id"] not in self._flagged]
            self._flagged.update(newly)
            self._flagged_total += len(newly)
        if self._c_flagged is not None and newly:
            self._c_flagged.inc(len(newly))
        if self._g_active is not None:
            self._g_active.set(len(flagged))
        flagged.sort(key=lambda f: f["ratio"], reverse=True)
        return flagged

    def summary(self, now: float) -> dict[str, Any]:
        """JSON-ready state for ``/status`` / ``GET /events``."""
        flagged = self.stragglers(now)
        with self._lock:
            baselines = {
                f"{work_type}/{phase}": {
                    "samples": len(window),
                    "median_seconds": median(window) if window else 0.0,
                }
                for (work_type, phase), window in sorted(self._windows.items())
            }
            open_count = len(self._open)
            total = self._flagged_total
        return {
            "active": flagged,
            "open_intervals": open_count,
            "flagged_total": total,
            "multiple": self.multiple,
            "min_samples": self.min_samples,
            "baselines": baselines,
        }

    def clear(self) -> None:
        with self._lock:
            self._windows.clear()
            self._open.clear()
            self._flagged.clear()
            self._flagged_total = 0
            self._since_seq = 0

"""A small dataflow task-graph engine.

Swift/T — the language the paper's canonical worker pool is written in —
is "a dataflow language with built-in concurrency": statements run as
soon as their data dependencies are satisfied.  This package reproduces
that execution model at library scale: build a :class:`TaskGraph` whose
nodes consume the outputs of their dependencies, then run it with a
:class:`DataflowEngine` that executes every ready node concurrently.

The MPI worker-pool driver uses a graph per fetched batch; it is also a
generally useful substrate (the calibration example composes simulation
→ scoring → aggregation stages with it).
"""

from repro.dataflow.graph import TaskGraph, TaskNode, CycleError
from repro.dataflow.engine import DataflowEngine, NodeFailedError, NodeState

__all__ = [
    "TaskGraph",
    "TaskNode",
    "CycleError",
    "DataflowEngine",
    "NodeFailedError",
    "NodeState",
]

"""Concurrent dataflow execution.

Executes a :class:`~repro.dataflow.graph.TaskGraph` with Swift/T
semantics: a node runs as soon as every dependency has produced a value;
independent nodes run concurrently on a bounded worker pool.  A failing
node poisons its transitive dependents (they are SKIPPED, not run), and
the engine reports per-node states and results.
"""

from __future__ import annotations

import enum
import queue
import threading
from dataclasses import dataclass
from typing import Any

from repro.dataflow.graph import TaskGraph
from repro.util.errors import ReproError


class NodeFailedError(ReproError):
    """Raised by :meth:`DataflowEngine.run` when nodes failed and
    ``raise_on_failure`` is set; carries per-node errors."""

    def __init__(self, errors: dict[str, BaseException]) -> None:
        names = ", ".join(sorted(errors))
        super().__init__(f"dataflow nodes failed: {names}")
        self.errors = errors


class NodeState(enum.Enum):
    """Terminal state of a node after a run."""

    DONE = "done"
    FAILED = "failed"
    SKIPPED = "skipped"  # an upstream dependency failed


@dataclass
class RunResult:
    """Outcome of one graph execution."""

    results: dict[str, Any]
    states: dict[str, NodeState]
    errors: dict[str, BaseException]

    def ok(self) -> bool:
        return all(s == NodeState.DONE for s in self.states.values())


class DataflowEngine:
    """Bounded-concurrency dataflow executor."""

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers

    def run(self, graph: TaskGraph, raise_on_failure: bool = True) -> RunResult:
        """Execute the graph; returns per-node results and states.

        Scheduling is event-driven: a completed node decrements its
        dependents' wait counts and enqueues any that become ready, so
        the engine never scans the whole graph per step.
        """
        graph.topological_order()  # validate acyclicity up front
        nodes = {n.name: n for n in graph.nodes()}
        rev = graph.dependents()
        waiting = {name: len(node.deps) for name, node in nodes.items()}

        results: dict[str, Any] = {}
        states: dict[str, NodeState] = {}
        errors: dict[str, BaseException] = {}
        lock = threading.Lock()
        ready: "queue.Queue[str | None]" = queue.Queue()
        done_count = 0
        total = len(nodes)

        if total == 0:
            return RunResult({}, {}, {})

        for name, count in waiting.items():
            if count == 0:
                ready.put(name)

        def mark_skipped_chain(name: str) -> list[str]:
            """Skip a node and return dependents that became decided."""
            newly: list[str] = []
            stack = [name]
            while stack:
                current = stack.pop()
                for child in rev[current]:
                    if child not in states:
                        states[child] = NodeState.SKIPPED
                        newly.append(child)
                        stack.append(child)
            return newly

        def worker() -> None:
            nonlocal done_count
            while True:
                name = ready.get()
                if name is None:
                    return
                node = nodes[name]
                try:
                    args = [results[dep] for dep in node.deps]
                    value = node.fn(*args)
                    failed = False
                except BaseException as exc:  # noqa: BLE001 - recorded per node
                    failed = True
                    error = exc
                with lock:
                    if failed:
                        states[name] = NodeState.FAILED
                        errors[name] = error
                        skipped = mark_skipped_chain(name)
                        done_count += 1 + len(skipped)
                    else:
                        states[name] = NodeState.DONE
                        results[name] = value
                        done_count += 1
                        for child in rev[name]:
                            waiting[child] -= 1
                            if waiting[child] == 0 and child not in states:
                                ready.put(child)
                    if done_count >= total:
                        for _ in range(self._max_workers):
                            ready.put(None)

        threads = [
            threading.Thread(target=worker, name=f"dataflow-{i}", daemon=True)
            for i in range(min(self._max_workers, total))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors and raise_on_failure:
            raise NodeFailedError(errors)
        return RunResult(results, states, errors)

"""Dataflow task graphs: nodes, dependencies, cycle detection."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ReproError


class CycleError(ReproError):
    """The graph contains a dependency cycle and cannot execute."""


@dataclass
class TaskNode:
    """One node: ``fn`` is called with the results of ``deps`` in order."""

    name: str
    fn: Callable[..., Any]
    deps: tuple[str, ...] = ()
    meta: dict[str, Any] = field(default_factory=dict)


class TaskGraph:
    """A named DAG of callables.

    Nodes are added with :meth:`add`; dependencies are node names and
    must already exist (forcing a build order that cannot create cycles
    through forward references; cycles are still re-verified by
    :meth:`topological_order` for graphs built through :meth:`merge`).
    """

    def __init__(self) -> None:
        self._nodes: dict[str, TaskNode] = {}

    def add(
        self,
        name: str,
        fn: Callable[..., Any],
        deps: Sequence[str] = (),
        **meta: Any,
    ) -> TaskNode:
        """Add a node; returns it.  ``fn`` receives its dependencies'
        results as positional arguments, in ``deps`` order."""
        if name in self._nodes:
            raise ValueError(f"duplicate node name: {name!r}")
        for dep in deps:
            if dep not in self._nodes:
                raise ValueError(f"unknown dependency {dep!r} for node {name!r}")
        node = TaskNode(name=name, fn=fn, deps=tuple(deps), meta=dict(meta))
        self._nodes[name] = node
        return node

    def merge(self, other: "TaskGraph", prefix: str = "") -> None:
        """Copy another graph's nodes in (names optionally prefixed)."""
        for node in other._nodes.values():
            name = prefix + node.name
            if name in self._nodes:
                raise ValueError(f"duplicate node name on merge: {name!r}")
            self._nodes[name] = TaskNode(
                name=name,
                fn=node.fn,
                deps=tuple(prefix + d for d in node.deps),
                meta=dict(node.meta),
            )

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> TaskNode:
        return self._nodes[name]

    def nodes(self) -> list[TaskNode]:
        return list(self._nodes.values())

    def dependents(self) -> dict[str, list[str]]:
        """Reverse adjacency: node name -> names depending on it."""
        rev: dict[str, list[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for dep in node.deps:
                rev[dep].append(node.name)
        return rev

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises :class:`CycleError` on cycles."""
        indegree = {name: len(node.deps) for name, node in self._nodes.items()}
        rev = self.dependents()
        ready = [name for name, d in indegree.items() if d == 0]
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for child in rev[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._nodes):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise CycleError(f"dependency cycle among: {cyclic}")
        return order

    def roots(self) -> list[str]:
        """Nodes with no dependencies."""
        return [n.name for n in self._nodes.values() if not n.deps]

    def leaves(self) -> list[str]:
        """Nodes nothing depends on (the graph's outputs)."""
        rev = self.dependents()
        return [name for name, children in rev.items() if not children]

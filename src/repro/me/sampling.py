"""Design-of-experiments samplers for initial task batches."""

from __future__ import annotations

import numpy as np


def _check_bounds(bounds: np.ndarray | list) -> np.ndarray:
    arr = np.asarray(bounds, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("bounds must have shape (d, 2)")
    if np.any(arr[:, 0] >= arr[:, 1]):
        raise ValueError("each bound must satisfy low < high")
    return arr


def uniform_random(
    rng: np.random.Generator, n: int, bounds: np.ndarray | list
) -> np.ndarray:
    """``n`` points uniform over an axis-aligned box.

    ``bounds`` is (d, 2): per-dimension (low, high).  This is the
    paper's initial design — "an initial sample set of 750
    4-dimensional points".
    """
    arr = _check_bounds(bounds)
    if n < 1:
        raise ValueError("n must be >= 1")
    low, high = arr[:, 0], arr[:, 1]
    return rng.uniform(low, high, size=(n, arr.shape[0]))


def latin_hypercube(
    rng: np.random.Generator, n: int, bounds: np.ndarray | list
) -> np.ndarray:
    """Latin hypercube sample: one point per axis stratum per dimension.

    Better space coverage than i.i.d. uniform for the same budget —
    the standard initial design for surrogate modeling.
    """
    arr = _check_bounds(bounds)
    if n < 1:
        raise ValueError("n must be >= 1")
    d = arr.shape[0]
    # Stratified u in [0,1): one sample per cell, shuffled per dim.
    u = (rng.random((n, d)) + np.arange(n)[:, None]) / n
    for j in range(d):
        u[:, j] = u[rng.permutation(n), j]
    low, high = arr[:, 0], arr[:, 1]
    return low + u * (high - low)

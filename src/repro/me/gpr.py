"""Gaussian-process regression, from scratch.

The paper's example workflow trains "a Gaussian process regression model
(GPR)" on completed Ackley evaluations and uses its predictions to
reorder the remaining queue.  This is a complete small GPR: stationary
kernels (RBF, Matérn-5/2), jittered Cholesky factorization, exact
posterior mean/variance, log marginal likelihood, and L-BFGS-B
hyperparameter optimization with restarts.

Inputs are standardized internally (zero-mean unit-variance targets,
unit-box inputs are the caller's choice) so default hyperparameter
ranges behave across problems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg, optimize


def _cdist_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, (n, m)."""
    # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b — one GEMM, no Python loops.
    a2 = np.sum(a**2, axis=1)[:, None]
    b2 = np.sum(b**2, axis=1)[None, :]
    sq = a2 + b2 - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return sq


@dataclass
class RBFKernel:
    """Squared-exponential kernel: ``variance * exp(-r^2 / (2 l^2))``."""

    lengthscale: float = 1.0
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.lengthscale <= 0 or self.variance <= 0:
            raise ValueError("kernel hyperparameters must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = _cdist_sq(a, b)
        return self.variance * np.exp(-0.5 * sq / self.lengthscale**2)

    def with_params(self, lengthscale: float, variance: float) -> "RBFKernel":
        return RBFKernel(lengthscale, variance)


@dataclass
class Matern52Kernel:
    """Matérn ν=5/2 kernel — rougher sample paths than RBF."""

    lengthscale: float = 1.0
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.lengthscale <= 0 or self.variance <= 0:
            raise ValueError("kernel hyperparameters must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        r = np.sqrt(_cdist_sq(a, b)) / self.lengthscale
        sqrt5_r = np.sqrt(5.0) * r
        return self.variance * (1.0 + sqrt5_r + 5.0 * r**2 / 3.0) * np.exp(-sqrt5_r)

    def with_params(self, lengthscale: float, variance: float) -> "Matern52Kernel":
        return Matern52Kernel(lengthscale, variance)


class GaussianProcessRegressor:
    """Exact GP regression with marginal-likelihood hyperparameter fit.

    Parameters
    ----------
    kernel:
        Initial kernel (its hyperparameters seed the optimizer).
    noise:
        Observation noise variance (also optimized when
        ``optimize_hyperparameters`` is on).
    optimize_hyperparameters:
        Maximize the log marginal likelihood over (lengthscale,
        variance, noise) with L-BFGS-B and ``n_restarts`` random
        restarts.
    """

    def __init__(
        self,
        kernel: RBFKernel | Matern52Kernel | None = None,
        noise: float = 1e-6,
        optimize_hyperparameters: bool = True,
        n_restarts: int = 2,
        seed: int = 0,
    ) -> None:
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.noise = noise
        self._optimize = optimize_hyperparameters
        self._n_restarts = n_restarts
        self._rng = np.random.default_rng(seed)
        self._X: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self._X is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] < 1:
            raise ValueError("need at least one observation")
        self._X = X
        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y))
        if self._y_std <= 0:
            self._y_std = 1.0
        self._yn = (y - self._y_mean) / self._y_std
        if self._optimize and X.shape[0] >= 3:
            self._fit_hyperparameters()
        self._factorize()
        return self

    def _factorize(self) -> None:
        assert self._X is not None
        K = self.kernel(self._X, self._X)
        K[np.diag_indices_from(K)] += self.noise
        # Jitter escalation: Cholesky can fail for near-duplicate rows.
        jitter = 0.0
        for _ in range(6):
            try:
                self._chol = linalg.cholesky(
                    K + jitter * np.eye(K.shape[0]), lower=True
                )
                break
            except linalg.LinAlgError:
                jitter = max(jitter * 10, 1e-10)
        else:  # pragma: no cover - pathological inputs
            raise linalg.LinAlgError("kernel matrix is not positive definite")
        self._alpha = linalg.cho_solve((self._chol, True), self._yn)

    def _neg_log_marginal_likelihood(self, log_params: np.ndarray) -> float:
        lengthscale, variance, noise = np.exp(log_params)
        assert self._X is not None
        kernel = self.kernel.with_params(lengthscale, variance)
        K = kernel(self._X, self._X)
        K[np.diag_indices_from(K)] += noise + 1e-10
        try:
            chol = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.cho_solve((chol, True), self._yn)
        n = self._X.shape[0]
        nll = (
            0.5 * float(self._yn @ alpha)
            + float(np.sum(np.log(np.diag(chol))))
            + 0.5 * n * np.log(2 * np.pi)
        )
        return nll

    def _fit_hyperparameters(self) -> None:
        assert self._X is not None
        starts = [
            np.log([self.kernel.lengthscale, self.kernel.variance, self.noise])
        ]
        for _ in range(self._n_restarts):
            starts.append(
                np.log(
                    [
                        float(10 ** self._rng.uniform(-1, 1)),
                        float(10 ** self._rng.uniform(-1, 1)),
                        float(10 ** self._rng.uniform(-7, -2)),
                    ]
                )
            )
        bounds = [(np.log(1e-3), np.log(1e3))] * 2 + [(np.log(1e-8), np.log(1.0))]
        best: tuple[float, np.ndarray] | None = None
        for x0 in starts:
            result = optimize.minimize(
                self._neg_log_marginal_likelihood,
                x0,
                method="L-BFGS-B",
                bounds=bounds,
            )
            if best is None or result.fun < best[0]:
                best = (float(result.fun), result.x)
        assert best is not None
        lengthscale, variance, noise = np.exp(best[1])
        self.kernel = self.kernel.with_params(float(lengthscale), float(variance))
        self.noise = float(noise)

    def log_marginal_likelihood(self) -> float:
        """LML of the fitted model (normalized-target space)."""
        self._require_fit()
        params = np.log([self.kernel.lengthscale, self.kernel.variance, self.noise])
        return -self._neg_log_marginal_likelihood(params)

    # -- prediction -----------------------------------------------------------------

    def _require_fit(self) -> None:
        if not self.fitted:
            raise RuntimeError("fit() must be called before prediction")

    def predict(
        self, Xs: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optionally standard deviation) at ``Xs``."""
        self._require_fit()
        assert self._X is not None and self._chol is not None and self._alpha is not None
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Ks = self.kernel(Xs, self._X)  # (m, n)
        mean = Ks @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._chol, Ks.T, lower=True)  # (n, m)
        var = self.kernel.variance - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def expected_improvement(self, Xs: np.ndarray, xi: float = 0.01) -> np.ndarray:
        """EI for minimization against the best observed target."""
        from scipy.stats import norm

        self._require_fit()
        mean, std = self.predict(Xs, return_std=True)
        best = float(np.min(self._yn) * self._y_std + self._y_mean)
        improvement = best - mean - xi
        z = improvement / std
        ei = improvement * norm.cdf(z) + std * norm.pdf(z)
        return np.maximum(ei, 0.0)

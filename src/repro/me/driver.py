"""The asynchronous ME driver — Fig 2's pseudocode as a reusable loop.

    for each initial sample: submit the sample for evaluation
    while stopping condition not reached:
        wait for n evaluation results
        re-sample, reorder, re-submit based on results

:func:`run_async_optimization` implements the §VI instantiation: submit
all points, then after every ``batch_completed`` completions retrain /
reorder the remaining queue via a pluggable reprioritizer (local GPR, or
a fabric-wrapped remote one).  It drives real worker pools through the
blocking futures API; the discrete-event variant lives in
:mod:`repro.sim`.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.core.eqsql import EQSQL
from repro.core.futures import Future, as_completed, update_priority
from repro.telemetry.events import EventKind, TraceCollector
from repro.telemetry.journal import EV_COLLECT, EV_SUBMIT, ROLE_ME, get_journal
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracing import get_tracer
from repro.util.serialization import json_dumps, json_loads

#: (X_done, y_done, X_remaining) -> integer priorities for X_remaining.
Reprioritizer = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class ReprioritizationRecord:
    """One reorder step: when it ran and what it touched."""

    time_start: float
    time_stop: float
    n_completed: int
    n_reprioritized: int

    @property
    def duration(self) -> float:
        return self.time_stop - self.time_start


@dataclass
class AsyncOptimizationResult:
    """Outcome of one asynchronous optimization run."""

    X: np.ndarray  # evaluated points, completion order
    y: np.ndarray  # objective values, completion order
    reprioritizations: list[ReprioritizationRecord] = field(default_factory=list)

    @property
    def best_y(self) -> float:
        return float(np.min(self.y))

    @property
    def best_x(self) -> np.ndarray:
        return self.X[int(np.argmin(self.y))]

    def best_trajectory(self) -> np.ndarray:
        """Best objective value after each completion (running min)."""
        return np.minimum.accumulate(self.y)


def decode_result(result: str) -> float:
    """Objective value from a task result payload.

    Accepts the conventional ``{"y": value}`` dict or a bare JSON
    number; raises for failure payloads (``{"error": ...}``).
    """
    value = json_loads(result)
    if isinstance(value, dict):
        if "error" in value:
            raise ValueError(f"task failed: {value['error']}")
        value = value["y"]
    return float(value)


@contextmanager
def _stopping(pusher):
    """Stop a telemetry pusher when the driver loop exits, even on
    error — a leaked heartbeat would keep a dead ME looking live."""
    try:
        yield
    finally:
        if pusher is not None:
            pusher.stop()


def run_async_optimization(
    eqsql: EQSQL,
    exp_id: str,
    work_type: int,
    points: np.ndarray,
    reprioritizer: Reprioritizer | None = None,
    batch_completed: int = 50,
    delay: float = 0.01,
    timeout: float | None = 120.0,
    trace: TraceCollector | None = None,
    telemetry_interval: float | None = None,
) -> AsyncOptimizationResult:
    """Submit ``points`` and drive completions to exhaustion.

    After every ``batch_completed`` results the ``reprioritizer`` (if
    given) recomputes priorities for the still-queued tasks — exactly
    the paper's loop, where "the reprioritization repeats for every new
    50 completed tasks".  ``timeout`` bounds each wait for the next
    batch (worker pools must be running).

    ``telemetry_interval`` (seconds) turns on fleet push telemetry:
    the driver heartbeats progress envelopes (role ``me``, worker id
    ``exp_id``) to the service's ``telemetry`` RPC so ``repro fleet``
    shows the ME alongside the pools.  Ignored against an in-process
    store, which has no service to push to.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    payloads = [json_dumps({"x": list(map(float, p))}) for p in points]
    tracer = get_tracer()
    # Live progress gauges: the monitor's ME-driver view.  Gauge writes
    # are two locked floats per batch — negligible next to the DB round
    # trips in the same loop.
    registry = get_metrics()
    g_total = registry.gauge("me.points_total", "points submitted by the driver")
    g_done = registry.gauge("me.points_completed", "points whose result arrived")
    g_pending = registry.gauge("me.points_pending", "points still queued or running")
    m_repri = registry.counter("me.reprioritizations", "GPR reorder passes applied")
    # The run span is the root of the whole trace: submissions open
    # inside it, so task payloads carry its trace id end to end.
    run_span = tracer.span(
        "driver.run", component="driver", exp_id=exp_id, n_points=len(points)
    )
    journal = get_journal()
    pusher = None
    if telemetry_interval is not None:
        sink = getattr(eqsql.store, "telemetry", None)
        if sink is not None:
            from repro.telemetry.fleet import TelemetryPusher

            pusher = TelemetryPusher(
                worker_id=exp_id,
                role="me",
                sink=sink,
                interval=telemetry_interval,
                envelope_fn=lambda: {
                    "n_workers": 1,
                    "busy_fraction": 1.0 if g_pending.value else 0.0,
                    "owned": int(g_pending.value),
                    "tasks_completed": int(g_done.value),
                },
                clock=eqsql.clock,
            ).start()
    with _stopping(pusher), run_span:
        run_ctx = tracer.current_context()
        run_trace_id = run_ctx.trace_id if run_ctx is not None else ""
        # Stamp before the submit RPC so the record sorts ahead of the
        # DB's enqueue under a shared clock (ids are known only after).
        submitted_at = eqsql.clock.now()
        futures = eqsql.submit_tasks(exp_id, work_type, payloads)
        point_of = {f.eq_task_id: i for i, f in enumerate(futures)}
        if journal.enabled:
            for future in futures:
                journal.emit(
                    EV_SUBMIT, future.eq_task_id, role=ROLE_ME,
                    work_type=work_type, trace_id=run_trace_id,
                    source=exp_id, time=submitted_at,
                )

        pending: list[Future] = list(futures)
        g_total.set(len(futures))
        g_done.set(0)
        g_pending.set(len(pending))
        done_X: list[np.ndarray] = []
        done_y: list[float] = []
        records: list[ReprioritizationRecord] = []

        while pending:
            want = min(batch_completed, len(pending))
            with tracer.span("driver.wait_batch", component="driver", want=want):
                for future in as_completed(
                    pending, pop=True, n=want, delay=delay, timeout=timeout
                ):
                    _, result = future.result(timeout=0)
                    done_X.append(points[point_of[future.eq_task_id]])
                    done_y.append(decode_result(result))
                    if journal.enabled:
                        journal.emit(
                            EV_COLLECT, future.eq_task_id, role=ROLE_ME,
                            work_type=work_type, trace_id=run_trace_id,
                            source=exp_id, time=eqsql.clock.now(),
                        )
            g_done.set(len(done_y))
            g_pending.set(len(pending))
            if reprioritizer is not None and pending:
                t0 = eqsql.clock.now()
                if trace is not None:
                    trace.record(
                        EventKind.PHASE_START, t0, source="reprioritize",
                        detail=str(len(done_y)),
                    )
                with tracer.span(
                    "driver.reprioritize",
                    component="driver",
                    n_completed=len(done_y),
                ) as sp:
                    X_remaining = np.array(
                        [points[point_of[f.eq_task_id]] for f in pending]
                    )
                    priorities = reprioritizer(
                        np.array(done_X), np.array(done_y), X_remaining
                    )
                    n_updated = update_priority(pending, [int(p) for p in priorities])
                    sp.set_attr("n_reprioritized", n_updated)
                m_repri.inc()
                t1 = eqsql.clock.now()
                if trace is not None:
                    trace.record(
                        EventKind.PHASE_STOP, t1, source="reprioritize",
                        detail=str(n_updated),
                    )
                records.append(
                    ReprioritizationRecord(
                        time_start=t0,
                        time_stop=t1,
                        n_completed=len(done_y),
                        n_reprioritized=n_updated,
                    )
                )

    return AsyncOptimizationResult(
        X=np.array(done_X),
        y=np.array(done_y),
        reprioritizations=records,
    )

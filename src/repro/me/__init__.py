"""Model exploration (ME) algorithms (paper §IV-A, §V-B, §VI).

The ME algorithm is OSPREY's "main user interface": scientific logic
that submits tasks through the EQSQL API and reacts to results.  This
package provides the pieces the paper's example workflow uses, all
implemented from scratch:

- benchmark objective functions (:mod:`repro.me.functions`) — the Ackley
  function of §VI with the paper's lognormal runtime padding;
- samplers (:mod:`repro.me.sampling`) — uniform and Latin hypercube;
- Gaussian-process regression (:mod:`repro.me.gpr`) — RBF/Matérn
  kernels, Cholesky solves, marginal-likelihood hyperparameter fitting;
- the GPR reprioritizer (:mod:`repro.me.reprioritizer`) — maps model
  predictions over unevaluated points to task priorities;
- the asynchronous ME driver (:mod:`repro.me.driver`) — the Fig 2 loop:
  submit, wait for the next batch of completions, retrain/reorder.
"""

from repro.me.functions import (
    ackley,
    griewank,
    lognormal_runtime,
    rastrigin,
    rosenbrock,
    sphere,
)
from repro.me.gpr import GaussianProcessRegressor, Matern52Kernel, RBFKernel
from repro.me.reprioritizer import GPRReprioritizer, ranks_to_priorities
from repro.me.sampling import latin_hypercube, uniform_random
from repro.me.driver import AsyncOptimizationResult, run_async_optimization
from repro.me.async_bo import BOConfig, BOResult, run_async_bo
from repro.me.steering import Actions, CompletedTask, Steering, SteeringResult
from repro.me.checkpoint import (
    MECheckpoint,
    drain_resumed,
    latest_checkpoint,
    load_checkpoint,
    resume_futures,
    save_checkpoint,
)

__all__ = [
    "ackley",
    "griewank",
    "rastrigin",
    "rosenbrock",
    "sphere",
    "lognormal_runtime",
    "GaussianProcessRegressor",
    "RBFKernel",
    "Matern52Kernel",
    "GPRReprioritizer",
    "ranks_to_priorities",
    "latin_hypercube",
    "uniform_random",
    "AsyncOptimizationResult",
    "run_async_optimization",
    "BOConfig",
    "BOResult",
    "run_async_bo",
    "Actions",
    "CompletedTask",
    "Steering",
    "SteeringResult",
    "MECheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
    "resume_futures",
    "drain_resumed",
]

"""Event-driven campaign steering (a Colmena-style "thinker").

Related work §III: "Colmena is a Python-based framework designed to
steer computational campaigns by enabling developers to wrap various
fidelity tasks (e.g., simulations) and define functions to select which
tasks to be executed next" — and the paper's §VI example "is based on a
similar example problem provided as part of the Colmena documentation."

:class:`Steering` is that programming model over the EQSQL substrate:
the user registers a ``on_result`` policy that inspects each completed
task and returns actions — submit new tasks, reprioritize, cancel, or
stop the campaign — while the steering loop handles all queue mechanics.
The Fig 2 pseudocode becomes a policy function instead of a hand-written
loop.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.eqsql import EQSQL
from repro.core.futures import Future, as_completed, cancel_futures, update_priority
from repro.util.errors import TimeoutError_
from repro.util.serialization import json_loads


@dataclass
class Actions:
    """What a policy wants done after seeing a result.

    - ``submit``: payload strings for new tasks (optionally with
      priorities aligned to them);
    - ``reprioritize``: priorities for *all currently pending* tasks
      (aligned with :attr:`Steering.pending` order at callback time);
    - ``cancel``: task ids to cancel;
    - ``stop``: end the campaign after processing this result (pending
      tasks are canceled).
    """

    submit: list[str] = field(default_factory=list)
    submit_priorities: int | list[int] = 0
    reprioritize: list[int] | None = None
    cancel: list[int] = field(default_factory=list)
    stop: bool = False


@dataclass
class CompletedTask:
    """What the policy sees for each completion."""

    eq_task_id: int
    payload: Any  # decoded JSON of the submitted payload
    result: Any  # decoded JSON of the result
    index: int  # completion counter (1-based)


#: Policy signature: inspect a completion, return actions (or None).
Policy = Callable[[CompletedTask, "Steering"], Actions | None]


@dataclass
class SteeringResult:
    """Campaign summary."""

    completed: list[CompletedTask]
    n_submitted: int
    n_canceled: int
    stopped_by_policy: bool


class Steering:
    """Run a steered campaign against live worker pools."""

    def __init__(
        self,
        eqsql: EQSQL,
        exp_id: str,
        work_type: int,
        delay: float = 0.01,
        timeout: float | None = 120.0,
    ) -> None:
        self._eqsql = eqsql
        self._exp_id = exp_id
        self._work_type = work_type
        self._delay = delay
        self._timeout = timeout
        self._pending: list[Future] = []
        self._n_submitted = 0
        self._n_canceled = 0

    @property
    def pending(self) -> list[Future]:
        """Futures not yet completed, in submission order."""
        return list(self._pending)

    def submit(self, payloads: list[str], priority: int | list[int] = 0) -> list[Future]:
        """Submit tasks into the campaign (usable before and during)."""
        futures = self._eqsql.submit_tasks(
            self._exp_id, self._work_type, payloads, priority=priority
        )
        self._pending.extend(futures)
        self._n_submitted += len(futures)
        return futures

    def _apply(self, actions: Actions) -> None:
        if actions.cancel:
            victims = [f for f in self._pending if f.eq_task_id in set(actions.cancel)]
            self._n_canceled += cancel_futures(victims)
            self._pending = [f for f in self._pending if not f.cancelled]
        if actions.reprioritize is not None:
            if len(actions.reprioritize) != len(self._pending):
                raise ValueError(
                    f"reprioritize needs {len(self._pending)} priorities, "
                    f"got {len(actions.reprioritize)}"
                )
            update_priority(self._pending, actions.reprioritize)
        if actions.submit:
            self.submit(actions.submit, priority=actions.submit_priorities)

    def run(self, on_result: Policy, max_results: int | None = None) -> SteeringResult:
        """Drive the campaign until pending is exhausted, the policy
        stops it, or ``max_results`` completions arrive."""
        completed: list[CompletedTask] = []
        stopped = False
        while self._pending and not stopped:
            if max_results is not None and len(completed) >= max_results:
                break
            try:
                got = list(
                    as_completed(
                        self._pending, pop=True, n=1,
                        delay=self._delay, timeout=self._timeout,
                    )
                )
            except TimeoutError_:
                raise
            if not got:
                break  # everything left was canceled
            future = got[0]
            _, raw = future.result(timeout=0)
            row = self._eqsql.task_info(future.eq_task_id)
            task = CompletedTask(
                eq_task_id=future.eq_task_id,
                payload=json_loads(row.json_out),
                result=json_loads(raw),
                index=len(completed) + 1,
            )
            completed.append(task)
            actions = on_result(task, self)
            if actions is not None:
                self._apply(actions)
                if actions.stop:
                    stopped = True
        if stopped and self._pending:
            self._n_canceled += cancel_futures(self._pending)
            self._pending = [f for f in self._pending if not f.cancelled]
        return SteeringResult(
            completed=completed,
            n_submitted=self._n_submitted,
            n_canceled=self._n_canceled,
            stopped_by_policy=stopped,
        )

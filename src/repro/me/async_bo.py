"""Asynchronous Bayesian optimization — the complete Fig 2 loop.

The Figure 2 pseudocode is richer than pure reordering: "Re-sample,
reorder, re-submit based on results", and §V-B adds that futures can be
*canceled* ("cancel less promising evaluations").  This driver does all
three:

- after every batch of completions a GPR is refit;
- **re-sample / re-submit**: new candidate points are proposed by
  expected improvement and submitted as fresh tasks;
- **reorder**: still-queued tasks are reprioritized by predicted value;
- **cancel**: queued tasks whose EI falls below a fraction of the best
  queued EI are canceled, freeing worker time for better proposals.

Works against live worker pools through the same blocking futures API
as :func:`repro.me.driver.run_async_optimization`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.eqsql import EQSQL
from repro.core.futures import Future, as_completed, cancel_futures, update_priority
from repro.me.gpr import GaussianProcessRegressor, RBFKernel
from repro.me.reprioritizer import ranks_to_priorities
from repro.me.sampling import uniform_random
from repro.util.serialization import json_dumps, json_loads


@dataclass
class BOConfig:
    """Asynchronous BO hyperparameters.

    ``n_initial`` random points seed the model; the loop continues until
    ``n_total`` evaluations complete.  After every ``batch_completed``
    results, ``proposals_per_round`` EI-selected points are submitted
    (chosen from ``n_candidates`` random candidates), queued tasks are
    reordered, and queued tasks with EI below ``cancel_fraction`` of the
    round's best queued EI are canceled (0 disables cancellation).
    """

    bounds: list[tuple[float, float]] = field(default_factory=list)
    n_initial: int = 20
    n_total: int = 80
    batch_completed: int = 10
    proposals_per_round: int = 5
    n_candidates: int = 512
    cancel_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("bounds must be provided")
        if self.n_initial < 2:
            raise ValueError("n_initial must be >= 2 (the GPR needs data)")
        if self.n_total < self.n_initial:
            raise ValueError("n_total must be >= n_initial")
        if not 0 <= self.cancel_fraction < 1:
            raise ValueError("cancel_fraction must be in [0, 1)")


@dataclass
class BOResult:
    """Outcome of an asynchronous BO run."""

    X: np.ndarray
    y: np.ndarray
    n_submitted: int
    n_canceled: int
    rounds: int

    @property
    def best_y(self) -> float:
        return float(np.min(self.y))

    @property
    def best_x(self) -> np.ndarray:
        return self.X[int(np.argmin(self.y))]

    def best_trajectory(self) -> np.ndarray:
        return np.minimum.accumulate(self.y)


def _payload(point: np.ndarray) -> str:
    return json_dumps({"x": list(map(float, point))})


def run_async_bo(
    eqsql: EQSQL,
    exp_id: str,
    work_type: int,
    config: BOConfig,
    delay: float = 0.01,
    timeout: float | None = 120.0,
) -> BOResult:
    """Drive an asynchronous BO campaign against running worker pools."""
    rng = np.random.default_rng(config.seed)
    bounds = np.asarray(config.bounds, dtype=float)

    initial = uniform_random(rng, config.n_initial, bounds)
    futures = eqsql.submit_tasks(
        exp_id, work_type, [_payload(p) for p in initial]
    )
    point_of: dict[int, np.ndarray] = {
        f.eq_task_id: initial[i] for i, f in enumerate(futures)
    }

    pending: list[Future] = list(futures)
    done_X: list[np.ndarray] = []
    done_y: list[float] = []
    n_submitted = config.n_initial
    n_canceled = 0
    rounds = 0

    def submit_points(points: np.ndarray) -> None:
        nonlocal n_submitted
        new_futures = eqsql.submit_tasks(
            exp_id, work_type, [_payload(p) for p in points]
        )
        for i, future in enumerate(new_futures):
            point_of[future.eq_task_id] = points[i]
        pending.extend(new_futures)
        n_submitted += len(new_futures)

    while len(done_y) < config.n_total:
        if not pending:
            # Cancellation (or a tight budget) drained the queue before
            # the target was reached: top up with random exploration.
            submit_points(
                uniform_random(rng, config.n_total - len(done_y), bounds)
            )
        want = min(config.batch_completed, config.n_total - len(done_y))
        for future in as_completed(pending, pop=True, n=want, delay=delay, timeout=timeout):
            _, result = future.result(timeout=0)
            value = json_loads(result)
            done_X.append(point_of[future.eq_task_id])
            done_y.append(float(value["y"] if isinstance(value, dict) else value))
        if len(done_y) >= config.n_total:
            break
        rounds += 1

        model = GaussianProcessRegressor(
            kernel=RBFKernel(), optimize_hyperparameters=False, noise=1e-6
        )
        model.fit(np.asarray(done_X), np.asarray(done_y))

        # Re-sample: EI over random candidates -> new submissions.  The
        # live budget counts submissions that can still complete.
        live_budget = config.n_total - (n_submitted - n_canceled)
        n_new = min(config.proposals_per_round, max(live_budget, 0))
        if n_new > 0:
            candidates = uniform_random(rng, config.n_candidates, bounds)
            ei = model.expected_improvement(candidates)
            chosen = candidates[np.argsort(-ei)[:n_new]]
            submit_points(chosen)

        if pending:
            X_pending = np.asarray([point_of[f.eq_task_id] for f in pending])
            # Cancel: drop queued tasks whose EI is hopeless.
            if config.cancel_fraction > 0 and len(pending) > 1:
                ei_pending = model.expected_improvement(X_pending)
                threshold = config.cancel_fraction * float(ei_pending.max())
                victims = [
                    f for f, e in zip(pending, ei_pending) if e < threshold
                ]
                if victims:
                    canceled_now = cancel_futures(victims)
                    n_canceled += canceled_now
                    if canceled_now:
                        pending = [f for f in pending if not f.cancelled]
                        X_pending = np.asarray(
                            [point_of[f.eq_task_id] for f in pending]
                        )
            # Reorder: best predicted values run first.
            if len(pending) > 0:
                predicted = model.predict(X_pending)
                priorities = ranks_to_priorities(np.asarray(predicted))
                update_priority(pending, [int(p) for p in priorities])

    return BOResult(
        X=np.asarray(done_X),
        y=np.asarray(done_y),
        n_submitted=n_submitted,
        n_canceled=n_canceled,
        rounds=rounds,
    )

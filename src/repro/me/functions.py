"""Benchmark objective functions.

The paper's example workflow minimizes the Ackley function [25] with "a
lognormally distributed 'sleep' delay ... to increase the otherwise
millisecond runtime and to add task runtime heterogeneity".  All
functions accept a single point (1-D array-like) or a batch (2-D array,
rows are points) and are vectorized over the batch.
"""

from __future__ import annotations

import numpy as np


def _as_batch(x: np.ndarray | list[float]) -> tuple[np.ndarray, bool]:
    arr = np.atleast_2d(np.asarray(x, dtype=float))
    if arr.ndim != 2:
        raise ValueError(f"points must be 1-D or 2-D, got shape {np.shape(x)}")
    return arr, np.asarray(x).ndim == 1


def _ret(values: np.ndarray, single: bool) -> np.ndarray | float:
    return float(values[0]) if single else values


def ackley(
    x: np.ndarray | list[float],
    a: float = 20.0,
    b: float = 0.2,
    c: float = 2 * np.pi,
) -> np.ndarray | float:
    """The Ackley function; global minimum 0 at the origin.

    Highly multimodal away from the origin with a single narrow global
    basin — the standard stress test for surrogate-guided search.
    """
    arr, single = _as_batch(x)
    d = arr.shape[1]
    norm = np.sqrt(np.sum(arr**2, axis=1) / d)
    cos_term = np.sum(np.cos(c * arr), axis=1) / d
    values = -a * np.exp(-b * norm) - np.exp(cos_term) + a + np.e
    return _ret(values, single)


def sphere(x: np.ndarray | list[float]) -> np.ndarray | float:
    """Sum of squares; the easiest convex baseline."""
    arr, single = _as_batch(x)
    return _ret(np.sum(arr**2, axis=1), single)


def rastrigin(x: np.ndarray | list[float]) -> np.ndarray | float:
    """Rastrigin: regular grid of local minima; global minimum 0 at 0."""
    arr, single = _as_batch(x)
    values = 10 * arr.shape[1] + np.sum(arr**2 - 10 * np.cos(2 * np.pi * arr), axis=1)
    return _ret(values, single)


def rosenbrock(x: np.ndarray | list[float]) -> np.ndarray | float:
    """Rosenbrock valley; global minimum 0 at (1, ..., 1).  Needs d >= 2."""
    arr, single = _as_batch(x)
    if arr.shape[1] < 2:
        raise ValueError("rosenbrock needs at least 2 dimensions")
    values = np.sum(
        100.0 * (arr[:, 1:] - arr[:, :-1] ** 2) ** 2 + (1 - arr[:, :-1]) ** 2, axis=1
    )
    return _ret(values, single)


def griewank(x: np.ndarray | list[float]) -> np.ndarray | float:
    """Griewank: many regular local minima; global minimum 0 at 0."""
    arr, single = _as_batch(x)
    d = arr.shape[1]
    sum_term = np.sum(arr**2, axis=1) / 4000.0
    prod_term = np.prod(np.cos(arr / np.sqrt(np.arange(1, d + 1))), axis=1)
    return _ret(sum_term - prod_term + 1, single)


def lognormal_runtime(
    rng: np.random.Generator,
    mean: float = 1.0,
    sigma: float = 0.5,
    size: int | None = None,
) -> np.ndarray | float:
    """Sample task runtimes from a lognormal with the given *mean*.

    The paper pads Ackley evaluations with a lognormal sleep for runtime
    heterogeneity; parameterizing by the distribution mean (not the
    underlying normal's mu) makes scenario configs read naturally:
    ``lognormal_runtime(rng, mean=3.0)`` has expectation 3 seconds.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if sigma < 0:
        raise ValueError("sigma must be nonnegative")
    mu = np.log(mean) - 0.5 * sigma**2
    return rng.lognormal(mean=mu, sigma=sigma, size=size)


#: Registry used by task payloads that name their objective.
FUNCTIONS = {
    "ackley": ackley,
    "sphere": sphere,
    "rastrigin": rastrigin,
    "rosenbrock": rosenbrock,
    "griewank": griewank,
}

"""ME-algorithm checkpoint and resume.

Paper §II-B2c: artifacts such as "model exploration state" must let
"model exploration algorithms ... be easily rerun or continued, either
on the original set of computing resources or different ones."

:class:`MECheckpoint` captures everything an asynchronous optimization
needs to continue: the evaluated points/values, the task ids still
outstanding, and the experiment coordinates.  Stored through an
:class:`repro.data.artifacts.ArtifactManager`, a checkpoint taken on one
resource resumes against the same EMEWS DB from anywhere: outstanding
futures are reconstructed *by task id*, so results reported while the ME
was down are picked up on resume — the DB, not the process, owns the
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.eqsql import EQSQL
from repro.core.futures import Future, as_completed
from repro.data.artifacts import ArtifactManager, ArtifactRecord
from repro.util.errors import InvalidStateError


@dataclass
class MECheckpoint:
    """Serializable model-exploration state."""

    exp_id: str
    work_type: int
    points: np.ndarray  # all submitted points, submission order
    task_ids: list[int]  # aligned with points
    done_task_ids: list[int] = field(default_factory=list)
    done_values: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.task_ids) != len(self.points):
            raise InvalidStateError("task_ids must align with points")
        if len(self.done_task_ids) != len(self.done_values):
            raise InvalidStateError("done ids must align with done values")

    @property
    def n_outstanding(self) -> int:
        return len(self.task_ids) - len(self.done_task_ids)

    def outstanding_ids(self) -> list[int]:
        done = set(self.done_task_ids)
        return [tid for tid in self.task_ids if tid not in done]

    def done_X(self) -> np.ndarray:
        index_of = {tid: i for i, tid in enumerate(self.task_ids)}
        if not self.done_task_ids:
            return np.empty((0, self.points.shape[1]))
        return self.points[[index_of[t] for t in self.done_task_ids]]

    def done_y(self) -> np.ndarray:
        return np.asarray(self.done_values, dtype=float)


def save_checkpoint(
    manager: ArtifactManager,
    checkpoint: MECheckpoint,
    tags: dict | None = None,
) -> ArtifactRecord:
    """Persist a checkpoint (kind ``me-state``)."""
    payload = {
        "exp_id": checkpoint.exp_id,
        "work_type": checkpoint.work_type,
        "points": checkpoint.points,
        "task_ids": list(checkpoint.task_ids),
        "done_task_ids": list(checkpoint.done_task_ids),
        "done_values": list(checkpoint.done_values),
    }
    merged = {"exp_id": checkpoint.exp_id}
    merged.update(tags or {})
    return manager.save(payload, kind="me-state", tags=merged)


def load_checkpoint(manager: ArtifactManager, artifact_id: str) -> MECheckpoint:
    """Materialize a checkpoint saved by :func:`save_checkpoint`."""
    payload = manager.load(artifact_id)
    return MECheckpoint(
        exp_id=payload["exp_id"],
        work_type=payload["work_type"],
        points=np.asarray(payload["points"], dtype=float),
        task_ids=list(payload["task_ids"]),
        done_task_ids=list(payload["done_task_ids"]),
        done_values=list(payload["done_values"]),
    )


def latest_checkpoint(manager: ArtifactManager, exp_id: str) -> MECheckpoint:
    """The newest checkpoint for an experiment."""
    record = manager.latest("me-state", exp_id=exp_id)
    return load_checkpoint(manager, record.artifact_id)


def resume_futures(eqsql: EQSQL, checkpoint: MECheckpoint) -> list[Future]:
    """Rebuild futures for the checkpoint's outstanding tasks.

    Futures are identity-bound to task ids, so results that landed on
    the input queue while the ME algorithm was down resolve immediately.
    """
    return [
        Future(eqsql, tid, checkpoint.work_type, exp_id=checkpoint.exp_id)
        for tid in checkpoint.outstanding_ids()
    ]


def drain_resumed(
    eqsql: EQSQL,
    checkpoint: MECheckpoint,
    delay: float = 0.01,
    timeout: float | None = 120.0,
) -> MECheckpoint:
    """Continue a checkpointed run to completion (no reordering).

    Returns a new, fully-completed checkpoint; the caller extracts
    ``done_X()`` / ``done_y()`` for analysis.  Reordering-aware
    continuation composes from :func:`resume_futures` plus the usual
    driver pieces.
    """
    from repro.util.serialization import json_loads

    futures = resume_futures(eqsql, checkpoint)
    done_ids = list(checkpoint.done_task_ids)
    done_values = list(checkpoint.done_values)
    for future in as_completed(futures, delay=delay, timeout=timeout):
        _, raw = future.result(timeout=0)
        value = json_loads(raw)
        done_ids.append(future.eq_task_id)
        done_values.append(float(value["y"] if isinstance(value, dict) else value))
    return MECheckpoint(
        exp_id=checkpoint.exp_id,
        work_type=checkpoint.work_type,
        points=checkpoint.points,
        task_ids=checkpoint.task_ids,
        done_task_ids=done_ids,
        done_values=done_values,
    )

"""GPR-based task reprioritization (paper §VI).

"We train a GPR using the results, and reorder the evaluation of the
remaining tasks, increasing the priority of those more likely to find an
optimal result according to the GPR."

:class:`GPRReprioritizer` is a plain callable — (completed X, completed
y, remaining X) → integer priorities — so it can run locally or be
shipped through the compute fabric to a GPU site, as the paper does with
Theta/Midway2.  Priorities follow the paper's convention: ranks
``1..n``, higher number = higher priority, best predicted point highest.
"""

from __future__ import annotations

import numpy as np

from repro.me.gpr import GaussianProcessRegressor, RBFKernel


def ranks_to_priorities(scores: np.ndarray) -> np.ndarray:
    """Map scores (lower = more promising, minimization) to priorities.

    Returns integer priorities ``1..n`` where the lowest score receives
    ``n`` (executed first) — the paper's "700 uncompleted tasks are
    reprioritized with new priorities of 1-700" scheme.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    n = scores.shape[0]
    order = np.argsort(scores)  # ascending: best first
    priorities = np.empty(n, dtype=int)
    priorities[order] = np.arange(n, 0, -1)
    return priorities


class GPRReprioritizer:
    """Fit a GPR on completed evaluations; rank the remaining points."""

    def __init__(
        self,
        kernel_lengthscale: float = 1.0,
        noise: float = 1e-4,
        optimize_hyperparameters: bool = True,
        max_train: int | None = None,
        seed: int = 0,
    ) -> None:
        """``max_train`` caps the training set (most recent points win)
        to bound the O(n^3) fit as completions accumulate."""
        self._lengthscale = kernel_lengthscale
        self._noise = noise
        self._optimize = optimize_hyperparameters
        self._max_train = max_train
        self._seed = seed
        self.fit_count = 0
        self.last_model: GaussianProcessRegressor | None = None

    def __call__(
        self,
        X_done: np.ndarray,
        y_done: np.ndarray,
        X_remaining: np.ndarray,
    ) -> np.ndarray:
        """Integer priorities for ``X_remaining`` (higher runs sooner)."""
        X_done = np.atleast_2d(np.asarray(X_done, dtype=float))
        y_done = np.asarray(y_done, dtype=float).ravel()
        X_remaining = np.atleast_2d(np.asarray(X_remaining, dtype=float))
        if X_remaining.shape[0] == 0:
            return np.empty(0, dtype=int)
        if self._max_train is not None and X_done.shape[0] > self._max_train:
            X_done = X_done[-self._max_train :]
            y_done = y_done[-self._max_train :]
        model = GaussianProcessRegressor(
            kernel=RBFKernel(lengthscale=self._lengthscale),
            noise=self._noise,
            optimize_hyperparameters=self._optimize,
            seed=self._seed,
        )
        model.fit(X_done, y_done)
        predicted = model.predict(X_remaining)
        self.fit_count += 1
        self.last_model = model
        return ranks_to_priorities(np.asarray(predicted))

"""OSPREY reproduction: distributed HPC workflow capabilities for
robust epidemic analysis.

This package reproduces the system described in Collier et al.,
"Developing Distributed High-performance Computing Capabilities of an
Open Science Platform for Robust Epidemic Analysis" (ParSocial/IPDPS-W
2023): the EQSQL asynchronous task API over the EMEWS database, worker
pools with the batch/threshold fetch discipline, a federated compute
fabric, the ProxyStore/Globus data sharing path, cluster scheduling,
the GPR-reprioritized optimization workflow of its evaluation — and
discrete-event scenario models that regenerate the paper's figures.

Quickstart::

    from repro import init_eqsql, PoolConfig, PythonTaskHandler, ThreadedWorkerPool
    from repro.core import as_completed

    eq = init_eqsql()
    futures = eq.submit_tasks("exp", 0, ['{"x": 1}', '{"x": 2}'])
    pool = ThreadedWorkerPool(
        eq, PythonTaskHandler(lambda d: {"y": d["x"] ** 2}),
        PoolConfig(work_type=0, n_workers=2),
    ).start()
    for f in as_completed(futures, timeout=10):
        print(f.result(timeout=0))
    pool.stop()

See DESIGN.md for the architecture map and EXPERIMENTS.md for the
figure-by-figure reproduction results.
"""

from repro.core import (
    EQSQL,
    EQ_ABORT,
    EQ_STOP,
    Future,
    RemoteTaskStore,
    ResultStatus,
    TaskService,
    TaskStatus,
    as_completed,
    cancel_futures,
    init_eqsql,
    pop_completed,
    update_priority,
)
from repro.pools import (
    AppTaskHandler,
    ParTaskHandler,
    PoolConfig,
    PythonTaskHandler,
    ThreadedWorkerPool,
    run_mpi_pool,
)

__version__ = "0.1.0"

__all__ = [
    "EQSQL",
    "EQ_ABORT",
    "EQ_STOP",
    "Future",
    "RemoteTaskStore",
    "ResultStatus",
    "TaskService",
    "TaskStatus",
    "as_completed",
    "cancel_futures",
    "init_eqsql",
    "pop_completed",
    "update_priority",
    "PoolConfig",
    "PythonTaskHandler",
    "AppTaskHandler",
    "ParTaskHandler",
    "ThreadedWorkerPool",
    "run_mpi_pool",
    "__version__",
]

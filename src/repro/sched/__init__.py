"""Cluster scheduler substrate (Slurm/PBS stand-in).

Worker pools in the paper run as *pilot jobs* submitted to HPC batch
schedulers; Figure 4 explicitly notes pools "do not immediately start
consuming tasks ... due to delays between submitting a worker pool job
to Bebop and it actually beginning".  This package supplies that
behaviour: a :class:`Cluster` of nodes, a :class:`Scheduler` running
FIFO dispatch with EASY backfill, a pluggable queue-delay model for
multi-user contention, and walltime enforcement.

The real-time scheduler here drives examples and the fabric's
:class:`~repro.fabric.providers.SchedulerProvider`; the discrete-event
reproduction of Figure 4 uses the same queue-delay model under virtual
time (:mod:`repro.sim`).
"""

from repro.sched.cluster import Cluster, ClusterSpec
from repro.sched.job import Job, JobState
from repro.sched.scheduler import QueueDelayModel, Scheduler

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Job",
    "JobState",
    "Scheduler",
    "QueueDelayModel",
]

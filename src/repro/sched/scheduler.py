"""FIFO + EASY-backfill scheduler with a queue-delay model.

Dispatch policy:

1. Jobs are considered in submission order (FIFO).
2. The head job starts as soon as it is *eligible* (its modelled queue
   delay has elapsed) and enough nodes are free.
3. While the head job waits for nodes, later eligible jobs may
   *backfill* if starting them cannot delay the head job: either they
   finish (by requested walltime) before the head's shadow start time,
   or enough nodes remain at the shadow time anyway — the EASY-backfill
   rule.

The queue-delay model stands in for everything this simulation does not
model (other users, priority aging, fair-share): a callable mapping a
job to a minimum pending time.  Figure 4's staggered pool starts come
from exactly this delay.
"""

from __future__ import annotations

import threading
import traceback
from collections.abc import Callable
from typing import Any

from repro.sched.cluster import Cluster
from repro.sched.job import Job, JobState
from repro.util.clock import Clock, SystemClock
from repro.util.errors import NotFoundError, SchedulerError

#: Maps a job to its modelled queue delay in seconds.
QueueDelayModel = Callable[[Job], float]


def no_delay(_job: Job) -> float:
    """The empty-cluster queue-delay model."""
    return 0.0


class Scheduler:
    """Real-time batch scheduler over a :class:`Cluster`.

    Jobs' ``fn`` bodies run on daemon threads (pilot jobs).  A watchdog
    enforces requested walltime: a job still running at its limit is
    marked TIMEOUT and its nodes are reclaimed (the thread's eventual
    return is ignored), matching how a batch system kills overrunning
    allocations.
    """

    def __init__(
        self,
        cluster: Cluster,
        clock: Clock | None = None,
        queue_delay: QueueDelayModel = no_delay,
        tick: float = 0.01,
    ) -> None:
        self._cluster = cluster
        self._clock = clock if clock is not None else SystemClock()
        self._queue_delay = queue_delay
        self._tick = tick
        self._lock = threading.Lock()
        self._pending: list[Job] = []
        self._running: dict[int, Job] = {}
        self._jobs: dict[int, Job] = {}
        self._next_id = 1
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Scheduler":
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._thread = threading.Thread(
            target=self._loop, name=f"sched-{self._cluster.name}", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop dispatching.  Pending jobs are cancelled; running jobs
        are left to finish (their completion is still recorded)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        with self._lock:
            for job in self._pending:
                job.state = JobState.CANCELLED
                job.end_time = self._clock.now()
                job._done.set()
            self._pending.clear()

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        fn: Callable[[], Any],
        nodes: int = 1,
        walltime: float = 3600.0,
        name: str = "job",
    ) -> Job:
        """Queue a pilot job; returns its :class:`Job` handle."""
        if walltime <= 0:
            raise SchedulerError("walltime must be positive")
        if nodes > self._cluster.spec.n_nodes:
            raise SchedulerError(
                f"job requests {nodes} nodes; cluster has {self._cluster.spec.n_nodes}"
            )
        with self._lock:
            now = self._clock.now()
            job = Job(
                job_id=self._next_id,
                name=name,
                nodes=nodes,
                walltime=walltime,
                fn=fn,
                submit_time=now,
            )
            job.eligible_time = now + max(0.0, self._queue_delay(job))
            self._next_id += 1
            self._jobs[job.job_id] = job
            self._pending.append(job)
            return job

    def cancel(self, job_id: int) -> bool:
        """Cancel a pending job; running jobs cannot be cancelled."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise NotFoundError(f"unknown job {job_id}")
            if job.state != JobState.PENDING:
                return False
            self._pending.remove(job)
            job.state = JobState.CANCELLED
            job.end_time = self._clock.now()
            job._done.set()
            return True

    def job(self, job_id: int) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise NotFoundError(f"unknown job {job_id}")
            return job

    def queue_length(self) -> int:
        with self._lock:
            return len(self._pending)

    def running_count(self) -> int:
        with self._lock:
            return len(self._running)

    # -- dispatch loop ---------------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._dispatch_once()
            self._clock.sleep(self._tick)

    def _dispatch_once(self) -> None:
        now = self._clock.now()
        with self._lock:
            self._enforce_walltime(now)
            if not self._pending:
                return
            eligible = [j for j in self._pending if now >= j.eligible_time]
            if not eligible:
                return
            head = self._pending[0]
            started: list[Job] = []
            if head in eligible and self._cluster.try_allocate(head.nodes):
                started.append(head)
            elif head in eligible:
                # Head blocked on nodes: EASY backfill among the rest.
                shadow = self._shadow_start_time(head, now)
                free_at_shadow = self._free_nodes_at(shadow, now)
                for job in eligible:
                    if job is head:
                        continue
                    safe = (
                        now + job.walltime <= shadow
                        or free_at_shadow - job.nodes >= head.nodes
                    )
                    if safe and self._cluster.try_allocate(job.nodes):
                        started.append(job)
                        if now + job.walltime > shadow:
                            free_at_shadow -= job.nodes
            else:
                # Head not yet eligible; dispatch other eligible jobs FIFO.
                for job in eligible:
                    if self._cluster.try_allocate(job.nodes):
                        started.append(job)
            for job in started:
                self._pending.remove(job)
                self._start_locked(job, now)

    def _shadow_start_time(self, head: Job, now: float) -> float:
        """Earliest time the head job could start, assuming running jobs
        end at their walltime limits (the EASY reservation)."""
        free = self._cluster.free_nodes()
        if free >= head.nodes:
            return now
        releases = sorted(
            ((j.start_time or now) + j.walltime, j.nodes)
            for j in self._running.values()
        )
        for end, nodes in releases:
            free += nodes
            if free >= head.nodes:
                return end
        return float("inf")

    def _free_nodes_at(self, t: float, now: float) -> int:
        """Free nodes at time ``t`` given current running jobs' limits."""
        free = self._cluster.free_nodes()
        for j in self._running.values():
            if (j.start_time or now) + j.walltime <= t:
                free += j.nodes
        return free

    def _enforce_walltime(self, now: float) -> None:
        for job in list(self._running.values()):
            assert job.start_time is not None
            if now - job.start_time > job.walltime:
                del self._running[job.job_id]
                job.state = JobState.TIMEOUT
                job.end_time = now
                job.error = f"walltime limit {job.walltime}s exceeded"
                self._cluster.release(job.nodes)
                job._done.set()

    def _start_locked(self, job: Job, now: float) -> None:
        job.state = JobState.RUNNING
        job.start_time = now
        self._running[job.job_id] = job
        thread = threading.Thread(
            target=self._run_job,
            args=(job,),
            name=f"pilot-{self._cluster.name}-{job.job_id}",
            daemon=True,
        )
        thread.start()

    def _run_job(self, job: Job) -> None:
        try:
            assert job.fn is not None
            result = job.fn()
            error = None
        except Exception:  # noqa: BLE001 - recorded on the job
            result = None
            error = traceback.format_exc()
        with self._lock:
            if job.job_id not in self._running:
                return  # already timed out; nodes reclaimed by watchdog
            del self._running[job.job_id]
            job.end_time = self._clock.now()
            if error is None:
                job.state = JobState.COMPLETED
                job.result = result
            else:
                job.state = JobState.FAILED
                job.error = error
            self._cluster.release(job.nodes)
            job._done.set()

"""Batch jobs."""

from __future__ import annotations

import enum
import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any


class JobState(enum.Enum):
    """Batch job lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    def is_terminal(self) -> bool:
        return self not in (JobState.PENDING, JobState.RUNNING)


@dataclass
class Job:
    """One batch job.

    ``fn`` is the pilot-job body: called as ``fn()`` when the scheduler
    starts the job.  ``walltime`` is the requested limit in seconds —
    used both for backfill planning and for timeout enforcement.
    """

    job_id: int
    name: str
    nodes: int
    walltime: float
    fn: Callable[[], Any] | None = None
    submit_time: float = 0.0
    eligible_time: float = 0.0  # submit_time + queue-delay-model wait
    start_time: float | None = None
    end_time: float | None = None
    state: JobState = JobState.PENDING
    result: Any = None
    error: str | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def queue_wait(self) -> float | None:
        """Seconds from submission to start (the Fig 4 pool start lag)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

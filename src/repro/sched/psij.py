"""PSI/J-style portable job interaction layer (paper §VII future work).

"...expand the funcX capabilities for more robust interactions with HPC
schedulers, including active monitoring and termination of worker pools,
through the PSI/J library."

PSI/J's contribution is a *portable* job API over heterogeneous batch
systems: one :class:`JobSpec`, one :class:`JobExecutor` interface,
status callbacks instead of polling, and uniform cancel/terminate.  This
module provides that layer over :class:`repro.sched.Scheduler` — and,
because the interface is the abstraction, over anything else a deployer
plugs in:

- :class:`JobSpec` — scheduler-agnostic resource request;
- :class:`JobHandle` — live status, attach callbacks, wait, cancel;
- :class:`LocalSchedulerExecutor` — the binding to this repo's cluster
  scheduler, including the active monitoring thread that fires
  callbacks on every state transition;
- :func:`managed_pool_job` — the paper's use case: launch a worker pool
  as a monitored job and terminate it by name.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.sched.job import Job, JobState
from repro.sched.scheduler import Scheduler
from repro.util.errors import InvalidStateError, NotFoundError

#: Callback signature: (handle, new_state).
StatusCallback = Callable[["JobHandle", JobState], None]


@dataclass(frozen=True)
class JobSpec:
    """Portable batch-job request (the PSI/J ``JobSpec`` shape)."""

    name: str = "job"
    nodes: int = 1
    walltime: float = 3600.0
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.walltime <= 0:
            raise ValueError("walltime must be positive")


class JobHandle:
    """A submitted job with active status monitoring."""

    def __init__(self, spec: JobSpec, native: Job, executor: "LocalSchedulerExecutor") -> None:
        self.spec = spec
        self._native = native
        self._executor = executor
        self._lock = threading.Lock()
        self._callbacks: list[StatusCallback] = []
        self._last_state = native.state

    @property
    def job_id(self) -> int:
        """The native scheduler's job id."""
        return self._native.job_id

    @property
    def state(self) -> JobState:
        return self._native.state

    @property
    def native(self) -> Job:
        """The underlying scheduler job (queue wait, result, error)."""
        return self._native

    def on_status(self, callback: StatusCallback) -> None:
        """Register a callback fired on every state transition.

        If the job already changed state, the callback fires immediately
        with the current state (no transitions are missable).
        """
        fire_now = False
        with self._lock:
            self._callbacks.append(callback)
            if self._native.state != JobState.PENDING:
                fire_now = True
        if fire_now:
            callback(self, self._native.state)

    def _notify(self, state: JobState) -> None:
        with self._lock:
            if state == self._last_state:
                return
            self._last_state = state
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(self, state)

    def wait(self, timeout: float | None = None) -> JobState:
        """Block until terminal; returns the final state."""
        if not self._native.wait(timeout):
            raise TimeoutError(f"job {self.job_id} not terminal after {timeout}s")
        return self._native.state

    def cancel(self) -> bool:
        """Cancel if still pending (uniform cancel semantics)."""
        return self._executor.cancel(self)


class LocalSchedulerExecutor:
    """PSI/J executor bound to a :class:`repro.sched.Scheduler`.

    A monitor thread watches every submitted job and fires status
    callbacks on transitions — the "active monitoring" capability the
    paper plans to gain from PSI/J.
    """

    def __init__(self, scheduler: Scheduler, poll: float = 0.01) -> None:
        self._scheduler = scheduler
        self._poll = poll
        self._lock = threading.Lock()
        self._handles: dict[int, JobHandle] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "LocalSchedulerExecutor":
        if self._thread is not None:
            raise InvalidStateError("executor already started")
        self._thread = threading.Thread(
            target=self._monitor, name="psij-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "LocalSchedulerExecutor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def submit(self, spec: JobSpec, fn: Callable[[], Any]) -> JobHandle:
        """Submit ``fn`` under ``spec``; returns a monitored handle."""
        native = self._scheduler.submit(
            fn, nodes=spec.nodes, walltime=spec.walltime, name=spec.name
        )
        handle = JobHandle(spec, native, self)
        with self._lock:
            self._handles[native.job_id] = handle
        return handle

    def cancel(self, handle: JobHandle) -> bool:
        return self._scheduler.cancel(handle.job_id)

    def job(self, job_id: int) -> JobHandle:
        with self._lock:
            handle = self._handles.get(job_id)
        if handle is None:
            raise NotFoundError(f"executor does not manage job {job_id}")
        return handle

    def active_jobs(self) -> list[JobHandle]:
        """Handles not yet in a terminal state."""
        with self._lock:
            return [
                h for h in self._handles.values() if not h.state.is_terminal()
            ]

    def _monitor(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                handles = list(self._handles.values())
            for handle in handles:
                handle._notify(handle.state)
            # Drop terminal handles that have delivered their callbacks.
            with self._lock:
                for job_id in [
                    jid
                    for jid, h in self._handles.items()
                    if h.state.is_terminal() and h._last_state == h.state
                ]:
                    del self._handles[job_id]
            self._stop.wait(self._poll)


def managed_pool_job(
    executor: LocalSchedulerExecutor,
    eqsql,
    handler,
    pool_config,
    spec: JobSpec | None = None,
):
    """Launch a worker pool as a monitored pilot job (paper use case).

    Returns ``(handle, stop)`` where ``stop()`` terminates the pool —
    the "termination of worker pools" capability.  The pool runs inside
    the job's body and drains when stopped; the job then completes.
    """
    from repro.pools.pool import ThreadedWorkerPool

    pool = ThreadedWorkerPool(eqsql, handler, pool_config)
    done = threading.Event()

    def body():
        pool.start()
        done.wait()
        pool.stop()
        return pool.tasks_completed

    spec = spec if spec is not None else JobSpec(name=f"pool-{pool_config.name}")
    handle = executor.submit(spec, body)

    def stop() -> None:
        done.set()

    return handle, stop

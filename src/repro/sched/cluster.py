"""Cluster resource model."""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster partition.

    Mirrors the paper's testbed at whatever scale an example needs,
    e.g. ``ClusterSpec("bebop", n_nodes=3, cores_per_node=36)`` — Fig 3
    runs one pool on "a single 36 core compute node on Bebop".
    """

    name: str
    n_nodes: int
    cores_per_node: int = 36

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node


class Cluster:
    """Node-count accounting for a cluster (thread-safe)."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._free = spec.n_nodes

    @property
    def name(self) -> str:
        return self.spec.name

    def free_nodes(self) -> int:
        with self._lock:
            return self._free

    def try_allocate(self, nodes: int) -> bool:
        """Claim ``nodes`` nodes if available; False otherwise."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if nodes > self.spec.n_nodes:
            raise ValueError(
                f"job requests {nodes} nodes; cluster {self.name!r} has "
                f"{self.spec.n_nodes}"
            )
        with self._lock:
            if self._free >= nodes:
                self._free -= nodes
                return True
            return False

    def release(self, nodes: int) -> None:
        """Return nodes to the free pool."""
        with self._lock:
            if self._free + nodes > self.spec.n_nodes:
                raise ValueError("releasing more nodes than were allocated")
            self._free += nodes

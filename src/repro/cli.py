"""Command-line interface: regenerate the paper's figures and sweeps.

Usage::

    python -m repro fig3 [--tasks N] [--seed S]
    python -m repro fig4 [--tasks N] [--seed S]
    python -m repro sweep-batch
    python -m repro sweep-threshold
    python -m repro gpr-ablation
    python -m repro trace [--tasks N] [--out trace.json] [--spans spans.jsonl]
    python -m repro metrics [--tasks N]
    python -m repro chaos [--tasks N] [--sever-rate R] [--kill-pool]
    python -m repro monitor URL [--interval S] [--once] [--json]
    python -m repro timeline TASK_ID --journal FILE [--journal FILE ...]
    python -m repro stragglers URL [--interval S] [--once] [--json]
    python -m repro bench [NAME ...] [--smoke] [--baseline FILE]

Every command prints the same text series the benchmark harness writes
to ``benchmarks/reports/``, so a user can eyeball the reproduced figures
without running pytest.  ``trace`` runs a fully instrumented ME →
service → pool workload and exports the spans (Chrome ``trace_event``
JSON for Perfetto, optional JSONL, and a latency-breakdown table);
``metrics`` runs the same workload and prints the always-on counter /
histogram registry; ``chaos`` runs the workload through a
fault-injecting TCP proxy (random severs, optional mid-batch pool
kill) and verifies zero lost or duplicated results; ``monitor`` renders
a live terminal view of a running service's ``/status`` endpoint;
``timeline`` merges flight-recorder journal files from any number of
roles into one task's causally-ordered lifecycle; ``stragglers`` is the
live view over a service's ``/events`` route; and ``bench`` runs the
benchmark-regression harness (see :mod:`repro.bench`).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.sim import Fig3Config, Fig4Config, run_fig3_panel, run_fig4
from repro.sim.scenarios import FIG3_PANELS
from repro.telemetry import ascii_chart, render_table, sample_series


def _cmd_fig3(args: argparse.Namespace) -> int:
    print(f"Figure 3 — one 33-worker pool, {args.tasks} tasks, three fetch policies\n")
    rows = []
    for batch, threshold in FIG3_PANELS:
        config = Fig3Config(
            batch_size=batch, threshold=threshold, n_tasks=args.tasks, seed=args.seed
        )
        result = run_fig3_panel(config)
        _, values = sample_series(result.series, n_samples=100)
        print(ascii_chart(values, max_value=config.n_workers, width=80,
                          label=f"{config.label():24s}"))
        rows.append(
            [config.label(), result.stats["utilization"],
             result.stats["full_fraction"], result.stats["dip_depth_mean"],
             result.n_fetches, result.makespan]
        )
    print()
    print(render_table(
        ["policy", "utilization", "full_frac", "dip_depth", "fetches", "makespan"],
        rows,
    ))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    config = Fig4Config(n_tasks=args.tasks, seed=args.seed)
    result = run_fig4(config)
    print(
        f"Figure 4 — {args.tasks} tasks, 3 pools x {config.n_workers} workers, "
        f"GPR repri every {config.repri_every} (makespan {result.makespan:.0f} s)\n"
    )
    for name in result.pool_names:
        _, values = sample_series(result.pool_series[name], n_samples=100)
        print(ascii_chart(values, max_value=config.n_workers, width=80, label=name))
    print()
    print(render_table(
        ["pool", "submitted", "started", "queue wait", "tasks"],
        [
            [name, *result.pool_timing[name],
             result.pool_timing[name][1] - result.pool_timing[name][0],
             result.pool_completed[name]]
            for name in result.pool_names
        ],
    ))
    print()
    print(render_table(
        ["repri#", "start", "duration", "completed", "reprioritized"],
        [
            [r.index, r.time_start, r.time_stop - r.time_start,
             r.n_completed, r.n_reprioritized]
            for r in result.reprioritizations
        ],
    ))
    return 0


def _cmd_sweep_batch(args: argparse.Namespace) -> int:
    print("Batch-size sweep (33 workers, threshold 1)\n")
    rows = []
    for batch in (33, 38, 43, 50, 66):
        result = run_fig3_panel(
            Fig3Config(batch_size=batch, threshold=1, n_tasks=args.tasks, seed=args.seed)
        )
        rows.append([batch, result.stats["utilization"],
                     result.stats["full_fraction"], batch - 33, result.makespan])
    print(render_table(
        ["batch", "utilization", "full_frac", "cache surplus", "makespan"], rows))
    return 0


def _cmd_sweep_threshold(args: argparse.Namespace) -> int:
    print("Threshold sweep (33 workers, batch 33)\n")
    rows = []
    for threshold in (1, 5, 10, 15, 25, 33):
        result = run_fig3_panel(
            Fig3Config(batch_size=33, threshold=threshold, n_tasks=args.tasks,
                       seed=args.seed)
        )
        rows.append([threshold, result.stats["utilization"],
                     result.stats["dip_depth_mean"], result.n_fetches,
                     result.makespan])
    print(render_table(
        ["threshold", "utilization", "dip_depth", "fetches", "makespan"], rows))
    return 0


def _cmd_gpr_ablation(args: argparse.Namespace) -> int:
    print("GPR reprioritization ablation\n")
    with_gpr = run_fig4(Fig4Config(n_tasks=args.tasks, seed=args.seed))
    without = run_fig4(
        Fig4Config(n_tasks=args.tasks, seed=args.seed, repri_every=10_000_000)
    )
    traj_gpr = with_gpr.best_trajectory()
    traj_none = without.best_trajectory()
    print(ascii_chart(traj_gpr, width=80, label="best-so-far (GPR) "))
    print(ascii_chart(traj_none, width=80, label="best-so-far (none)"))
    print()
    print(render_table(
        ["variant", "mean best-so-far", "final best", "repri count"],
        [
            ["GPR", float(np.mean(traj_gpr)), float(traj_gpr[-1]),
             len(with_gpr.reprioritizations)],
            ["none", float(np.mean(traj_none)), float(traj_none[-1]), 0],
        ],
    ))
    return 0


def _run_instrumented_workload(n_tasks: int, n_workers: int) -> None:
    """Drive tasks through the full ME → service → pool pipeline.

    The workload crosses the real service wire (TCP loopback) so the
    RTT decomposition — client RPC spans on one side, service/DB spans
    on the other — appears in the trace, and runs a threaded pool with
    an in-process Python handler.  Uses whatever global tracer/metrics
    are installed; callers configure those first.
    """
    import json

    from repro.core.constants import EQ_STOP
    from repro.core.eqsql import EQSQL
    from repro.core.futures import as_completed
    from repro.core.service import TaskService
    from repro.core.service_client import RemoteTaskStore
    from repro.db.memory_backend import MemoryTaskStore
    from repro.pools.config import PoolConfig
    from repro.pools.handlers import PythonTaskHandler
    from repro.pools.pool import ThreadedWorkerPool
    from repro.telemetry.tracing import get_tracer

    tracer = get_tracer()
    service = TaskService(MemoryTaskStore()).start()
    host, port = service.address
    remote = RemoteTaskStore(host, port)
    eq = EQSQL(remote, clock=tracer.clock)
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(lambda params: {"y": params["x"] ** 2}),
        PoolConfig(
            work_type=0,
            n_workers=n_workers,
            batch_size=n_workers,
            threshold=1,
            name="trace-pool",
            poll_delay=0.005,
        ),
    )
    try:
        with tracer.span("driver.run", component="driver", n_tasks=n_tasks):
            futures = eq.submit_tasks(
                "trace-demo", 0, [json.dumps({"x": x}) for x in range(n_tasks)]
            )
            pool.start()
            with tracer.span("driver.wait_batch", component="driver"):
                for future in as_completed(futures, timeout=60):
                    future.result(timeout=0)
            stop = eq.submit_task("trace-demo", 0, EQ_STOP, priority=-100)
            stop.result(timeout=15, delay=0.01)
        pool.join(timeout=15)
    finally:
        remote.close()
        service.stop()


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.metrics import MetricsRegistry, set_metrics
    from repro.telemetry.trace_export import (
        render_latency_breakdown,
        save_chrome_trace,
        save_spans,
    )
    from repro.telemetry.tracing import Tracer, set_tracer
    from repro.util.clock import SystemClock

    # One clock instance shared by the tracer and (via EQSQL) every
    # component timestamp, so retroactive spans align with live ones.
    tracer = Tracer(clock=SystemClock(), enabled=True)
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(MetricsRegistry())
    try:
        _run_instrumented_workload(args.tasks, args.workers)
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)

    events = save_chrome_trace(tracer, args.out)
    print(
        f"traced {args.tasks} tasks: {len(tracer)} spans across "
        f"{len(tracer.components())} components "
        f"({', '.join(sorted(tracer.components()))})"
    )
    print(f"chrome trace ({events} events) -> {args.out}  "
          f"[open in Perfetto / about:tracing]")
    if args.spans is not None:
        count = save_spans(tracer, args.spans)
        print(f"span JSONL ({count} spans) -> {args.spans}")
    print()
    print("latency breakdown (per component/operation, total time desc):\n")
    print(render_latency_breakdown(tracer))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the full pipeline through a fault-injecting proxy.

    Everything the resilience layer claims is exercised at once: the
    ME and the pool talk to the service through a :class:`ChaosProxy`
    that randomly severs connections (plus periodic sever-all storms),
    tasks are claimed under leases, the service runs a lease reaper,
    and (with ``--kill-pool``) the first pool is killed mid-batch and a
    replacement picks up the reaped tasks.  Exits non-zero if any
    result was lost or duplicated.
    """
    import json
    import random
    import time

    from repro.core.constants import TaskStatus
    from repro.core.eqsql import EQSQL
    from repro.core.service import TaskService
    from repro.core.service_client import RemoteTaskStore, RetryPolicy
    from repro.db.memory_backend import MemoryTaskStore
    from repro.pools.config import PoolConfig
    from repro.pools.handlers import PythonTaskHandler
    from repro.pools.pool import ThreadedWorkerPool
    from repro.telemetry.metrics import MetricsRegistry, set_metrics
    from repro.testing.chaos import ChaosProxy

    registry = MetricsRegistry()
    previous_metrics = set_metrics(registry)
    rng = random.Random(args.seed)
    retry = RetryPolicy(max_attempts=12, base_delay=0.02, max_delay=0.25)
    final_status: dict = {}

    def make_pool(name: str, eq: EQSQL) -> ThreadedWorkerPool:
        return ThreadedWorkerPool(
            eq,
            PythonTaskHandler(
                lambda params: (time.sleep(0.02), {"y": params["x"] ** 2})[1]
            ),
            PoolConfig(
                work_type=0,
                n_workers=args.workers,
                # Oversubscribe so a killed pool abandons claimed-but-
                # unstarted tasks — the lease reaper's job to recover.
                batch_size=args.workers * 2,
                threshold=1,
                name=name,
                poll_delay=0.005,
                lease_duration=args.lease,
            ),
        )

    # status_port=0 embeds the monitoring endpoint on an ephemeral
    # port; the final report below reads queue/lease state from its
    # /status JSON — the same payload `repro monitor` renders live.
    service = TaskService(
        MemoryTaskStore(metrics=registry),
        lease_reaper_interval=args.lease / 4,
        metrics=registry,
        status_port=0,
        sampler_interval=0.25,
    ).start()
    proxy = ChaosProxy(*service.address, rng=rng).start()
    host, port = proxy.address
    me_store = RemoteTaskStore(host, port, retry=retry, rng=rng)
    pool_store = RemoteTaskStore(host, port, retry=retry, rng=rng)
    me = EQSQL(me_store)
    pools = [make_pool("chaos-pool-1", EQSQL(pool_store))]
    lost = duplicated = severed_storms = 0
    killed = False
    try:
        # Submission runs clean: create_tasks is non-idempotent, so a
        # real ME would not blind-retry it (see DESIGN.md).  The chaos
        # window covers claiming, execution, reporting, and collection.
        futures = me.submit_tasks(
            "chaos-demo", 0, [json.dumps({"x": x}) for x in range(args.tasks)]
        )
        task_ids = [f.eq_task_id for f in futures]
        pools[0].start()
        proxy.set_sever_rate(args.sever_rate)
        deadline = time.time() + args.timeout
        next_storm = time.time() + args.sever_every
        while True:
            statuses = me.query_status(task_ids)
            n_complete = sum(
                1 for _, s in statuses if s == TaskStatus.COMPLETE
            )
            if n_complete == len(task_ids):
                break
            if time.time() > deadline:
                print(
                    f"TIMEOUT: {n_complete}/{len(task_ids)} complete after "
                    f"{args.timeout:.0f}s"
                )
                return 1
            if args.kill_pool and not killed and n_complete >= args.tasks // 3:
                # Abandon the first pool mid-batch: its unfinished tasks
                # stay RUNNING until their leases lapse and the reaper
                # requeues them for the replacement pool.
                pools[0].stop(drain=False)
                killed = True
                replacement = make_pool("chaos-pool-2", EQSQL(me_store))
                pools.append(replacement)
                replacement.start()
                print(
                    f"killed chaos-pool-1 at {n_complete}/{args.tasks} "
                    "complete; started chaos-pool-2"
                )
            if time.time() >= next_storm:
                severed_storms += proxy.sever_all()
                next_storm = time.time() + args.sever_every
            time.sleep(0.05)
        # Collect with chaos off: pop_in_any consumes results, and a
        # lost response there is the one ambiguity retry cannot fix.
        proxy.set_sever_rate(0.0)
        results = me.store.pop_in_any(task_ids)
        got = [task_id for task_id, _ in results]
        lost = len(task_ids) - len(set(got))
        duplicated = len(got) - len(set(got))
        # Final queue/lease state via the embedded status endpoint —
        # the same JSON `repro monitor` polls.
        from repro.telemetry.monitor import fetch_json

        final_status = fetch_json(service.status_url + "/status")
    finally:
        for pool in pools:
            pool.stop(drain=False, timeout=5)
        me_store.close()
        pool_store.close()
        proxy.stop()
        service.stop()
        set_metrics(previous_metrics)

    def count(name: str) -> int:
        metric = registry.get(name)
        return int(metric.value) if metric is not None else 0

    print(f"\n{args.tasks} tasks through a chaos proxy "
          f"(sever_rate={args.sever_rate}, storm every {args.sever_every}s)\n")
    print(render_table(
        ["metric", "value"],
        [
            ["results collected", len(set(got))],
            ["results lost", lost],
            ["results duplicated", duplicated],
            ["proxy connections", proxy.connections_total],
            ["connections severed", proxy.connections_severed],
            ["client retries", count("service.client.retries")],
            ["client reconnects", count("service.client.reconnects")],
            ["leases requeued", count("leases.tasks_requeued")],
            ["lease renewals", count("pool.lease_renewals")],
            ["pool fetch errors", count("pool.fetch_errors")],
            ["pool reports lost", count("pool.report_errors")],
            ["db lease renewals", count("db.lease_renewals")],
            ["db lease requeues", count("db.lease_requeues")],
            ["report withdrawals", count("db.report_withdrawals")],
        ],
    ))
    store_state = final_status.get("store", {})
    if store_state:
        tasks_state = store_state.get("tasks", {})
        leases_state = store_state.get("leases", {})
        print("\nfinal /status (queue + lease state at collection time):\n")
        print(render_table(
            ["state", "value"],
            [
                *[[f"tasks {k}", v] for k, v in tasks_state.items()],
                ["queue_out depth", store_state.get("queue_out_total", 0)],
                ["queue_in depth", store_state.get("queue_in", 0)],
                *[[f"leases {k}", v] for k, v in leases_state.items()],
            ],
        ))
    if lost or duplicated:
        print("\nFAIL: results lost or duplicated under chaos")
        return 1
    print("\nOK: zero lost, zero duplicated")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.telemetry.metrics import MetricsRegistry, get_metrics, set_metrics

    # Metrics are always on; tracing stays at the (disabled) default so
    # this also demonstrates the zero-overhead instrumentation path.
    previous = set_metrics(MetricsRegistry())
    try:
        _run_instrumented_workload(args.tasks, args.workers)
        registry = get_metrics()
    finally:
        set_metrics(previous)
    print(f"metrics after {args.tasks} tasks through the service + pool pipeline:\n")
    print(registry.render_text())
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.telemetry.monitor import run_monitor

    return run_monitor(
        args.url,
        interval=args.interval,
        once=args.once,
        json_mode=args.json,
    )


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.telemetry.journal import load_journal, render_timeline, task_timeline

    records = []
    for path in args.journal:
        try:
            records.extend(load_journal(path))
        except OSError as exc:
            print(f"timeline: cannot read {path}: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"timeline: {exc}", file=sys.stderr)
            return 1
    timeline = task_timeline(records, args.task_id)
    if not timeline:
        task_ids = sorted({r.task_id for r in records})
        preview = ", ".join(str(t) for t in task_ids[:20])
        if len(task_ids) > 20:
            preview += ", ..."
        print(
            f"timeline: no records for task {args.task_id} "
            f"({len(records)} records, task ids: {preview or 'none'})",
            file=sys.stderr,
        )
        return 1
    roles = sorted({r.role for r in timeline})
    print(
        f"task {args.task_id}: {len(timeline)} lifecycle records across "
        f"{len(roles)} role(s) ({', '.join(roles)})\n"
    )
    print(render_timeline(timeline))
    return 0


def _cmd_stragglers(args: argparse.Namespace) -> int:
    from repro.telemetry.monitor import run_stragglers

    return run_stragglers(
        args.url,
        interval=args.interval,
        once=args.once,
        json_mode=args.json,
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.telemetry.monitor import run_fleet

    return run_fleet(
        args.url,
        interval=args.interval,
        once=args.once,
        json_mode=args.json,
    )


def _cmd_conform(args: argparse.Namespace) -> int:
    from repro.testing.conformance import (
        ACCESS_PATHS,
        ScheduleConfig,
        run_conformance,
    )

    paths = tuple(args.paths.split(","))
    unknown = [p for p in paths if p not in ACCESS_PATHS]
    if unknown:
        print(
            f"conform: unknown path(s) {unknown}; choose from "
            f"{', '.join(ACCESS_PATHS)}",
            file=sys.stderr,
        )
        return 2
    config = ScheduleConfig(steps=args.steps, n_pools=args.pools)
    seeds = range(args.start_seed, args.start_seed + args.seeds)
    print(
        f"conform: {args.seeds} seed(s) starting at {args.start_seed}, "
        f"{args.steps} steps x {len(paths)} path(s) ({','.join(paths)})"
    )

    def show(result) -> None:
        status = "ok" if result.ok else "FAIL"
        print(
            f"  seed {result.seed:>4}  {status:<4} "
            f"{result.operations:>5} ops  {result.tasks:>4} tasks"
        )
        for violation in result.violations:
            print(f"    !! {violation}")

    report = run_conformance(seeds, paths=paths, config=config, on_result=show)
    print(report.summary())
    if not report.ok:
        # Replay recipe: one seed reruns the identical schedule.
        for seed in report.failing_seeds:
            print(
                f"replay: python -m repro conform --seeds 1 "
                f"--start-seed {seed} --steps {args.steps} "
                f"--pools {args.pools} --paths {args.paths}"
            )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_harness

    return run_harness(
        names=args.names or None,
        smoke=args.smoke,
        out_dir=args.out_dir,
        baseline_path=args.baseline,
        tolerance=args.tolerance,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OSPREY reproduction: regenerate the paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, default_tasks: int) -> None:
        p.add_argument("--tasks", type=int, default=default_tasks,
                       help=f"number of tasks (default {default_tasks})")
        p.add_argument("--seed", type=int, default=2023, help="workload seed")

    p = sub.add_parser("fig3", help="Figure 3: utilization vs fetch policy")
    common(p, 750)
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("fig4", help="Figure 4: federated three-pool workflow")
    common(p, 750)
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("sweep-batch", help="ablation: batch-size sweep")
    common(p, 400)
    p.set_defaults(fn=_cmd_sweep_batch)

    p = sub.add_parser("sweep-threshold", help="ablation: threshold sweep")
    common(p, 400)
    p.set_defaults(fn=_cmd_sweep_threshold)

    p = sub.add_parser("gpr-ablation", help="ablation: GPR vs no reprioritization")
    common(p, 400)
    p.set_defaults(fn=_cmd_gpr_ablation)

    p = sub.add_parser(
        "trace",
        help="run a traced ME → service → pool workload, export spans",
    )
    p.add_argument("--tasks", type=int, default=25, help="tasks to run (default 25)")
    p.add_argument("--workers", type=int, default=3, help="pool workers (default 3)")
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event output path (default trace.json)")
    p.add_argument("--spans", default=None,
                   help="also write raw spans as JSONL to this path")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="run the workload untraced, print the metrics registry",
    )
    p.add_argument("--tasks", type=int, default=25, help="tasks to run (default 25)")
    p.add_argument("--workers", type=int, default=3, help="pool workers (default 3)")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser(
        "chaos",
        help="run the workload through a fault-injecting proxy, verify no loss",
    )
    p.add_argument("--tasks", type=int, default=40, help="tasks to run (default 40)")
    p.add_argument("--workers", type=int, default=4, help="pool workers (default 4)")
    p.add_argument("--seed", type=int, default=2023, help="chaos seed")
    p.add_argument("--sever-rate", type=float, default=0.02,
                   help="per-chunk probability of severing a connection")
    p.add_argument("--sever-every", type=float, default=0.75,
                   help="seconds between sever-all storms (default 0.75)")
    p.add_argument("--lease", type=float, default=1.0,
                   help="task lease duration in seconds (default 1.0)")
    p.add_argument("--kill-pool", action="store_true",
                   help="kill the pool mid-batch and recover via the lease reaper")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="overall deadline in seconds (default 120)")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "monitor",
        help="live terminal view of a running service's /status endpoint",
    )
    p.add_argument("url", help="status server address (host:port or http URL)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    p.add_argument("--once", action="store_true",
                   help="take a single snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="print the raw /status JSON instead of tables")
    p.set_defaults(fn=_cmd_monitor)

    p = sub.add_parser(
        "timeline",
        help="merge flight-recorder journals into one task's lifecycle view",
    )
    p.add_argument("task_id", type=int, help="the eq_task_id to reconstruct")
    p.add_argument(
        "--journal", action="append", required=True, metavar="FILE",
        help="journal JSONL file (repeat for multiple roles)",
    )
    p.set_defaults(fn=_cmd_timeline)

    p = sub.add_parser(
        "stragglers",
        help="live straggler view of a running service's /events endpoint",
    )
    p.add_argument("url", help="status server address (host:port or http URL)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    p.add_argument("--once", action="store_true",
                   help="take a single snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="print the raw /events JSON instead of tables")
    p.set_defaults(fn=_cmd_stragglers)

    p = sub.add_parser(
        "fleet",
        help="live worker-fleet view of a running service's /fleet endpoint",
    )
    p.add_argument("url", help="status server address (host:port or http URL)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    p.add_argument("--once", action="store_true",
                   help="take a single snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="print the raw /fleet JSON instead of tables")
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser(
        "conform",
        help="store conformance fuzzer: seeded schedules vs all access paths",
    )
    p.add_argument("--seeds", type=int, default=25,
                   help="number of consecutive seeds to run (default 25)")
    p.add_argument("--start-seed", type=int, default=0,
                   help="first seed (default 0); use with --seeds 1 to replay")
    p.add_argument("--steps", type=int, default=150,
                   help="schedule length per seed (default 150)")
    p.add_argument("--pools", type=int, default=3,
                   help="logical worker-pool actors (default 3)")
    p.add_argument("--paths", default="memory,sqlite,remote",
                   help="comma-separated access paths (default all three)")
    p.set_defaults(fn=_cmd_conform)

    p = sub.add_parser(
        "bench",
        help="benchmark-regression harness: run curated benches, compare baseline",
    )
    p.add_argument("names", nargs="*",
                   help="benches to run (default: all; see repro.bench.BENCHES)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny workloads: exercise every path quickly")
    p.add_argument("--out-dir", default="benchmarks/reports",
                   help="directory for BENCH_<name>.json results")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON to compare against (exit 1 on regression)")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed fractional degradation vs baseline (default 0.5)")
    p.set_defaults(fn=_cmd_bench)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Task application handlers — the work a pool's workers run.

Swift/T pools "can run a variety of task application types": code passed
to the Python/R/Julia/Tcl interpreters, command-line programs via the
``app`` function type, and MPI-parallel tasks via ``@par`` (§IV-D).
Each gets a handler class here; a :class:`HandlerRegistry` maps work
types to handlers for pools serving several task kinds.

A handler maps a payload string (typically JSON) to a result string.
Failures raise :class:`TaskExecutionError`; the pool reports a JSON
error object so the ME algorithm sees the failure rather than a hang.
"""

from __future__ import annotations

import shlex
import subprocess
from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Any

from repro.telemetry.tracing import get_tracer
from repro.util.errors import ReproError
from repro.util.serialization import json_dumps, json_loads


class TaskExecutionError(ReproError):
    """A task application failed; message carries the cause."""


class TaskHandler(ABC):
    """Maps one task payload to one result payload."""

    @abstractmethod
    def handle(self, payload: str) -> str:
        """Execute the task; returns the result string."""

    def run(self, payload: str) -> str:
        """Execute the task inside a ``handler`` span.

        Pools call this instead of :meth:`handle` so that, under an
        enabled tracer, application time separates from pool overhead
        in the latency breakdown.  Nests under the caller's open span
        (the pool's per-task span) via the thread-local stack.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self.handle(payload)
        with tracer.span(
            f"handler.{type(self).__name__}",
            component="handler",
            payload_bytes=len(payload),
        ):
            return self.handle(payload)

    def __call__(self, payload: str) -> str:
        return self.run(payload)


class PythonTaskHandler(TaskHandler):
    """Run an in-process Python callable.

    With ``json_io=True`` (default) the payload is JSON-decoded before
    the call and the return value JSON-encoded after — the paper's
    typical payload convention.  With ``json_io=False`` the callable
    receives and must return raw strings.
    """

    def __init__(self, fn: Callable[[Any], Any], json_io: bool = True) -> None:
        self._fn = fn
        self._json_io = json_io

    def handle(self, payload: str) -> str:
        try:
            arg: Any = json_loads(payload) if self._json_io else payload
            result = self._fn(arg)
            return json_dumps(result) if self._json_io else str(result)
        except Exception as exc:
            raise TaskExecutionError(f"python task failed: {exc}") from exc


class AppTaskHandler(TaskHandler):
    """Run a command-line program (Swift/T's ``app`` function type).

    The command is a template whose ``{payload}`` placeholder is
    replaced (shell-quoted) with the task payload; the program's stdout
    (stripped) is the result.  Non-zero exit raises, carrying stderr.
    """

    def __init__(self, command: str, timeout: float | None = 60.0) -> None:
        if "{payload}" not in command:
            raise ValueError("app command must contain a {payload} placeholder")
        self._command = command
        self._timeout = timeout

    def handle(self, payload: str) -> str:
        command = self._command.replace("{payload}", shlex.quote(payload))
        try:
            proc = subprocess.run(
                command,
                shell=True,
                capture_output=True,
                text=True,
                timeout=self._timeout,
            )
        except subprocess.TimeoutExpired as exc:
            raise TaskExecutionError(f"app task timed out after {self._timeout}s") from exc
        if proc.returncode != 0:
            raise TaskExecutionError(
                f"app task exited {proc.returncode}: {proc.stderr.strip()[:500]}"
            )
        return proc.stdout.strip()


class ParTaskHandler(TaskHandler):
    """Run an MPI-parallel task (Swift/T's ``@par`` keyword).

    ``fn(comm, payload_obj)`` executes on ``procs`` mpilite ranks; the
    rank-0 return value (JSON-encoded) is the task result.
    """

    def __init__(self, fn: Callable[..., Any], procs: int) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        self._fn = fn
        self._procs = procs

    def handle(self, payload: str) -> str:
        from repro.mpilite import mpi_run

        try:
            arg = json_loads(payload)
            results = mpi_run(self._procs, self._fn, arg)
            return json_dumps(results[0])
        except TaskExecutionError:
            raise
        except Exception as exc:
            raise TaskExecutionError(f"@par task failed: {exc}") from exc


class HandlerRegistry:
    """Maps work types to handlers for multi-type deployments."""

    def __init__(self) -> None:
        self._handlers: dict[int, TaskHandler] = {}

    def register(self, work_type: int, handler: TaskHandler) -> None:
        if work_type in self._handlers:
            raise ValueError(f"work type {work_type} already registered")
        self._handlers[work_type] = handler

    def handler_for(self, work_type: int) -> TaskHandler:
        try:
            return self._handlers[work_type]
        except KeyError:
            raise KeyError(f"no handler registered for work type {work_type}") from None

    def work_types(self) -> list[int]:
        return sorted(self._handlers)

"""Remote component lifecycle over the compute fabric (paper §IV-B, §VI).

"In our prototype, we use funcX to start and stop the EMEWS service, the
EMEWS DB database, and remote worker pools on HPC resources."

The functions here are designed to be *shipped through the fabric*:
``client.run(start_emews_db, "bebop-db", endpoint=bebop_ep)`` executes
on the endpoint and registers the component in the site-local runtime
registry (one registry per interpreter — which is per site in a real
deployment and shared in this in-process reproduction; names are
therefore namespaced by the caller).  Later fabric calls look components
up by name to attach pools or stop things.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

from repro.core.eqsql import EQSQL, init_eqsql
from repro.core.service import TaskService
from repro.pools.config import PoolConfig
from repro.pools.handlers import PythonTaskHandler
from repro.pools.pool import ThreadedWorkerPool
from repro.util.errors import InvalidStateError, NotFoundError

_lock = threading.Lock()
_databases: dict[str, EQSQL] = {}
_services: dict[str, TaskService] = {}
_pools: dict[str, ThreadedWorkerPool] = {}


def start_emews_db(name: str, db_path: str | None = None) -> str:
    """Start (open) an EMEWS DB on this site; returns its name."""
    with _lock:
        if name in _databases:
            raise InvalidStateError(f"database {name!r} already running")
        _databases[name] = init_eqsql(db_path)
    return name


def get_eqsql(name: str) -> EQSQL:
    """The site-local handle to a running EMEWS DB."""
    with _lock:
        eqsql = _databases.get(name)
    if eqsql is None:
        raise NotFoundError(f"no running database named {name!r}")
    return eqsql


def stop_emews_db(name: str) -> bool:
    """Stop a database (close the store); True if it was running."""
    with _lock:
        eqsql = _databases.pop(name, None)
    if eqsql is None:
        return False
    eqsql.close()
    return True


def start_emews_service(
    db_name: str,
    host: str = "127.0.0.1",
    port: int = 0,
    auth_token: str | None = None,
    lease_reaper_interval: float | None = None,
) -> tuple[str, int]:
    """Start the EMEWS service fronting a running DB; returns (host, port).

    The returned address is what a remote ME algorithm connects its
    :class:`repro.core.RemoteTaskStore` to (the paper's SSH-tunnel hop).
    ``lease_reaper_interval`` turns on continuous recovery: expired-lease
    tasks are requeued automatically every that-many seconds.
    """
    eqsql = get_eqsql(db_name)
    service = TaskService(
        eqsql.store,
        host=host,
        port=port,
        auth_token=auth_token,
        lease_reaper_interval=lease_reaper_interval,
        clock=eqsql.clock,
    )
    service.start()
    with _lock:
        if db_name in _services:
            service.stop()
            raise InvalidStateError(f"service for {db_name!r} already running")
        _services[db_name] = service
    return service.address


def stop_emews_service(db_name: str) -> bool:
    with _lock:
        service = _services.pop(db_name, None)
    if service is None:
        return False
    service.stop()
    return True


def start_worker_pool(
    db_name: str,
    pool_name: str,
    work_type: int,
    task_fn: Callable[[Any], Any],
    n_workers: int = 4,
    batch_size: int | None = None,
    threshold: int = 1,
    json_io: bool = True,
    lease_duration: float | None = None,
    heartbeat_interval: float | None = None,
) -> str:
    """Start a threaded worker pool against a running DB.

    ``task_fn`` must be picklable (module-level) since this function is
    meant to travel through the fabric.  ``lease_duration`` claims tasks
    under fault-tolerance leases the pool heartbeats; pair it with a
    service-side lease reaper for automatic crashed-pool recovery.
    """
    eqsql = get_eqsql(db_name)
    config = PoolConfig(
        work_type=work_type,
        n_workers=n_workers,
        batch_size=batch_size,
        threshold=threshold,
        name=pool_name,
        lease_duration=lease_duration,
        heartbeat_interval=heartbeat_interval,
    )
    pool = ThreadedWorkerPool(
        eqsql, PythonTaskHandler(task_fn, json_io=json_io), config
    )
    with _lock:
        if pool_name in _pools:
            raise InvalidStateError(f"pool {pool_name!r} already running")
        _pools[pool_name] = pool
    pool.start()
    return pool_name


def stop_worker_pool(pool_name: str, drain: bool = True) -> bool:
    """Stop a running pool; True if it existed."""
    with _lock:
        pool = _pools.pop(pool_name, None)
    if pool is None:
        return False
    pool.stop(drain=drain)
    return True


def pool_status(pool_name: str) -> dict[str, Any]:
    """Completed/failed/owned counters for a running pool."""
    with _lock:
        pool = _pools.get(pool_name)
    if pool is None:
        raise NotFoundError(f"no running pool named {pool_name!r}")
    return {
        "name": pool.name,
        "owned": pool.owned(),
        "completed": pool.tasks_completed,
        "failed": pool.tasks_failed,
        "reports_lost": pool.reports_lost,
        "alive": pool.is_alive(),
    }


def shutdown_site() -> dict[str, int]:
    """Stop everything this site is running (test/exit hygiene)."""
    with _lock:
        pools = list(_pools.items())
        services = list(_services.items())
        databases = list(_databases.items())
        _pools.clear()
        _services.clear()
        _databases.clear()
    for _name, pool in pools:
        pool.stop()
    for _name, service in services:
        service.stop()
    for _name, eqsql in databases:
        eqsql.close()
    return {
        "pools": len(pools),
        "services": len(services),
        "databases": len(databases),
    }

"""Swift/T-style MPI worker pool over mpilite.

The paper's canonical pool "distributes work among previously launched
workers using MPI messages".  Here rank 0 plays the Swift/T engine: it
queries the EMEWS DB with the batch/threshold policy, sends tasks to
idle worker ranks, receives results, and reports them to the DB.  Ranks
1..N-1 are workers: receive a task, run the handler, send the result
back.  With ``size`` ranks the pool has ``size - 1`` workers.

The driver returns per-pool statistics from rank 0, and stops when it
pops an ``EQ_STOP`` sentinel task (reporting the sentinel so the
submitter's future resolves), mirroring the threaded pool's shutdown
convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import EQ_ABORT, EQ_STOP
from repro.core.eqsql import EQSQL
from repro.mpilite import ANY_SOURCE, Communicator, Status, mpi_run
from repro.pools.config import PoolConfig
from repro.pools.handlers import TaskExecutionError, TaskHandler
from repro.telemetry.events import EventKind, TraceCollector
from repro.telemetry.profiling import TaskProfiler
from repro.telemetry.tracing import Span, SpanContext, get_tracer
from repro.util.errors import TimeoutError_
from repro.util.serialization import json_dumps

_TAG_TASK = 1
_TAG_RESULT = 2
_TAG_SHUTDOWN = 3


@dataclass
class MpiPoolStats:
    """Rank-0 summary of one pool run."""

    tasks_completed: int = 0
    tasks_failed: int = 0


def _worker_rank(
    comm: Communicator, handler: TaskHandler, config: PoolConfig
) -> None:
    """Ranks 1..N-1: execute tasks until shutdown."""
    status = Status(-1, -1)
    tracer = get_tracer()
    profiler = (
        TaskProfiler(memory=config.profile_memory)
        if config.profile_tasks
        else None
    )
    while True:
        message = comm.recv(source=0, timeout=None, status=status)
        if status.tag == _TAG_SHUTDOWN:
            return
        eq_task_id, payload, trace_wire = message
        handle = (
            profiler.start(eq_task_id, config.work_type)
            if profiler is not None
            else None
        )
        # The engine forwards the task's span context inside the MPI
        # message, so worker-rank execution parents under it even
        # though ranks run on their own threads.  The span machinery is
        # only paid when tracing is on (this is the per-task hot path).
        if tracer.enabled:
            with tracer.span(
                "pool.worker",
                component="pool",
                parent=SpanContext.from_wire(trace_wire),
                eq_task_id=eq_task_id,
                rank=comm.rank,
            ) as sp:
                try:
                    result = handler.run(payload)
                    failed = False
                except TaskExecutionError as exc:
                    result = json_dumps({"error": str(exc)})
                    failed = True
                    sp.set_attr("failed", True)
        else:
            try:
                result = handler.handle(payload)
                failed = False
            except TaskExecutionError as exc:
                result = json_dumps({"error": str(exc)})
                failed = True
        profile = handle.finish(failed=failed).to_dict() if handle else None
        # The result message grew a 4th element for the profile; the
        # engine unpacks positionally, so both sides move together.
        comm.send((eq_task_id, result, failed, profile), dest=0, tag=_TAG_RESULT)


def _engine_rank(
    comm: Communicator,
    eqsql: EQSQL,
    config: PoolConfig,
    trace: TraceCollector | None,
) -> MpiPoolStats:
    """Rank 0: fetch, distribute, collect, report."""
    stats = MpiPoolStats()
    policy = config.policy()
    clock = eqsql.clock
    tracer = get_tracer()
    idle = list(range(1, comm.size))
    busy: dict[int, int] = {}  # worker rank -> eq_task_id
    # Fetched but no idle worker: (eq_task_id, payload, trace wire form).
    backlog: list[tuple[int, str, list[str] | None]] = []
    # Open dispatch spans, eq_task_id -> Span (ends at result receive).
    dispatch_spans: dict[int, Span] = {}
    stopping = False
    status = Status(-1, -1)

    if trace is not None:
        trace.record(EventKind.POOL_START, clock.now(), source=config.name)

    while True:
        owned = len(busy) + len(backlog)
        # Fetch when the policy says to and we are not stopping.
        if not stopping:
            want = policy.to_fetch(owned)
            if want > 0:
                t0 = clock.now() if tracer.enabled else 0.0
                messages = eqsql.query_task_batch(
                    config.work_type,
                    batch_size=config.batch_size or config.n_workers,
                    threshold=config.threshold,
                    owned=owned,
                    worker_pool=config.name,
                    delay=config.poll_delay,
                    timeout=config.query_timeout,
                )
                if messages and tracer.enabled:
                    tracer.add_span(
                        "pool.fetch",
                        "pool",
                        t0,
                        clock.now(),
                        attrs={"pool": config.name, "n": len(messages)},
                    )
                if messages and trace is not None:
                    trace.record(
                        EventKind.FETCH,
                        clock.now(),
                        source=config.name,
                        detail=str(len(messages)),
                    )
                for message in messages:
                    if message["payload"] in (EQ_STOP, EQ_ABORT):
                        eqsql.report_task(
                            message["eq_task_id"], config.work_type, message["payload"]
                        )
                        stopping = True
                    else:
                        backlog.append(
                            (
                                message["eq_task_id"],
                                message["payload"],
                                message.get("trace"),
                            )
                        )

        # Dispatch backlog to idle workers.
        while backlog and idle:
            worker = idle.pop()
            eq_task_id, payload, trace_wire = backlog.pop(0)
            busy[worker] = eq_task_id
            if trace is not None:
                trace.task_start(clock.now(), eq_task_id, source=config.name)
            if tracer.enabled:
                span = tracer.start_span(
                    "pool.task",
                    component="pool",
                    parent=SpanContext.from_wire(trace_wire),
                    eq_task_id=eq_task_id,
                    pool=config.name,
                    rank=worker,
                )
                if span is not None:
                    dispatch_spans[eq_task_id] = span
                    trace_wire = span.context.to_wire()
            comm.send((eq_task_id, payload, trace_wire), dest=worker, tag=_TAG_TASK)

        # Collect one result if any worker is busy.  The receive has a
        # short timeout so the engine keeps refetching (and can keep an
        # oversubscribed backlog warm) while workers run.
        if busy:
            try:
                eq_task_id, result, failed, profile = comm.recv(
                    source=ANY_SOURCE,
                    tag=_TAG_RESULT,
                    timeout=config.poll_delay,
                    status=status,
                )
            except TimeoutError_:
                continue
            worker = status.source
            del busy[worker]
            idle.append(worker)
            eqsql.report_task(
                eq_task_id, config.work_type, result, profile=profile
            )
            if dispatch_spans:
                span = dispatch_spans.pop(eq_task_id, None)
                if span is not None:
                    if failed:
                        span.set_attr("failed", True)
                    tracer.end_span(span)
            if trace is not None:
                trace.task_stop(clock.now(), eq_task_id, source=config.name)
            if failed:
                stats.tasks_failed += 1
            else:
                stats.tasks_completed += 1
        elif stopping and not backlog:
            break
        elif not backlog:
            clock.sleep(config.poll_delay)

    for worker in range(1, comm.size):
        comm.send(None, dest=worker, tag=_TAG_SHUTDOWN)
    if trace is not None:
        trace.record(EventKind.POOL_STOP, clock.now(), source=config.name)
    return stats


def run_mpi_pool(
    eqsql: EQSQL,
    handler: TaskHandler,
    config: PoolConfig,
    trace: TraceCollector | None = None,
    timeout: float = 300.0,
) -> MpiPoolStats:
    """Run a Swift/T-style pool across ``config.n_workers + 1`` ranks.

    Blocks until the pool pops an EQ_STOP sentinel and drains; returns
    rank 0's statistics.
    """
    size = config.n_workers + 1

    def program(comm: Communicator):
        if comm.rank == 0:
            return _engine_rank(comm, eqsql, config, trace)
        _worker_rank(comm, handler, config)
        return None

    results = mpi_run(size, program, timeout=timeout)
    stats = results[0]
    assert isinstance(stats, MpiPoolStats)
    return stats

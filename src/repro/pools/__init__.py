"""Heterogeneous worker pools (paper §IV-D).

A worker pool queries the EMEWS DB output queue for tasks of its work
type — using the batch/threshold discipline of
:class:`repro.core.fetch.FetchPolicy` — executes them, and reports
results to the input queue.  Two drivers share that logic:

- :class:`ThreadedWorkerPool` — workers are threads (the pilot-job
  worker set on one node).
- :func:`run_mpi_pool` — a Swift/T-style driver over
  :mod:`repro.mpilite`: rank 0 fetches and scatters tasks to worker
  ranks with MPI messages, mirroring the paper's canonical pool.

Task application types mirror Swift/T's: in-process Python callables,
command-line apps (``app`` functions), and parallel ``@par`` tasks that
themselves span mpilite ranks.
"""

from repro.pools.config import PoolConfig
from repro.pools.handlers import (
    AppTaskHandler,
    HandlerRegistry,
    ParTaskHandler,
    PythonTaskHandler,
    TaskExecutionError,
    TaskHandler,
)
from repro.pools.pool import ThreadedWorkerPool
from repro.pools.mpi_pool import run_mpi_pool

__all__ = [
    "PoolConfig",
    "TaskHandler",
    "PythonTaskHandler",
    "AppTaskHandler",
    "ParTaskHandler",
    "HandlerRegistry",
    "TaskExecutionError",
    "ThreadedWorkerPool",
    "run_mpi_pool",
]

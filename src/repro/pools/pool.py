"""Threaded worker pool.

One fetcher thread applies the batch/threshold policy against the EMEWS
DB output queue; N worker threads execute claimed tasks and report
results to the input queue.  The owned-task count (claimed but not yet
completed) drives the fetch policy exactly as in §IV-D, so this pool
reproduces the utilization regimes of Figure 3 in real time.

Shutdown follows the EQ_STOP convention: a task whose payload is the
``EQ_STOP`` sentinel tells the pool to stop fetching, drain its owned
tasks, and exit; the sentinel task itself is reported back (payload
``EQ_STOP``) so the submitter's future completes.  ``stop()`` forces the
same path locally.

With ``report_batch_size > 1`` the pool runs a shared reporter: workers
enqueue completed results instead of reporting them inline, and a single
flusher thread pushes each batch to the DB in one ``report_batch`` store
operation — flushing at K results or after a bounded linger, whichever
comes first, so a remote store's round trip is paid per batch while a
lone result still reports promptly.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Any

from repro.core.constants import EQ_ABORT, EQ_STOP
from repro.core.eqsql import EQSQL
from repro.pools.config import PoolConfig
from repro.pools.handlers import TaskExecutionError, TaskHandler
from repro.telemetry.events import EventKind, TraceCollector
from repro.telemetry.fleet import TelemetryPusher
from repro.telemetry.profiling import ProfileHandle, TaskProfiler
from repro.telemetry.journal import (
    EV_FETCH,
    EV_REPORT,
    EV_RUN_END,
    EV_RUN_START,
    ROLE_POOL,
    Journal,
    get_journal,
)
from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    MetricsRegistry,
    get_metrics,
)
from repro.telemetry.tracing import SpanContext, Tracer, get_tracer
from repro.util.errors import ReproError
from repro.util.logging import get_logger, log_event
from repro.util.serialization import json_dumps

_log = get_logger(__name__)


class ThreadedWorkerPool:
    """A pilot-job worker pool running on threads.

    Under an enabled tracer, each fetch that returns work records a
    ``pool.fetch`` span and each task executes inside a ``pool.task``
    span parented to the submitter's span (the context rides the task
    payload), with ``pool.report`` nested for the result write — the
    queue-wait / run / report decomposition of the task lifecycle.
    """

    def __init__(
        self,
        eqsql: EQSQL,
        handler: TaskHandler,
        config: PoolConfig,
        trace: TraceCollector | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        journal: Journal | None = None,
    ) -> None:
        self._eqsql = eqsql
        self._handler = handler
        self._config = config
        self._trace = trace
        self._tracer = tracer
        # Flight recorder: resolved per call when not injected, so a
        # later configure_journal() is picked up (tracer discipline).
        self._journal = journal
        registry = metrics if metrics is not None else get_metrics()
        self._m_completed = registry.counter(
            "pool.tasks_completed", "tasks executed and reported"
        )
        self._m_failed = registry.counter(
            "pool.tasks_failed", "tasks whose handler raised"
        )
        self._m_fetch_size = registry.histogram(
            "pool.fetch_batch_size", COUNT_BUCKETS, "tasks per non-empty fetch"
        )
        self._m_queue_wait = registry.histogram(
            "pool.queue_wait_seconds", help="local-queue wait: fetch to execution start"
        )
        self._m_run = registry.histogram(
            "pool.run_seconds", help="handler execution time"
        )
        self._m_report = registry.histogram(
            "pool.report_seconds", help="result report round trip"
        )
        self._m_lease_renewals = registry.counter(
            "pool.lease_renewals", "task leases renewed by the heartbeat"
        )
        self._m_fetch_errors = registry.counter(
            "pool.fetch_errors", "batch queries that failed on a connection fault"
        )
        self._m_report_errors = registry.counter(
            "pool.report_errors", "result reports lost to a connection fault"
        )
        self._policy = config.policy()

        self._owned = 0
        self._owned_ids: set[int] = set()
        self._owned_lock = threading.Lock()
        self._local: "queue.Queue[dict[str, Any] | None]" = queue.Queue()
        self._stop_fetching = threading.Event()
        self._stop_heartbeat = threading.Event()
        self._abort = threading.Event()
        self._threads: list[threading.Thread] = []
        self._heartbeat: threading.Thread | None = None
        self._started = False
        self._reporter: _BatchReporter | None = (
            _BatchReporter(self) if config.report_batch_size > 1 else None
        )

        self._stats_lock = threading.Lock()
        self._busy = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        #: Executions whose report never reached the DB (connection lost
        #: past retry); the lease reaper re-dispatches these elsewhere.
        self.reports_lost = 0

        # Per-task resource profiling (off by default): handles for
        # in-flight tasks (the telemetry heartbeat snapshots them for
        # the live cpu-vs-wall signal) plus a bounded buffer of finished
        # profiles drained into each push envelope.
        self._profiler: TaskProfiler | None = (
            TaskProfiler(memory=config.profile_memory)
            if config.profile_tasks
            else None
        )
        self._profile_lock = threading.Lock()
        self._live_handles: dict[int, ProfileHandle] = {}
        self._recent_profiles: deque[dict[str, Any]] = deque(maxlen=64)
        self._pusher: TelemetryPusher | None = None

    @property
    def name(self) -> str:
        return self._config.name

    @property
    def config(self) -> PoolConfig:
        return self._config

    def owned(self) -> int:
        """Tasks claimed from the DB but not yet completed."""
        with self._owned_lock:
            return self._owned

    def busy(self) -> int:
        """Workers currently executing (or reporting) a task."""
        with self._stats_lock:
            return self._busy

    def busy_fraction(self) -> float:
        """Fraction of workers currently occupied — the live analogue of
        the utilization statistic the Fig 3 benchmarks compute offline."""
        return self.busy() / self._config.n_workers

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def _jrnl(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    @property
    def telemetry_pusher(self) -> TelemetryPusher | None:
        """The fleet push thread, when ``telemetry_interval`` is set and
        the store exposes the ``telemetry`` RPC."""
        return self._pusher

    def _telemetry_envelope(self) -> dict[str, Any]:
        """Per-beat fleet payload: load, counters, profiles, live tasks."""
        busy_fraction = self.busy_fraction()
        with self._profile_lock:
            profiles = list(self._recent_profiles)
            self._recent_profiles.clear()
            running = [handle.live() for handle in self._live_handles.values()]
        with self._stats_lock:
            completed = self.tasks_completed
            failed = self.tasks_failed
            lost = self.reports_lost
        envelope: dict[str, Any] = {
            "busy_fraction": busy_fraction,
            "n_workers": self._config.n_workers,
            "owned": self.owned(),
            "tasks_completed": completed,
            "tasks_failed": failed,
            "reports_lost": lost,
            "running": running,
        }
        if profiles:
            envelope["profiles"] = profiles
        return envelope

    @staticmethod
    def _msg_trace_id(message: dict[str, Any]) -> str:
        wire = message.get("trace")
        return wire[0] if wire else ""

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ThreadedWorkerPool":
        """Launch the fetcher and worker threads."""
        if self._started:
            raise RuntimeError("pool already started")
        self._started = True
        if self._trace is not None:
            self._trace.record(
                EventKind.POOL_START, self._eqsql.clock.now(), source=self.name
            )
        fetcher = threading.Thread(
            target=self._fetch_loop, name=f"{self.name}-fetcher", daemon=True
        )
        workers = [
            threading.Thread(
                target=self._work_loop, name=f"{self.name}-worker-{i}", daemon=True
            )
            for i in range(self._config.n_workers)
        ]
        self._threads = [fetcher, *workers]
        for t in self._threads:
            t.start()
        if self._reporter is not None:
            self._reporter.start()
        if self._config.telemetry_interval is not None:
            sink = getattr(self._eqsql.store, "telemetry", None)
            if sink is None:
                # In-process stores have no service to push to; the
                # config is tolerated so one PoolConfig can serve both
                # local tests and remote deployments.
                log_event(
                    _log, "pool.telemetry_unavailable", level=30,
                    pool=self.name,
                )
            else:
                self._pusher = TelemetryPusher(
                    worker_id=self.name,
                    role="pool",
                    sink=sink,
                    interval=self._config.telemetry_interval,
                    envelope_fn=self._telemetry_envelope,
                    clock=self._eqsql.clock,
                ).start()
        if self._config.lease_duration is not None:
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                name=f"{self.name}-heartbeat",
                daemon=True,
            )
            self._heartbeat.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.

        ``drain=True`` lets owned tasks finish (EQ_STOP semantics);
        ``drain=False`` abandons queued local work (EQ_ABORT semantics —
        abandoned tasks stay RUNNING in the DB; if they were claimed
        under a lease the reaper requeues them automatically, otherwise
        manual ``recover_pool`` is required).
        """
        self._stop_fetching.set()
        if not drain:
            self._abort.set()
        # A fetcher blocked in a long-poll wakes instantly when the
        # store is in-process; against a remote store this is a no-op
        # and fetch_wait bounds how long the fetcher can stay blocked.
        waker = getattr(self._eqsql.store, "wake_waiters", None)
        if waker is not None:
            waker()
        self.join(timeout)

    def join(self, timeout: float = 30.0) -> None:
        """Wait for the pool's threads to exit."""
        for t in self._threads:
            t.join(timeout)
        # The reporter outlives the workers: the fetcher's drain waits
        # for the owned count to reach zero, which only happens once the
        # flusher has reported every enqueued result.  On abort pending
        # results are discarded (their tasks stay RUNNING for the lease
        # reaper, like any abandoned work).
        if self._reporter is not None:
            self._reporter.stop(discard=self._abort.is_set(), timeout=timeout)
        # The heartbeat outlives the fetcher so leases stay fresh while
        # owned tasks drain; it only stops once the workers are done (or
        # on abort, where renewing would keep abandoned tasks from the
        # reaper).
        self._stop_heartbeat.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout)
            self._heartbeat = None
        if self._pusher is not None:
            # Stop pushes a parting beat so the fleet registry sees the
            # final counters before this pool disappears.
            self._pusher.stop()
            self._pusher = None
        if self._trace is not None and self._started:
            self._trace.record(
                EventKind.POOL_STOP, self._eqsql.clock.now(), source=self.name
            )
            self._started = False

    def is_alive(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    # -- fetcher -----------------------------------------------------------------

    def _fetch_loop(self) -> None:
        config = self._config
        clock = self._eqsql.clock
        tracer = self.tracer
        # Event-driven fetch: against a wait-capable store each empty
        # batch query long-polls up to fetch_wait server-side, so the
        # empty-queue sleep below is redundant (the store did the
        # waiting, and stop() wakes blocked waiters).
        long_poll = config.fetch_wait > 0 and getattr(
            self._eqsql.store, "supports_wait", False
        )
        query_timeout = (
            max(config.query_timeout, config.fetch_wait)
            if long_poll
            else config.query_timeout
        )
        while not self._stop_fetching.is_set():
            with self._owned_lock:
                owned = self._owned
            want = self._policy.to_fetch(owned)
            if want == 0:
                clock.sleep(config.poll_delay)
                continue
            t0 = clock.now() if tracer.enabled else 0.0
            try:
                messages = self._eqsql.query_task_batch(
                    config.work_type,
                    batch_size=config.batch_size or config.n_workers,
                    threshold=config.threshold,
                    owned=owned,
                    worker_pool=config.name,
                    delay=config.poll_delay,
                    timeout=query_timeout,
                    lease=config.lease_duration,
                )
            except (ReproError, OSError) as exc:
                # A lost connection must not kill the fetcher: tasks
                # popped server-side but never received are leased, so
                # the reaper requeues them; we just poll again.
                self._m_fetch_errors.inc()
                log_event(
                    _log, "pool.fetch_error", level=30,
                    pool=self.name, error=str(exc),
                )
                clock.sleep(config.poll_delay)
                continue
            if not messages:
                if not long_poll:
                    clock.sleep(config.poll_delay)
                continue
            fetched_at = clock.now()
            self._m_fetch_size.observe(len(messages))
            if tracer.enabled:
                tracer.add_span(
                    "pool.fetch",
                    "pool",
                    t0,
                    fetched_at,
                    attrs={"pool": self.name, "n": len(messages)},
                )
            for message in messages:
                message["_fetched_at"] = fetched_at
            journal = self._jrnl()
            if journal.enabled:
                for message in messages:
                    journal.emit(
                        EV_FETCH,
                        message["eq_task_id"],
                        role=ROLE_POOL,
                        work_type=config.work_type,
                        trace_id=self._msg_trace_id(message),
                        source=self.name,
                        time=fetched_at,
                    )
            if self._trace is not None:
                self._trace.record(
                    EventKind.FETCH,
                    clock.now(),
                    source=self.name,
                    detail=str(len(messages)),
                )
            for message in messages:
                if message["payload"] in (EQ_STOP, EQ_ABORT):
                    # Report the sentinel so the submitter's future
                    # resolves, then begin shutdown.
                    try:
                        self._eqsql.report_task(
                            message["eq_task_id"], config.work_type, message["payload"]
                        )
                    except (ReproError, OSError):
                        pass  # shutdown proceeds; the lease reaper requeues it
                    self._stop_fetching.set()
                    if message["payload"] == EQ_ABORT:
                        self._abort.set()
                    continue
                with self._owned_lock:
                    self._owned += 1
                    self._owned_ids.add(message["eq_task_id"])
                self._local.put(message)
        # Drain: wait for owned tasks to complete, then release workers.
        while not self._abort.is_set():
            with self._owned_lock:
                if self._owned == 0:
                    break
            clock.sleep(config.poll_delay)
        for _ in range(config.n_workers):
            self._local.put(None)

    # -- lease heartbeat ----------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        interval = self._config.heartbeat_interval
        assert interval is not None
        while not self._stop_heartbeat.wait(interval):
            if self._abort.is_set():
                # Abandoned tasks must NOT be kept alive: stop renewing
                # so their leases lapse and the reaper requeues them.
                return
            self.renew_leases()

    def renew_leases(self) -> int:
        """Renew the leases of every currently owned task (one heartbeat).

        Runs on the heartbeat thread in live pools; tests drive it
        directly under a :class:`~repro.util.clock.VirtualClock`.
        Returns the number of leases renewed.  Connection faults are
        absorbed (the client already retried — renewal is idempotent):
        missing one beat is survivable by design, the lease outlasting
        several intervals.
        """
        lease = self._config.lease_duration
        if lease is None:
            return 0
        with self._owned_lock:
            ids = list(self._owned_ids)
        if not ids:
            return 0
        try:
            renewed = self._eqsql.store.renew_leases(
                ids, now=self._eqsql.clock.now(), lease=lease
            )
        except (ReproError, OSError) as exc:
            log_event(
                _log, "pool.heartbeat_error", level=30,
                pool=self.name, error=str(exc),
            )
            return 0
        self._m_lease_renewals.inc(renewed)
        return renewed

    # -- workers --------------------------------------------------------------------

    def _work_loop(self) -> None:
        clock = self._eqsql.clock
        tracer = self.tracer
        while True:
            if self._abort.is_set():
                return
            try:
                message = self._local.get(timeout=0.1)
            except queue.Empty:
                continue
            if message is None:
                return
            eq_task_id = message["eq_task_id"]
            started_at = clock.now()
            fetched_at = message.get("_fetched_at")
            if fetched_at is not None:
                self._m_queue_wait.observe(started_at - fetched_at)
            if self._trace is not None:
                self._trace.task_start(started_at, eq_task_id, source=self.name)
            journal = self._jrnl()
            if journal.enabled:
                journal.emit(
                    EV_RUN_START,
                    eq_task_id,
                    role=ROLE_POOL,
                    work_type=self._config.work_type,
                    trace_id=self._msg_trace_id(message),
                    source=self.name,
                    time=started_at,
                )
            with self._stats_lock:
                self._busy += 1
            try:
                # Hot path: the span machinery (context construction,
                # kwargs, handle) is only paid when tracing is on.
                if tracer.enabled:
                    with tracer.span(
                        "pool.task",
                        component="pool",
                        parent=SpanContext.from_wire(message.get("trace")),
                        eq_task_id=eq_task_id,
                        pool=self.name,
                    ) as sp:
                        self._run_one(message, eq_task_id, started_at, sp)
                else:
                    self._run_one(message, eq_task_id, started_at, None)
            finally:
                with self._stats_lock:
                    self._busy -= 1

    def _run_one(
        self,
        message: dict[str, Any],
        eq_task_id: int,
        started_at: float,
        sp: Any,
    ) -> None:
        """Execute one fetched task and report its result.

        ``sp`` is the open ``pool.task`` span, or None when tracing is
        disabled.
        """
        config = self._config
        clock = self._eqsql.clock
        profiler = self._profiler
        handle: ProfileHandle | None = None
        if profiler is not None:
            handle = profiler.start(eq_task_id, config.work_type)
            with self._profile_lock:
                self._live_handles[eq_task_id] = handle
        try:
            # run() opens the handler span; skip it when untraced.
            if sp is not None:
                result = self._handler.run(message["payload"])
            else:
                result = self._handler.handle(message["payload"])
            failed = False
        except TaskExecutionError as exc:
            result = json_dumps({"error": str(exc)})
            failed = True
            if sp is not None:
                sp.set_attr("failed", True)
        profile_dict: dict[str, Any] | None = None
        if handle is not None:
            profile_dict = handle.finish(failed=failed).to_dict()
            with self._profile_lock:
                self._live_handles.pop(eq_task_id, None)
                self._recent_profiles.append(profile_dict)
        ran_at = clock.now()
        self._m_run.observe(ran_at - started_at)
        journal = self._jrnl()
        if journal.enabled:
            extra: dict[str, Any] | None = {"failed": True} if failed else None
            if profile_dict is not None:
                extra = dict(extra) if extra else {}
                extra["profile"] = profile_dict
            journal.emit(
                EV_RUN_END,
                eq_task_id,
                role=ROLE_POOL,
                work_type=config.work_type,
                trace_id=self._msg_trace_id(message),
                source=self.name,
                time=ran_at,
                extra=extra,
            )
        if self._reporter is not None:
            # Batched mode: hand the result to the shared reporter and
            # release this worker immediately.  Finalization (owned
            # decrement, stats, task-stop trace) happens on the flusher
            # thread once the result actually reaches the DB, so the
            # fetch policy never double-counts capacity for a task whose
            # report is still in flight.
            self._reporter.submit(eq_task_id, result, failed, ran_at, profile_dict)
            return
        lost = False
        try:
            try:
                if sp is not None:
                    with self.tracer.span(
                        "pool.report", component="pool", eq_task_id=eq_task_id
                    ):
                        self._eqsql.report_task(
                            eq_task_id, config.work_type, result,
                            profile=profile_dict,
                        )
                else:
                    self._eqsql.report_task(
                        eq_task_id, config.work_type, result, profile=profile_dict
                    )
                self._m_report.observe(clock.now() - ran_at)
            except (ReproError, OSError) as exc:
                # The connection died beyond the client's retries and the
                # result could not be recorded.  The worker must survive:
                # the task's lease lapses without renewal (it leaves the
                # owned set below), the reaper requeues it, and another
                # pool re-executes — the result is recovered, not lost.
                lost = True
                self._m_report_errors.inc()
                log_event(
                    _log, "pool.report_error", level=30,
                    pool=self.name, eq_task_id=eq_task_id, error=str(exc),
                )
        finally:
            self._finalize(eq_task_id, failed=failed, lost=lost)

    def _finalize(self, eq_task_id: int, *, failed: bool, lost: bool) -> None:
        """Book-keeping after a task's report settles (or is lost).

        Shared by the synchronous report path and the batch reporter;
        the owned count must only drop here, after the report, because
        it drives the fetch policy.
        """
        if self._trace is not None:
            self._trace.task_stop(
                self._eqsql.clock.now(), eq_task_id, source=self.name
            )
        journal = self._jrnl()
        if journal.enabled:
            journal.emit(
                EV_REPORT,
                eq_task_id,
                role=ROLE_POOL,
                work_type=self._config.work_type,
                source=self.name,
                time=self._eqsql.clock.now(),
                extra={"lost": True} if lost else None,
            )
        with self._owned_lock:
            self._owned -= 1
            self._owned_ids.discard(eq_task_id)
        with self._stats_lock:
            if lost:
                self.reports_lost += 1
            elif failed:
                self.tasks_failed += 1
            else:
                self.tasks_completed += 1
        if not lost:
            (self._m_failed if failed else self._m_completed).inc()

    # -- context manager ----------------------------------------------------------------

    def __enter__(self) -> "ThreadedWorkerPool":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class _BatchReporter:
    """Shared result reporter: workers enqueue, one flusher reports.

    Batches are flushed at ``report_batch_size`` results or after
    ``report_linger`` seconds, whichever comes first — the linger bounds
    how long a lone result waits, the size bounds memory and RPC-frame
    growth.  The linger uses wall-clock time (not the pool's injected
    clock): it paces a real background thread, and a virtual clock would
    make ``queue.Queue`` timeouts meaningless.

    If the batch RPC fails, the flusher falls back to per-item reports
    (``report`` is first-write-wins idempotent, so items the broken
    batch may already have applied re-send safely); only items whose
    individual report also fails count as lost.
    """

    def __init__(self, pool: ThreadedWorkerPool) -> None:
        self._pool = pool
        self._batch_size = pool.config.report_batch_size
        self._linger = pool.config.report_linger
        self._q: "queue.Queue[tuple[int, str, bool, float, dict | None]]" = (
            queue.Queue()
        )
        self._stop_event = threading.Event()
        self._discard = False
        self._started = False
        self._thread = threading.Thread(
            target=self._run, name=f"{pool.name}-reporter", daemon=True
        )

    def start(self) -> None:
        self._started = True
        self._thread.start()

    def submit(
        self,
        eq_task_id: int,
        result: str,
        failed: bool,
        ran_at: float,
        profile: dict | None = None,
    ) -> None:
        """Enqueue one completed task's result for the next flush."""
        self._q.put((eq_task_id, result, failed, ran_at, profile))

    def stop(self, discard: bool = False, timeout: float = 30.0) -> None:
        """Stop the flusher; drains the queue first unless ``discard``."""
        self._discard = discard
        self._stop_event.set()
        if self._started:
            self._thread.join(timeout)

    def _run(self) -> None:
        while True:
            if self._discard:
                return
            try:
                first = self._q.get(timeout=0.05)
            except queue.Empty:
                if self._stop_event.is_set():
                    return
                continue
            batch = [first]
            # Linger for more results unless shutting down (then flush
            # whatever arrived immediately).
            deadline = time.monotonic() + self._linger
            while len(batch) < self._batch_size and not self._stop_event.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._q.get(timeout=remaining))
                except queue.Empty:
                    break
            self._flush(batch)

    def _flush(self, batch: list[tuple[int, str, bool, float, dict | None]]) -> None:
        pool = self._pool
        work_type = pool.config.work_type
        tracer = pool.tracer
        reports = [(tid, work_type, result) for tid, result, _f, _r, _p in batch]
        profiles = {
            tid: profile for tid, _res, _f, _r, profile in batch if profile
        } or None
        lost_ids: set[int] = set()
        try:
            if tracer.enabled:
                with tracer.span(
                    "pool.report_batch",
                    component="pool",
                    pool=pool.name,
                    n=len(batch),
                ):
                    pool._eqsql.report_tasks(reports, profiles=profiles)
            else:
                pool._eqsql.report_tasks(reports, profiles=profiles)
        except (ReproError, OSError):
            for tid, result, _failed, _ran, profile in batch:
                try:
                    pool._eqsql.report_task(tid, work_type, result, profile=profile)
                except (ReproError, OSError) as exc:
                    lost_ids.add(tid)
                    pool._m_report_errors.inc()
                    log_event(
                        _log, "pool.report_error", level=30,
                        pool=pool.name, eq_task_id=tid, error=str(exc),
                    )
        now = pool._eqsql.clock.now()
        for tid, _result, failed, ran_at, _profile in batch:
            lost = tid in lost_ids
            if not lost:
                pool._m_report.observe(now - ran_at)
            pool._finalize(tid, failed=failed, lost=lost)

"""Worker pool configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fetch import FetchPolicy
from repro.util.ids import short_id


@dataclass
class PoolConfig:
    """Configuration for a worker pool.

    ``batch_size`` defaults to ``n_workers`` (the Fig 3 middle-panel
    regime: every owned task is immediately runnable); set it above
    ``n_workers`` to oversubscribe (top panel), and raise ``threshold``
    to delay fetching until a larger deficit accumulates (bottom panel).
    """

    work_type: int
    n_workers: int = 4
    batch_size: int | None = None
    threshold: int = 1
    name: str = field(default_factory=lambda: short_id("pool"))
    #: Sleep between fetch attempts when the policy says not to fetch
    #: or the queue is empty.
    poll_delay: float = 0.02
    #: Timeout for each individual batch query against the DB.
    query_timeout: float = 0.0
    #: Long-poll bound (seconds) for fetches against a wait-capable
    #: store: each empty batch query blocks server-side this long and
    #: returns the instant work arrives, replacing the ``poll_delay``
    #: sleep loop — an idle pool goes from ~1/poll_delay RPCs per second
    #: to ~1/fetch_wait, while dispatch latency *drops* to the RPC round
    #: trip.  Also bounds how long ``stop()`` can block on a fetch in
    #: flight against a remote store (in-process stores wake instantly).
    #: Set to 0 to force the legacy sleep-polling behaviour.
    fetch_wait: float = 0.5
    #: Fault-tolerance lease (seconds) the pool claims tasks under.
    #: ``None`` claims unleased (a crashed pool's tasks then need manual
    #: ``recover_pool``); with a lease, the pool heartbeats renewals and
    #: a lease reaper requeues its tasks automatically if it dies.
    #: Must comfortably exceed ``heartbeat_interval``.
    lease_duration: float | None = None
    #: Seconds between lease-renewal heartbeats; defaults to a third of
    #: ``lease_duration`` so two consecutive heartbeats can be lost
    #: before the lease lapses.
    heartbeat_interval: float | None = None
    #: Results per shared-reporter flush.  At the default of 1 each
    #: worker reports its own result synchronously (the pre-batching
    #: behaviour); above 1 workers enqueue results and a single flusher
    #: thread reports them in one ``report_batch`` RPC — the round trip
    #: is paid once per flush, not once per task.
    report_batch_size: int = 1
    #: Max seconds the reporter lingers waiting to fill a batch before
    #: flushing what it has, so single-task latency stays bounded even
    #: when results trickle in.  Only meaningful with
    #: ``report_batch_size > 1``.
    report_linger: float = 0.05
    #: Wrap each task execution in a resource profile (wall/CPU/RSS,
    #: see :mod:`repro.telemetry.profiling`) attached to its report and
    #: journal run_end.  Off by default: the disabled path must stay
    #: within noise of a pool without profiling.
    profile_tasks: bool = False
    #: Additionally sample the tracemalloc allocation peak per task.
    #: Requires ``profile_tasks``; taxes every allocation, so it is a
    #: debugging mode, not a fleet default.
    profile_memory: bool = False
    #: Seconds between fleet telemetry pushes to the service (the
    #: ``telemetry`` RPC).  ``None`` (default) disables pushing.
    telemetry_interval: float | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.batch_size is None:
            self.batch_size = self.n_workers
        if self.lease_duration is not None:
            if self.lease_duration <= 0:
                raise ValueError(
                    f"lease_duration must be positive, got {self.lease_duration}"
                )
            if self.heartbeat_interval is None:
                self.heartbeat_interval = self.lease_duration / 3.0
            if not 0 < self.heartbeat_interval < self.lease_duration:
                raise ValueError(
                    f"heartbeat_interval ({self.heartbeat_interval}) must be in"
                    f" (0, lease_duration={self.lease_duration})"
                )
        elif self.heartbeat_interval is not None:
            raise ValueError("heartbeat_interval requires lease_duration")
        if self.fetch_wait < 0:
            raise ValueError(
                f"fetch_wait must be >= 0, got {self.fetch_wait}"
            )
        if self.report_batch_size < 1:
            raise ValueError(
                f"report_batch_size must be >= 1, got {self.report_batch_size}"
            )
        if self.report_linger <= 0:
            raise ValueError(
                f"report_linger must be positive, got {self.report_linger}"
            )
        if self.profile_memory and not self.profile_tasks:
            raise ValueError("profile_memory requires profile_tasks")
        if self.telemetry_interval is not None and self.telemetry_interval <= 0:
            raise ValueError(
                f"telemetry_interval must be positive, got {self.telemetry_interval}"
            )
        # Validates batch/threshold bounds.
        self.policy()

    def policy(self) -> FetchPolicy:
        """The pool's fetch policy object."""
        assert self.batch_size is not None
        return FetchPolicy(batch_size=self.batch_size, threshold=self.threshold)

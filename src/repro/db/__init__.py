"""The EMEWS task database substrate (paper §IV-C).

A resource-local SQL database with five linked tables — tasks, output
queue, input queue, experiments, tags — that provides the foundation for
fault-tolerant task queueing: tasks live in the database, not in the ME
process, so a resource failure loses no work.

Two interchangeable backends implement the same :class:`TaskStore`
contract:

- :class:`SqliteTaskStore` — the durable engine (stdlib ``sqlite3``,
  substituting for the paper's PostgreSQL; the schema and semantics are
  engine-agnostic).
- :class:`MemoryTaskStore` — a pure-Python engine used by the
  discrete-event simulations and micro-benchmarks.

Both pass one shared conformance test suite.
"""

from repro.db.schema import TaskStatus, TaskRow, SCHEMA_STATEMENTS
from repro.db.backend import TaskStore
from repro.db.memory_backend import MemoryTaskStore
from repro.db.sqlite_backend import SqliteTaskStore

__all__ = [
    "TaskStatus",
    "TaskRow",
    "SCHEMA_STATEMENTS",
    "TaskStore",
    "MemoryTaskStore",
    "SqliteTaskStore",
]

"""SQLite EMEWS DB backend.

The durable engine: the same five-table schema the paper describes for
PostgreSQL (see :mod:`repro.db.schema`), on stdlib ``sqlite3``.  One
connection is shared across threads behind a re-entrant lock — worker
pools, the EMEWS service, and the ME algorithm all touch the store
concurrently, and SQLite serializes writers anyway, so a Python-level
lock is both necessary (``check_same_thread=False``) and free of
additional contention cost.

Every public operation is one transaction; the pop path uses
``DELETE ... RETURNING``-free portable SQL (select + delete + update in
one ``BEGIN IMMEDIATE`` block) so two pools can never pop the same task.

Throughput tuning (documented trade-offs):

- File-backed stores default to ``PRAGMA journal_mode=WAL`` with
  ``synchronous=NORMAL``: commits append to the write-ahead log instead
  of rewriting pages through a rollback journal, and fsyncs happen at
  WAL checkpoints rather than per transaction.  WAL mode is durable
  against *process* crashes; an OS/power failure can lose the most
  recent commits (the database never corrupts — it rolls back to the
  last checkpointed state).  Task rows are recoverable work, not
  financial ledger entries, so this is the right default; pass
  ``durable=True`` for rollback-journal + ``synchronous=FULL``
  semantics where every commit must survive power loss.
- Batch operations (``create_tasks``, ``report_batch``,
  ``update_priorities``) run set-based SQL / ``executemany`` inside a
  single transaction — one commit per batch, not per row.
- One cursor is cached and reused for every operation (the connection
  and cursor live behind the store lock anyway), keeping the hot
  pop/report path free of per-call cursor allocation; sqlite3's
  per-connection statement cache then makes repeated SQL a lookup, not
  a re-parse.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from collections.abc import Iterable, Mapping, Sequence
from contextlib import contextmanager

from repro.db.backend import TaskStore, normalize_priorities, normalize_profiles
from repro.db.schema import SCHEMA_STATEMENTS, TABLE_NAMES, TaskRow, TaskStatus
from repro.telemetry.journal import (
    EV_CANCEL,
    EV_ENQUEUE,
    EV_LEASE_RENEW,
    EV_POP,
    EV_REPORT,
    EV_REQUEUE,
    EV_WITHDRAW,
    ROLE_DB,
    Journal,
    get_journal,
)
from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.util.errors import NotFoundError


class SqliteTaskStore(TaskStore):
    """EMEWS DB on SQLite (file-backed or ``:memory:``).

    Long-poll waits use the same in-process condition variables as the
    memory backend, so embedded use (pools and ME sharing one store
    object) gets instant wake-ups.  A *different process* writing the
    same database file can't signal this process's condvars, so waits
    additionally re-check the tables every ``wait_poll_interval``
    seconds — a degraded mode that still beats the old client-side poll
    (the default interval is well under the former per-attempt delays,
    and the re-check is a single indexed SELECT, not an RPC).
    """

    supports_wait = True

    def __init__(
        self,
        path: str = ":memory:",
        metrics: MetricsRegistry | None = None,
        *,
        durable: bool = False,
        journal: Journal | None = None,
        wait_poll_interval: float = 0.05,
        cache_capacity: int = 512,
    ) -> None:
        if cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1, got {cache_capacity}")
        registry = metrics if metrics is not None else get_metrics()
        # Flight recorder: resolved per call when not injected, so a
        # later configure_journal() is picked up (tracer discipline).
        self._journal = journal
        self._m_lease_renewals = registry.counter(
            "db.lease_renewals", "task leases extended by a heartbeat"
        )
        self._m_lease_requeues = registry.counter(
            "db.lease_requeues", "expired-lease tasks requeued by a reaper sweep"
        )
        self._m_report_withdrawals = registry.counter(
            "db.report_withdrawals",
            "requeued copies withdrawn because the original report landed",
        )
        self._m_cache_hit = registry.counter(
            "cache.hit", "result-cache lookups answered from the cache"
        )
        self._m_cache_miss = registry.counter(
            "cache.miss", "result-cache lookups that found nothing live"
        )
        self._m_cache_insert = registry.counter(
            "cache.insert", "result-cache entries written"
        )
        self._m_cache_evict = registry.counter(
            "cache.evict", "result-cache entries evicted by the LRU bound"
        )
        self._path = path
        self._durable = durable
        self._wait_poll = max(wait_poll_interval, 0.001)
        self._lock = threading.RLock()
        # Long-poll conditions share the store lock (see memory backend);
        # per-work-type for pop_out, one for the input queue.
        self._out_conds: dict[int, threading.Condition] = {}
        self._in_cond = threading.Condition(self._lock)
        self._wake_epoch = 0
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.isolation_level = None  # explicit transaction control
        # One cached cursor serves every operation: all access is
        # serialized behind the store lock and every query fetches
        # eagerly, so reuse is safe and the hot pop/report path skips a
        # cursor allocation per call.
        self._cursor = self._conn.cursor()
        if not durable and path != ":memory:":
            # WAL + NORMAL: commit = one WAL append, fsync deferred to
            # checkpoints.  See the module docstring for the durability
            # trade-off; ``durable=True`` opts back out.  ``:memory:``
            # databases have no journal to tune.
            self._cursor.execute("PRAGMA journal_mode=WAL")
            self._cursor.fetchall()
            self._cursor.execute("PRAGMA synchronous=NORMAL")
        with self._txn() as cur:
            # Pre-lease database files lack the lease_expiry column;
            # CREATE TABLE IF NOT EXISTS won't add it, so migrate first
            # (reattaching to a durable file is a supported fault path).
            cur.execute("PRAGMA table_info(eq_tasks)")
            columns = {row[1] for row in cur.fetchall()}
            if columns and "lease_expiry" not in columns:
                cur.execute("ALTER TABLE eq_tasks ADD COLUMN lease_expiry REAL")
            if columns and "eq_priority" not in columns:
                # Pre-sticky-priority files: backfill the task-row copy
                # of the priority (0 matches the old requeue behavior
                # for existing rows; queued rows keep their live
                # emews_queue_out priority regardless).
                cur.execute(
                    "ALTER TABLE eq_tasks ADD COLUMN eq_priority"
                    " INTEGER NOT NULL DEFAULT 0"
                )
            for stmt in SCHEMA_STATEMENTS:
                cur.execute(stmt)
            # Result-cache LRU ordering is a monotonic use counter; on a
            # reopened file resume past the highest persisted value.
            cur.execute("SELECT COALESCE(MAX(last_used), 0) FROM eq_task_cache")
            self._cache_use = int(cur.fetchone()[0])
        self._cache_capacity = cache_capacity
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_inserts = 0
        self._cache_evictions = 0
        self._closed = False

    @property
    def path(self) -> str:
        """The database file path (``:memory:`` for transient stores)."""
        return self._path

    @property
    def durable(self) -> bool:
        """True when the store runs rollback-journal + synchronous=FULL
        (the ``durable=True`` opt-out of the WAL default)."""
        return self._durable

    @contextmanager
    def _txn(self):
        """One locked transaction; rolls back on error, commits on success."""
        with self._lock:
            cur = self._cursor
            try:
                cur.execute("BEGIN IMMEDIATE")
                yield cur
                cur.execute("COMMIT")
            except BaseException:
                cur.execute("ROLLBACK")
                raise

    @contextmanager
    def _read(self):
        """A locked read-only cursor (no transaction frame needed)."""
        with self._lock:
            yield self._cursor

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("store is closed")

    def _out_cond(self, eq_type: int) -> threading.Condition:
        """The per-work-type output-queue condition (call under the lock)."""
        cond = self._out_conds.get(eq_type)
        if cond is None:
            cond = self._out_conds[eq_type] = threading.Condition(self._lock)
        return cond

    def _notify_out(self, eq_type: int) -> None:
        """Wake pop_out long-polls for ``eq_type`` (call under the lock).

        Called inside the writing transaction; waiters can't reacquire
        the shared lock until the COMMIT completes, so they always see
        the committed rows.
        """
        cond = self._out_conds.get(eq_type)
        if cond is not None:
            cond.notify_all()

    def _jrnl(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    # -- task creation -----------------------------------------------------

    def _insert_task(
        self,
        cur: sqlite3.Cursor,
        exp_id: str,
        eq_type: int,
        payload: str,
        priority: int,
        tag: str | None,
        time_created: float,
    ) -> int:
        cur.execute(
            "INSERT INTO eq_tasks (eq_task_type, eq_status, json_out, time_created,"
            " eq_priority) VALUES (?, ?, ?, ?, ?)",
            (eq_type, int(TaskStatus.QUEUED), payload, time_created, priority),
        )
        eq_task_id = cur.lastrowid
        assert eq_task_id is not None
        cur.execute(
            "INSERT INTO eq_exp_id_tasks (exp_id, eq_task_id) VALUES (?, ?)",
            (exp_id, eq_task_id),
        )
        if tag is not None:
            cur.execute(
                "INSERT INTO eq_task_tags (eq_task_id, tag) VALUES (?, ?)",
                (eq_task_id, tag),
            )
        cur.execute(
            "INSERT INTO emews_queue_out (eq_task_id, eq_task_type, eq_priority)"
            " VALUES (?, ?, ?)",
            (eq_task_id, eq_type, priority),
        )
        self._notify_out(eq_type)
        journal = self._jrnl()
        if journal.enabled:
            journal.emit(
                EV_ENQUEUE, eq_task_id, role=ROLE_DB, work_type=eq_type,
                time=time_created, extra={"exp_id": exp_id, "priority": priority},
            )
        return eq_task_id

    def create_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        *,
        priority: int = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> int:
        self._check_open()
        with self._txn() as cur:
            return self._insert_task(cur, exp_id, eq_type, payload, priority, tag, time_created)

    def create_tasks(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        *,
        priority: int | Sequence[int] = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> list[int]:
        self._check_open()
        priorities = normalize_priorities(len(payloads), priority)
        if not payloads:
            return []
        with self._txn() as cur:
            # Pre-allocate the id range so every table loads via one
            # executemany instead of four round trips per task.
            # eq_task_id is the rowid (INTEGER PRIMARY KEY), so explicit
            # MAX+1.. ids keep later implicit allocation consistent.
            cur.execute("SELECT COALESCE(MAX(eq_task_id), 0) FROM eq_tasks")
            next_id = int(cur.fetchone()[0]) + 1
            ids = list(range(next_id, next_id + len(payloads)))
            cur.executemany(
                "INSERT INTO eq_tasks (eq_task_id, eq_task_type, eq_status,"
                " json_out, time_created, eq_priority) VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (tid, eq_type, int(TaskStatus.QUEUED), p, time_created, pr)
                    for tid, p, pr in zip(ids, payloads, priorities)
                ],
            )
            cur.executemany(
                "INSERT INTO eq_exp_id_tasks (exp_id, eq_task_id) VALUES (?, ?)",
                [(exp_id, tid) for tid in ids],
            )
            if tag is not None:
                cur.executemany(
                    "INSERT INTO eq_task_tags (eq_task_id, tag) VALUES (?, ?)",
                    [(tid, tag) for tid in ids],
                )
            cur.executemany(
                "INSERT INTO emews_queue_out (eq_task_id, eq_task_type, eq_priority)"
                " VALUES (?, ?, ?)",
                [(tid, eq_type, pr) for tid, pr in zip(ids, priorities)],
            )
            self._notify_out(eq_type)
            journal = self._jrnl()
            if journal.enabled:
                for tid, pr in zip(ids, priorities):
                    journal.emit(
                        EV_ENQUEUE, tid, role=ROLE_DB, work_type=eq_type,
                        time=time_created,
                        extra={"exp_id": exp_id, "priority": pr},
                    )
            return ids

    # -- output queue --------------------------------------------------------

    def pop_out(
        self,
        eq_type: int,
        n: int = 1,
        *,
        worker_pool: str = "default",
        now: float = 0.0,
        lease: float | None = None,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        self._check_open()
        if n < 1:
            return []
        if wait is not None and wait > 0:
            # Long-poll: same-process writers notify the per-type cond;
            # cross-process writers are caught by the bounded re-check
            # interval (degraded mode, see the class docstring).
            deadline = time.monotonic() + wait
            with self._lock:
                cond = self._out_cond(eq_type)
                epoch = self._wake_epoch
                while True:
                    popped = self.pop_out(
                        eq_type, n, worker_pool=worker_pool, now=now, lease=lease
                    )
                    if popped:
                        return popped
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._wake_epoch != epoch:
                        return []
                    cond.wait(min(remaining, self._wait_poll))
                    self._check_open()
        lease_expiry = None if lease is None else now + lease
        with self._txn() as cur:
            cur.execute(
                "SELECT eq_task_id FROM emews_queue_out WHERE eq_task_type = ?"
                " ORDER BY eq_priority DESC, eq_task_id ASC LIMIT ?",
                (eq_type, n),
            )
            ids = [row[0] for row in cur.fetchall()]
            if not ids:
                return []
            marks = ",".join("?" for _ in ids)
            cur.execute(
                f"DELETE FROM emews_queue_out WHERE eq_task_id IN ({marks})", ids
            )
            cur.execute(
                f"UPDATE eq_tasks SET eq_status = ?, time_start = ?, worker_pool = ?,"
                f" lease_expiry = ? WHERE eq_task_id IN ({marks})",
                [int(TaskStatus.RUNNING), now, worker_pool, lease_expiry, *ids],
            )
            cur.execute(
                f"SELECT eq_task_id, json_out FROM eq_tasks WHERE eq_task_id IN ({marks})"
                " ORDER BY eq_task_id",
                ids,
            )
            by_id = dict(cur.fetchall())
            journal = self._jrnl()
            if journal.enabled:
                for tid in ids:
                    journal.emit(
                        EV_POP, tid, role=ROLE_DB, work_type=eq_type,
                        time=now, source=worker_pool,
                        extra=None if lease is None else {"lease": lease},
                    )
            # Preserve priority pop order, not id order.
            return [(tid, by_id[tid]) for tid in ids]

    def queue_out_length(self, eq_type: int | None = None) -> int:
        with self._read() as cur:
            if eq_type is None:
                cur.execute("SELECT COUNT(*) FROM emews_queue_out")
            else:
                cur.execute(
                    "SELECT COUNT(*) FROM emews_queue_out WHERE eq_task_type = ?",
                    (eq_type,),
                )
            return int(cur.fetchone()[0])

    # -- input queue ----------------------------------------------------------

    def report(
        self,
        eq_task_id: int,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        profile: dict | None = None,
    ) -> None:
        self._check_open()
        with self._txn() as cur:
            # Idempotent: only a not-yet-COMPLETE row accepts a result
            # (first report wins), so a retried or duplicate report can
            # neither overwrite the stored result nor enqueue a second
            # input-queue row.
            cur.execute(
                "UPDATE eq_tasks SET json_in = ?, eq_status = ?, time_stop = ?,"
                " lease_expiry = NULL WHERE eq_task_id = ? AND eq_status != ?",
                (result, int(TaskStatus.COMPLETE), now, eq_task_id,
                 int(TaskStatus.COMPLETE)),
            )
            if cur.rowcount == 0:
                cur.execute(
                    "SELECT 1 FROM eq_tasks WHERE eq_task_id = ?", (eq_task_id,)
                )
                if cur.fetchone() is None:
                    raise NotFoundError(f"no task with id {eq_task_id}")
                return  # duplicate report of a COMPLETE task: no-op
            # If the task was requeued (lease expiry racing a slow pool's
            # report), withdraw the queued copy — the output queue must
            # hold only QUEUED tasks, and this result makes re-execution
            # pointless.
            cur.execute(
                "DELETE FROM emews_queue_out WHERE eq_task_id = ?", (eq_task_id,)
            )
            withdrew = cur.rowcount
            if withdrew:
                self._m_report_withdrawals.inc(withdrew)
            cur.execute(
                "INSERT INTO emews_queue_in (eq_task_id, eq_task_type) VALUES (?, ?)",
                (eq_task_id, eq_type),
            )
            self._in_cond.notify_all()  # wake pop_in_any long-polls
            journal = self._jrnl()
            if journal.enabled:
                cur.execute(
                    "SELECT worker_pool FROM eq_tasks WHERE eq_task_id = ?",
                    (eq_task_id,),
                )
                pool_row = cur.fetchone()
                source = pool_row[0] if pool_row and pool_row[0] else ""
                if withdrew:
                    journal.emit(
                        EV_WITHDRAW, eq_task_id, role=ROLE_DB,
                        work_type=eq_type, time=now,
                    )
                journal.emit(
                    EV_REPORT, eq_task_id, role=ROLE_DB, work_type=eq_type,
                    time=now, source=source,
                    extra={"profile": profile} if profile else None,
                )

    def report_batch(
        self,
        reports: Sequence[tuple[int, int, str]],
        *,
        now: float = 0.0,
        profiles: Mapping[int, dict] | None = None,
    ) -> None:
        self._check_open()
        if not reports:
            return
        ids = [tid for tid, _, _ in reports]
        marks = ",".join("?" for _ in ids)
        with self._txn() as cur:
            cur.execute(
                f"SELECT eq_task_id, eq_status FROM eq_tasks"
                f" WHERE eq_task_id IN ({marks})",
                ids,
            )
            status_by_id = dict(cur.fetchall())
            missing = sorted({tid for tid in ids if tid not in status_by_id})
            missing_set = set(missing)
            # First write wins — across the batch and within it: skip
            # already-COMPLETE rows and duplicate ids after their first
            # occurrence, mirroring N sequential report() calls.
            fresh: list[tuple[int, int, str]] = []
            seen: set[int] = set()
            for tid, eq_type, result in reports:
                if tid in seen or tid in missing_set:
                    continue
                seen.add(tid)
                if status_by_id[tid] != int(TaskStatus.COMPLETE):
                    fresh.append((tid, eq_type, result))
            if fresh:
                journal = self._jrnl()
                withdrawn: set[int] = set()
                if journal.enabled:
                    # Which of these reports will withdraw a requeued
                    # copy?  Only knowable before the DELETE — gated on
                    # the journal so the hot path pays nothing extra.
                    fmarks = ",".join("?" for _ in fresh)
                    cur.execute(
                        f"SELECT eq_task_id FROM emews_queue_out"
                        f" WHERE eq_task_id IN ({fmarks})",
                        [tid for tid, _, _ in fresh],
                    )
                    withdrawn = {row[0] for row in cur.fetchall()}
                cur.executemany(
                    "UPDATE eq_tasks SET json_in = ?, eq_status = ?,"
                    " time_stop = ?, lease_expiry = NULL WHERE eq_task_id = ?",
                    [
                        (result, int(TaskStatus.COMPLETE), now, tid)
                        for tid, _, result in fresh
                    ],
                )
                fmarks = ",".join("?" for _ in fresh)
                cur.execute(
                    f"DELETE FROM emews_queue_out WHERE eq_task_id IN ({fmarks})",
                    [tid for tid, _, _ in fresh],
                )
                if cur.rowcount:
                    self._m_report_withdrawals.inc(cur.rowcount)
                cur.executemany(
                    "INSERT INTO emews_queue_in (eq_task_id, eq_task_type)"
                    " VALUES (?, ?)",
                    [(tid, eq_type) for tid, eq_type, _ in fresh],
                )
                self._in_cond.notify_all()  # wake pop_in_any long-polls
                if journal.enabled:
                    profile_by_id = normalize_profiles(profiles)
                    for tid, eq_type, _ in fresh:
                        if tid in withdrawn:
                            journal.emit(
                                EV_WITHDRAW, tid, role=ROLE_DB,
                                work_type=eq_type, time=now,
                            )
                        profile = profile_by_id.get(tid)
                        journal.emit(
                            EV_REPORT, tid, role=ROLE_DB, work_type=eq_type,
                            time=now,
                            extra={"profile": profile} if profile else None,
                        )
        if missing:
            raise NotFoundError(f"no task(s) with id(s) {missing}")

    def pop_in(self, eq_task_id: int) -> str | None:
        self._check_open()
        with self._txn() as cur:
            cur.execute(
                "DELETE FROM emews_queue_in WHERE eq_task_id = ?", (eq_task_id,)
            )
            if cur.rowcount == 0:
                return None
            cur.execute(
                "SELECT json_in FROM eq_tasks WHERE eq_task_id = ?", (eq_task_id,)
            )
            row = cur.fetchone()
            return row[0] if row is not None else None

    def pop_in_any(
        self,
        eq_task_ids: Iterable[int],
        limit: int | None = None,
        *,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        self._check_open()
        ids = list(eq_task_ids)
        if not ids:
            return []
        if limit is not None and limit <= 0:
            return []
        if wait is not None and wait > 0:
            deadline = time.monotonic() + wait
            with self._lock:
                epoch = self._wake_epoch
                while True:
                    results = self.pop_in_any(ids, limit)
                    if results:
                        return results
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._wake_epoch != epoch:
                        return []
                    self._in_cond.wait(min(remaining, self._wait_poll))
                    self._check_open()
        marks = ",".join("?" for _ in ids)
        with self._txn() as cur:
            cur.execute(
                f"SELECT q.eq_task_id, t.json_in FROM emews_queue_in q"
                f" JOIN eq_tasks t ON t.eq_task_id = q.eq_task_id"
                f" WHERE q.eq_task_id IN ({marks})",
                ids,
            )
            found = cur.fetchall()
            if not found:
                return []
            if limit is not None:
                # Respect the caller's id order when limiting.
                by_id_all = dict(found)
                ordered = [tid for tid in ids if tid in by_id_all][:limit]
                found = [(tid, by_id_all[tid]) for tid in ordered]
            found_ids = [row[0] for row in found]
            fmarks = ",".join("?" for _ in found_ids)
            cur.execute(
                f"DELETE FROM emews_queue_in WHERE eq_task_id IN ({fmarks})", found_ids
            )
            # Preserve the caller's id order for determinism.
            by_id = {tid: (json_in if json_in is not None else "") for tid, json_in in found}
            return [(tid, by_id[tid]) for tid in ids if tid in by_id]

    def queue_in_length(self) -> int:
        with self._read() as cur:
            cur.execute("SELECT COUNT(*) FROM emews_queue_in")
            return int(cur.fetchone()[0])

    # -- status / priority / cancellation --------------------------------------

    def get_task(self, eq_task_id: int) -> TaskRow:
        self._check_open()
        with self._read() as cur:
            cur.execute(
                "SELECT eq_task_id, eq_task_type, eq_status, worker_pool, json_out,"
                " json_in, time_created, time_start, time_stop, lease_expiry,"
                " eq_priority FROM eq_tasks WHERE eq_task_id = ?",
                (eq_task_id,),
            )
            row = cur.fetchone()
            if row is None:
                raise NotFoundError(f"no task with id {eq_task_id}")
            cur.execute(
                "SELECT tag FROM eq_task_tags WHERE eq_task_id = ?", (eq_task_id,)
            )
            tags = [r[0] for r in cur.fetchall()]
        return TaskRow(
            eq_task_id=row[0],
            eq_task_type=row[1],
            eq_status=TaskStatus(row[2]),
            worker_pool=row[3],
            json_out=row[4],
            json_in=row[5],
            time_created=row[6],
            time_start=row[7],
            time_stop=row[8],
            lease_expiry=row[9],
            eq_priority=row[10],
            tags=tags,
        )

    def get_statuses(self, eq_task_ids: Sequence[int]) -> list[tuple[int, TaskStatus]]:
        if not eq_task_ids:
            return []
        marks = ",".join("?" for _ in eq_task_ids)
        with self._read() as cur:
            cur.execute(
                f"SELECT eq_task_id, eq_status FROM eq_tasks WHERE eq_task_id IN ({marks})",
                list(eq_task_ids),
            )
            by_id = dict(cur.fetchall())
        return [
            (tid, TaskStatus(by_id[tid])) for tid in eq_task_ids if tid in by_id
        ]

    def get_priorities(self, eq_task_ids: Sequence[int]) -> list[tuple[int, int]]:
        if not eq_task_ids:
            return []
        marks = ",".join("?" for _ in eq_task_ids)
        with self._read() as cur:
            cur.execute(
                f"SELECT eq_task_id, eq_priority FROM emews_queue_out"
                f" WHERE eq_task_id IN ({marks})",
                list(eq_task_ids),
            )
            by_id = dict(cur.fetchall())
        return [(tid, by_id[tid]) for tid in eq_task_ids if tid in by_id]

    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: int | Sequence[int]
    ) -> int:
        self._check_open()
        values = normalize_priorities(len(eq_task_ids), priorities)
        if not eq_task_ids:
            return 0
        with self._txn() as cur:
            # executemany accumulates rowcount across the parameter set,
            # so one statement replaces the per-task UPDATE loop (the
            # GPR reprioritization touches hundreds of tasks at a time).
            cur.executemany(
                "UPDATE emews_queue_out SET eq_priority = ? WHERE eq_task_id = ?",
                [(priority, tid) for tid, priority in zip(eq_task_ids, values)],
            )
            changed = max(cur.rowcount, 0)
            # Keep the sticky task-row priority in sync for rows that
            # actually changed (i.e. were still queued), so a later
            # fault-recovery requeue restores the updated value.
            cur.executemany(
                "UPDATE eq_tasks SET eq_priority = ? WHERE eq_task_id = ?"
                " AND EXISTS (SELECT 1 FROM emews_queue_out o"
                "             WHERE o.eq_task_id = eq_tasks.eq_task_id)",
                [(priority, tid) for tid, priority in zip(eq_task_ids, values)],
            )
            return changed

    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        self._check_open()
        if not eq_task_ids:
            return 0
        marks = ",".join("?" for _ in eq_task_ids)
        ids = list(eq_task_ids)
        with self._txn() as cur:
            cur.execute(
                f"SELECT eq_task_id, eq_task_type FROM emews_queue_out"
                f" WHERE eq_task_id IN ({marks}) ORDER BY eq_task_id",
                ids,
            )
            canceled = cur.fetchall()
            if not canceled:
                return 0
            queued = [row[0] for row in canceled]
            qmarks = ",".join("?" for _ in queued)
            cur.execute(
                f"DELETE FROM emews_queue_out WHERE eq_task_id IN ({qmarks})", queued
            )
            cur.execute(
                f"UPDATE eq_tasks SET eq_status = ? WHERE eq_task_id IN ({qmarks})",
                [int(TaskStatus.CANCELED), *queued],
            )
            journal = self._jrnl()
            if journal.enabled:
                for tid, eq_type in canceled:
                    journal.emit(EV_CANCEL, tid, role=ROLE_DB, work_type=eq_type)
            return len(queued)

    def requeue(self, eq_task_id: int, *, priority: int | None = None) -> bool:
        self._check_open()
        with self._txn() as cur:
            cur.execute(
                "SELECT eq_task_type, eq_status, eq_priority FROM eq_tasks"
                " WHERE eq_task_id = ?",
                (eq_task_id,),
            )
            row = cur.fetchone()
            if row is None:
                raise NotFoundError(f"no task with id {eq_task_id}")
            eq_type, status, sticky = row
            if TaskStatus(status) != TaskStatus.RUNNING:
                return False
            effective = sticky if priority is None else priority
            self._requeue_in_txn(cur, eq_task_id, eq_type, effective)
            return True

    def _requeue_in_txn(
        self,
        cur: sqlite3.Cursor,
        eq_task_id: int,
        eq_type: int,
        priority: int,
        *,
        now: float | None = None,
    ) -> None:
        """Move a RUNNING row back to QUEUED (call inside a transaction).

        ``priority`` is already resolved by the caller (sticky value or
        an explicit override); it becomes the row's new sticky priority.
        """
        journal = self._jrnl()
        source = ""
        if journal.enabled:
            cur.execute(
                "SELECT worker_pool FROM eq_tasks WHERE eq_task_id = ?",
                (eq_task_id,),
            )
            pool_row = cur.fetchone()
            source = pool_row[0] if pool_row and pool_row[0] else ""
        cur.execute(
            "UPDATE eq_tasks SET eq_status = ?, worker_pool = NULL,"
            " time_start = NULL, lease_expiry = NULL, eq_priority = ?"
            " WHERE eq_task_id = ?",
            (int(TaskStatus.QUEUED), priority, eq_task_id),
        )
        cur.execute(
            "INSERT INTO emews_queue_out (eq_task_id, eq_task_type, eq_priority)"
            " VALUES (?, ?, ?)",
            (eq_task_id, eq_type, priority),
        )
        self._notify_out(eq_type)
        if journal.enabled:
            journal.emit(
                EV_REQUEUE, eq_task_id, role=ROLE_DB, work_type=eq_type,
                time=now, source=source,
                extra={"priority": priority},
            )

    # -- leases ------------------------------------------------------------------

    def renew_leases(
        self, eq_task_ids: Sequence[int], *, now: float, lease: float
    ) -> int:
        self._check_open()
        ids = list(eq_task_ids)
        if not ids:
            return 0
        marks = ",".join("?" for _ in ids)
        with self._txn() as cur:
            journal = self._jrnl()
            renewed_rows: list[tuple[int, int, str | None]] = []
            if journal.enabled:
                # Which ids will actually renew?  The UPDATE's rowcount
                # can't say per-id, so look first — gated on the journal
                # to keep the heartbeat hot path one statement.
                cur.execute(
                    f"SELECT eq_task_id, eq_task_type, worker_pool FROM eq_tasks"
                    f" WHERE eq_task_id IN ({marks}) AND eq_status = ?",
                    [*ids, int(TaskStatus.RUNNING)],
                )
                renewed_rows = cur.fetchall()
            cur.execute(
                f"UPDATE eq_tasks SET lease_expiry = ?"
                f" WHERE eq_task_id IN ({marks}) AND eq_status = ?",
                [now + lease, *ids, int(TaskStatus.RUNNING)],
            )
            renewed = cur.rowcount
            if renewed:
                self._m_lease_renewals.inc(renewed)
            if journal.enabled:
                for tid, eq_type, pool in renewed_rows:
                    journal.emit(
                        EV_LEASE_RENEW, tid, role=ROLE_DB, work_type=eq_type,
                        time=now, source=pool or "",
                    )
            return renewed

    def requeue_expired(
        self, *, now: float, priority: int | None = None
    ) -> list[int]:
        self._check_open()
        with self._txn() as cur:
            cur.execute(
                "SELECT eq_task_id, eq_task_type, eq_priority FROM eq_tasks"
                " WHERE eq_status = ? AND lease_expiry IS NOT NULL"
                " AND lease_expiry <= ? ORDER BY eq_task_id",
                (int(TaskStatus.RUNNING), now),
            )
            expired = cur.fetchall()
            for eq_task_id, eq_type, sticky in expired:
                effective = sticky if priority is None else priority
                self._requeue_in_txn(cur, eq_task_id, eq_type, effective, now=now)
            if expired:
                self._m_lease_requeues.inc(len(expired))
            return [eq_task_id for eq_task_id, _, _ in expired]

    # -- monitoring ---------------------------------------------------------------

    def stats(self, *, now: float = 0.0) -> dict:
        self._check_open()
        with self._read() as cur:
            cur.execute("SELECT eq_status, COUNT(*) FROM eq_tasks GROUP BY eq_status")
            raw_status = dict(cur.fetchall())
            cur.execute(
                "SELECT eq_task_type, COUNT(*) FROM emews_queue_out"
                " GROUP BY eq_task_type"
            )
            queue_out = {str(eq_type): int(n) for eq_type, n in cur.fetchall()}
            cur.execute("SELECT COUNT(*) FROM emews_queue_in")
            queue_in = int(cur.fetchone()[0])
            cur.execute(
                "SELECT"
                " SUM(CASE WHEN lease_expiry IS NULL THEN 1 ELSE 0 END),"
                " SUM(CASE WHEN lease_expiry > ? THEN 1 ELSE 0 END),"
                " SUM(CASE WHEN lease_expiry IS NOT NULL AND lease_expiry <= ?"
                "      THEN 1 ELSE 0 END)"
                " FROM eq_tasks WHERE eq_status = ?",
                (now, now, int(TaskStatus.RUNNING)),
            )
            unleased, active, expired = (int(v or 0) for v in cur.fetchone())
        by_status = {
            status.label(): int(raw_status.get(int(status), 0))
            for status in TaskStatus
        }
        return {
            "tasks": {**by_status, "total": sum(by_status.values())},
            "queue_out": queue_out,
            "queue_out_total": sum(queue_out.values()),
            "queue_in": queue_in,
            "leases": {
                "active": active,
                "expired": expired,
                "unleased_running": unleased,
            },
        }

    # -- result cache -------------------------------------------------------------

    def cache_get(self, cache_key: str, *, now: float = 0.0) -> str | None:
        self._check_open()
        with self._txn() as cur:
            cur.execute(
                "SELECT result, expiry FROM eq_task_cache WHERE cache_key = ?",
                (cache_key,),
            )
            row = cur.fetchone()
            if row is not None and row[1] is not None and row[1] <= now:
                # TTL lapsed: the entry is dead, drop it on touch.
                cur.execute(
                    "DELETE FROM eq_task_cache WHERE cache_key = ?", (cache_key,)
                )
                row = None
            if row is None:
                self._cache_misses += 1
                self._m_cache_miss.inc()
                return None
            self._cache_use += 1
            cur.execute(
                "UPDATE eq_task_cache SET last_used = ? WHERE cache_key = ?",
                (self._cache_use, cache_key),
            )
            self._cache_hits += 1
            self._m_cache_hit.inc()
            return row[0]

    def cache_put(
        self,
        cache_key: str,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        ttl: float | None = None,
    ) -> None:
        self._check_open()
        with self._txn() as cur:
            self._cache_use += 1
            expiry = None if ttl is None else now + ttl
            cur.execute(
                "INSERT OR REPLACE INTO eq_task_cache"
                " (cache_key, eq_task_type, result, time_created, expiry,"
                " last_used) VALUES (?, ?, ?, ?, ?, ?)",
                (cache_key, eq_type, result, now, expiry, self._cache_use),
            )
            self._cache_inserts += 1
            self._m_cache_insert.inc()
            cur.execute("SELECT COUNT(*) FROM eq_task_cache")
            overflow = int(cur.fetchone()[0]) - self._cache_capacity
            if overflow > 0:
                # LRU bound: delete the least-recently-used rows (via
                # the idx_task_cache_lru index) until capacity holds.
                cur.execute(
                    "DELETE FROM eq_task_cache WHERE cache_key IN"
                    " (SELECT cache_key FROM eq_task_cache"
                    "  ORDER BY last_used ASC LIMIT ?)",
                    (overflow,),
                )
                self._cache_evictions += overflow
                self._m_cache_evict.inc(overflow)

    def cache_stats(self) -> dict:
        with self._read() as cur:
            cur.execute("SELECT COUNT(*) FROM eq_task_cache")
            entries = int(cur.fetchone()[0])
            return {
                "entries": entries,
                "capacity": self._cache_capacity,
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "inserts": self._cache_inserts,
                "evictions": self._cache_evictions,
            }

    # -- experiment / tag queries ------------------------------------------------

    def tasks_for_experiment(self, exp_id: str) -> list[int]:
        with self._read() as cur:
            cur.execute(
                "SELECT eq_task_id FROM eq_exp_id_tasks WHERE exp_id = ?"
                " ORDER BY eq_task_id",
                (exp_id,),
            )
            return [row[0] for row in cur.fetchall()]

    def tasks_for_tag(self, tag: str) -> list[int]:
        with self._read() as cur:
            cur.execute(
                "SELECT eq_task_id FROM eq_task_tags WHERE tag = ? ORDER BY eq_task_id",
                (tag,),
            )
            return [row[0] for row in cur.fetchall()]

    # -- maintenance ----------------------------------------------------------------

    def max_task_id(self) -> int:
        with self._read() as cur:
            cur.execute("SELECT COALESCE(MAX(eq_task_id), 0) FROM eq_tasks")
            return int(cur.fetchone()[0])

    def clear(self) -> None:
        self._check_open()
        with self._txn() as cur:
            for table in TABLE_NAMES:
                cur.execute(f"DELETE FROM {table}")

    def wake_waiters(self) -> None:
        """Unblock every long-poll now; woken waits return empty."""
        with self._lock:
            self._wake_epoch += 1
            for cond in self._out_conds.values():
                cond.notify_all()
            self._in_cond.notify_all()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                # Wake blocked long-polls so they hit _check_open and
                # raise instead of sleeping out their deadline.
                for cond in self._out_conds.values():
                    cond.notify_all()
                self._in_cond.notify_all()
                self._conn.close()

"""EMEWS DB schema (paper §IV-C).

Five tables, linked by the shared integer task identifier:

- ``eq_tasks`` — one row per task: identifier, work type, status, the
  owning worker pool, the outbound payload (``json_out``), the result
  payload (``json_in``), and creation / start / stop timestamps.
- ``emews_queue_out`` — the output queue tasks are popped from for
  execution: task id, work type, priority.
- ``emews_queue_in`` — the input queue completed results are pushed to:
  task id, work type.
- ``eq_exp_id_tasks`` — links tasks to experiment identifiers.
- ``eq_task_tags`` — links tasks to metadata tag strings.

Column names follow the open-source EQ/SQL implementation the paper
describes so the schema reads as the original would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TaskStatus(enum.IntEnum):
    """Lifecycle of a task (paper: queued, running, complete, canceled)."""

    QUEUED = 0
    RUNNING = 1
    COMPLETE = 2
    CANCELED = 3

    def label(self) -> str:
        """Lower-case display name matching the paper's vocabulary."""
        return self.name.lower()


@dataclass
class TaskRow:
    """An ``eq_tasks`` row.

    ``json_out`` is the payload sent *out* to worker pools (simulation
    input parameters); ``json_in`` is the result coming back *in*.
    """

    eq_task_id: int
    eq_task_type: int
    eq_status: TaskStatus = TaskStatus.QUEUED
    worker_pool: str | None = None
    json_out: str = ""
    json_in: str | None = None
    time_created: float = 0.0
    time_start: float | None = None
    time_stop: float | None = None
    #: Fault-tolerance lease: a RUNNING task whose lease expires without
    #: renewal is presumed lost with its pool and eligible for automatic
    #: requeue.  ``None`` means the task runs unleased (never reaped).
    lease_expiry: float | None = None
    #: Sticky copy of the task's current priority.  ``emews_queue_out``
    #: rows are deleted on pop, so without this the priority would be
    #: unrecoverable at requeue time and fault recovery would silently
    #: demote reprioritized tasks back to 0.  Kept in sync by
    #: ``create``, ``update_priorities``, and explicit-priority requeues.
    eq_priority: int = 0
    tags: list[str] = field(default_factory=list)

    def runtime(self) -> float | None:
        """Execution duration, once the task has started and stopped."""
        if self.time_start is None or self.time_stop is None:
            return None
        return self.time_stop - self.time_start


# DDL for SQL backends.  Kept as data so tests can assert the five-table
# structure and so alternative SQL engines could reuse it unchanged.
SCHEMA_STATEMENTS: tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS eq_tasks (
        eq_task_id   INTEGER PRIMARY KEY,
        eq_task_type INTEGER NOT NULL,
        eq_status    INTEGER NOT NULL DEFAULT 0,
        worker_pool  TEXT,
        json_out     TEXT NOT NULL,
        json_in      TEXT,
        time_created REAL NOT NULL,
        time_start   REAL,
        time_stop    REAL,
        lease_expiry REAL,
        eq_priority  INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS eq_exp_id_tasks (
        exp_id     TEXT NOT NULL,
        eq_task_id INTEGER NOT NULL REFERENCES eq_tasks(eq_task_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS eq_task_tags (
        eq_task_id INTEGER NOT NULL REFERENCES eq_tasks(eq_task_id),
        tag        TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS emews_queue_out (
        eq_task_id   INTEGER NOT NULL REFERENCES eq_tasks(eq_task_id),
        eq_task_type INTEGER NOT NULL,
        eq_priority  INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS emews_queue_in (
        eq_task_id   INTEGER NOT NULL REFERENCES eq_tasks(eq_task_id),
        eq_task_type INTEGER NOT NULL
    )
    """,
    # Pop order is (priority DESC, eq_task_id ASC) filtered by work type;
    # this index makes the hot pop path a range scan.
    """
    CREATE INDEX IF NOT EXISTS idx_queue_out_pop
        ON emews_queue_out (eq_task_type, eq_priority DESC, eq_task_id ASC)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_queue_in_task
        ON emews_queue_in (eq_task_id)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_exp_tasks
        ON eq_exp_id_tasks (exp_id)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_task_tags
        ON eq_task_tags (tag)
    """,
    # The lease reaper scans for expired RUNNING tasks; the partial
    # index keeps that scan proportional to the leased set, not the
    # full task table.
    """
    CREATE INDEX IF NOT EXISTS idx_lease_expiry
        ON eq_tasks (lease_expiry) WHERE lease_expiry IS NOT NULL
    """,
    # Content-addressed result cache.  One row per distinct task content
    # hash (see ``repro.util.serialization.cache_key``); ``last_used``
    # is a monotonically assigned use counter driving LRU eviction, and
    # ``expiry`` (absolute store time, NULL = no TTL) drives expiry.
    # Existing database files pick the table up automatically: the
    # migration path replays every SCHEMA_STATEMENT and this is
    # ``IF NOT EXISTS``.
    """
    CREATE TABLE IF NOT EXISTS eq_task_cache (
        cache_key    TEXT PRIMARY KEY,
        eq_task_type INTEGER NOT NULL,
        result       TEXT NOT NULL,
        time_created REAL NOT NULL,
        expiry       REAL,
        last_used    INTEGER NOT NULL DEFAULT 0
    )
    """,
    # LRU eviction deletes the lowest last_used rows; keep that a range
    # scan rather than a full-table sort.
    """
    CREATE INDEX IF NOT EXISTS idx_task_cache_lru
        ON eq_task_cache (last_used)
    """,
)

TABLE_NAMES: tuple[str, ...] = (
    "eq_tasks",
    "eq_exp_id_tasks",
    "eq_task_tags",
    "emews_queue_out",
    "emews_queue_in",
    "eq_task_cache",
)

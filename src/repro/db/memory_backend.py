"""Pure-Python in-memory EMEWS DB backend.

Implements the :class:`repro.db.backend.TaskStore` contract with plain
dictionaries and per-work-type binary heaps.  This backend is the engine
under the discrete-event simulations (hundreds of thousands of queue
operations per scenario) so the hot paths — pop, report, reprioritize —
are O(log n).

Priority pops use lazy invalidation: reprioritizing or canceling a task
marks its current heap entry stale and (for reprioritize) pushes a fresh
entry; stale entries are discarded when they surface at the heap top.
This is the standard heapq decrease-key idiom and keeps update_priorities
O(k log n) for k tasks rather than O(n) heap rebuilds — the operation the
paper's GPR loop performs on up to 700 tasks at a time.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections.abc import Iterable, Mapping, Sequence

from repro.db.backend import TaskStore, normalize_priorities, normalize_profiles
from repro.db.schema import TaskRow, TaskStatus
from repro.telemetry.journal import (
    EV_CANCEL,
    EV_ENQUEUE,
    EV_LEASE_RENEW,
    EV_POP,
    EV_REPORT,
    EV_REQUEUE,
    EV_WITHDRAW,
    ROLE_DB,
    Journal,
    get_journal,
)
from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.util.errors import NotFoundError


class _HeapEntry:
    """One output-queue heap entry; ``alive`` is cleared on invalidation."""

    __slots__ = ("eq_task_id", "priority", "alive")

    def __init__(self, eq_task_id: int, priority: int) -> None:
        self.eq_task_id = eq_task_id
        self.priority = priority
        self.alive = True

    def sort_key(self) -> tuple[int, int]:
        # heapq is a min-heap: negate priority for highest-first; break
        # ties by ascending task id, matching the SQL backends'
        # ORDER BY eq_priority DESC, eq_task_id ASC.
        return (-self.priority, self.eq_task_id)

    def __lt__(self, other: "_HeapEntry") -> bool:
        return self.sort_key() < other.sort_key()


class MemoryTaskStore(TaskStore):
    """In-memory implementation of the EMEWS DB."""

    supports_wait = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        journal: Journal | None = None,
        *,
        cache_capacity: int = 512,
    ) -> None:
        registry = metrics if metrics is not None else get_metrics()
        # Flight recorder: resolved per call when not injected, so a
        # later configure_journal() is picked up (tracer discipline).
        self._journal = journal
        self._m_lease_renewals = registry.counter(
            "db.lease_renewals", "task leases extended by a heartbeat"
        )
        self._m_lease_requeues = registry.counter(
            "db.lease_requeues", "expired-lease tasks requeued by a reaper sweep"
        )
        self._m_report_withdrawals = registry.counter(
            "db.report_withdrawals",
            "requeued copies withdrawn because the original report landed",
        )
        self._m_cache_hit = registry.counter(
            "cache.hit", "result-cache lookups answered from the cache"
        )
        self._m_cache_miss = registry.counter(
            "cache.miss", "result-cache lookups that found nothing live"
        )
        self._m_cache_insert = registry.counter(
            "cache.insert", "result-cache entries written"
        )
        self._m_cache_evict = registry.counter(
            "cache.evict", "result-cache entries evicted by the LRU bound"
        )
        self._lock = threading.RLock()
        self._tasks: dict[int, TaskRow] = {}
        self._exp_tasks: dict[str, list[int]] = {}
        self._tag_tasks: dict[str, list[int]] = {}
        # Output queue: one heap per work type plus an id -> live-entry
        # map used for reprioritization and cancellation.  Queue depths
        # (queue_out_length, stats) always derive from the live-entry
        # map, never from heap lengths, so lazily-deleted entries can
        # never leak into the gauges sqlite computes from real rows.
        self._out_heaps: dict[int, list[_HeapEntry]] = {}
        self._out_entries: dict[int, _HeapEntry] = {}
        # Dead (invalidated, not yet popped) entries per heap.  Under
        # heavy reprioritization — the paper's GPR loop rewrites up to
        # 700 priorities per cycle — dead entries would otherwise
        # accumulate without bound until each one surfaces at the heap
        # top; compaction rebuilds a heap once the dead outnumber the
        # live.
        self._out_dead: dict[int, int] = {}
        # Input queue: id -> work type, insertion-ordered (dicts preserve
        # insertion order, giving in-queue FIFO for diagnostics).
        self._in_queue: dict[int, int] = {}
        # Long-poll plumbing: one condition per work type for the output
        # queue (a pool waiting on type 3 must not wake for type 5) plus
        # one for the whole input queue.  All conditions share the store
        # lock, so notify points are exactly the mutation sites and a
        # woken waiter re-checks state under the same critical section.
        self._out_conds: dict[int, threading.Condition] = {}
        self._in_cond = threading.Condition(self._lock)
        # Bumped by wake_waiters(); wait loops capture it on entry and
        # give up (return empty) the moment it moves — the shutdown wake.
        self._wake_epoch = 0
        # Content-addressed result cache: key -> [eq_type, result,
        # expiry, last_used].  ``last_used`` is a per-store monotonic
        # use counter (not a timestamp) so LRU order is total and
        # identical under wall-clock and virtual time; eviction scans
        # for the minimum, which is fine at the capacities involved.
        if cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1, got {cache_capacity}")
        self._cache_capacity = cache_capacity
        self._cache: dict[str, list] = {}
        self._cache_use = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_inserts = 0
        self._cache_evictions = 0
        self._next_id = 1
        self._closed = False

    # -- internal helpers --------------------------------------------------

    def _jrnl(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("store is closed")

    def _alloc_id(self) -> int:
        value = self._next_id
        self._next_id += 1
        return value

    def _out_cond(self, eq_type: int) -> threading.Condition:
        """The per-work-type output-queue condition (call under the lock)."""
        cond = self._out_conds.get(eq_type)
        if cond is None:
            cond = self._out_conds[eq_type] = threading.Condition(self._lock)
        return cond

    def _enqueue_out(self, eq_task_id: int, eq_type: int, priority: int) -> None:
        entry = _HeapEntry(eq_task_id, priority)
        self._out_entries[eq_task_id] = entry
        heapq.heappush(self._out_heaps.setdefault(eq_type, []), entry)
        # Wake pop_out long-polls for this work type.  Covers every path
        # that makes a task claimable: create_task(s), requeue, and the
        # reaper's requeue_expired all funnel through here.
        cond = self._out_conds.get(eq_type)
        if cond is not None:
            cond.notify_all()

    _COMPACT_FLOOR = 64

    def _note_dead(self, eq_type: int) -> None:
        """Account one lazily-invalidated heap entry; compact if dead > live.

        Call under the lock, after clearing ``entry.alive`` on an entry
        that stays in its heap (reprioritize, cancel, report-withdraw).
        The rebuild is amortized O(1) per invalidation: it only fires
        once dead entries outnumber live ones (and the heap is past a
        small floor), and resets the dead count to zero.
        """
        dead = self._out_dead.get(eq_type, 0) + 1
        heap = self._out_heaps.get(eq_type, [])
        if len(heap) >= self._COMPACT_FLOOR and dead * 2 > len(heap):
            heap[:] = [e for e in heap if e.alive]
            heapq.heapify(heap)
            self._out_dead[eq_type] = 0
        else:
            self._out_dead[eq_type] = dead

    def _insert_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        priority: int,
        tag: str | None,
        time_created: float,
    ) -> int:
        eq_task_id = self._alloc_id()
        row = TaskRow(
            eq_task_id=eq_task_id,
            eq_task_type=eq_type,
            eq_status=TaskStatus.QUEUED,
            json_out=payload,
            time_created=time_created,
            eq_priority=priority,
        )
        if tag is not None:
            row.tags.append(tag)
            self._tag_tasks.setdefault(tag, []).append(eq_task_id)
        self._tasks[eq_task_id] = row
        self._exp_tasks.setdefault(exp_id, []).append(eq_task_id)
        self._enqueue_out(eq_task_id, eq_type, priority)
        journal = self._jrnl()
        if journal.enabled:
            journal.emit(
                EV_ENQUEUE, eq_task_id, role=ROLE_DB, work_type=eq_type,
                time=time_created, extra={"exp_id": exp_id, "priority": priority},
            )
        return eq_task_id

    # -- task creation -----------------------------------------------------

    def create_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        *,
        priority: int = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> int:
        with self._lock:
            self._check_open()
            return self._insert_task(exp_id, eq_type, payload, priority, tag, time_created)

    def create_tasks(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        *,
        priority: int | Sequence[int] = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> list[int]:
        priorities = normalize_priorities(len(payloads), priority)
        with self._lock:
            self._check_open()
            return [
                self._insert_task(exp_id, eq_type, p, pr, tag, time_created)
                for p, pr in zip(payloads, priorities)
            ]

    # -- output queue --------------------------------------------------------

    def pop_out(
        self,
        eq_type: int,
        n: int = 1,
        *,
        worker_pool: str = "default",
        now: float = 0.0,
        lease: float | None = None,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        if n < 1:
            return []
        if wait is None or wait <= 0:
            with self._lock:
                self._check_open()
                return self._pop_out_locked(eq_type, n, worker_pool, now, lease)
        # Long-poll: wait on the per-type condition until work arrives,
        # the deadline passes, or wake_waiters() bumps the epoch.  The
        # deadline is wall-clock — the store has no injected clock, and
        # a *bounded real block* is the contract the service relies on.
        deadline = time.monotonic() + wait
        with self._lock:
            self._check_open()
            cond = self._out_cond(eq_type)
            epoch = self._wake_epoch
            while True:
                popped = self._pop_out_locked(eq_type, n, worker_pool, now, lease)
                if popped:
                    return popped
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._wake_epoch != epoch:
                    return []
                cond.wait(remaining)
                self._check_open()

    def _pop_out_locked(
        self,
        eq_type: int,
        n: int,
        worker_pool: str,
        now: float,
        lease: float | None,
    ) -> list[tuple[int, str]]:
        heap = self._out_heaps.get(eq_type)
        popped: list[tuple[int, str]] = []
        while heap and len(popped) < n:
            entry = heapq.heappop(heap)
            if not entry.alive:
                dead = self._out_dead.get(eq_type, 0)
                if dead > 0:
                    self._out_dead[eq_type] = dead - 1
                continue
            del self._out_entries[entry.eq_task_id]
            row = self._tasks[entry.eq_task_id]
            row.eq_status = TaskStatus.RUNNING
            row.time_start = now
            row.worker_pool = worker_pool
            row.lease_expiry = None if lease is None else now + lease
            popped.append((entry.eq_task_id, row.json_out))
        journal = self._jrnl()
        if journal.enabled and popped:
            for eq_task_id, _ in popped:
                journal.emit(
                    EV_POP, eq_task_id, role=ROLE_DB, work_type=eq_type,
                    time=now, source=worker_pool,
                    extra=None if lease is None else {"lease": lease},
                )
        return popped

    def queue_out_length(self, eq_type: int | None = None) -> int:
        with self._lock:
            if eq_type is None:
                return len(self._out_entries)
            return sum(
                1
                for entry in self._out_entries.values()
                if self._tasks[entry.eq_task_id].eq_task_type == eq_type
            )

    # -- input queue ----------------------------------------------------------

    def report(
        self,
        eq_task_id: int,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        profile: dict | None = None,
    ) -> None:
        with self._lock:
            self._check_open()
            row = self._tasks.get(eq_task_id)
            if row is None:
                raise NotFoundError(f"no task with id {eq_task_id}")
            if row.eq_status == TaskStatus.COMPLETE:
                return  # idempotent: first report wins, no duplicate queue row
            row.json_in = result
            row.eq_status = TaskStatus.COMPLETE
            row.time_stop = now
            row.lease_expiry = None
            # If the task was requeued (lease expiry racing a slow pool's
            # report), withdraw the queued copy: the result is in, so
            # re-execution would only waste a worker — and a re-claim
            # would flip the row back to RUNNING, breaking the invariant
            # that the output queue holds only QUEUED tasks.
            entry = self._out_entries.pop(eq_task_id, None)
            if entry is not None:
                entry.alive = False
                self._note_dead(row.eq_task_type)
                self._m_report_withdrawals.inc()
            self._in_queue[eq_task_id] = eq_type
            self._in_cond.notify_all()  # wake pop_in_any long-polls
            journal = self._jrnl()
            if journal.enabled:
                if entry is not None:
                    journal.emit(
                        EV_WITHDRAW, eq_task_id, role=ROLE_DB,
                        work_type=eq_type, time=now,
                    )
                journal.emit(
                    EV_REPORT, eq_task_id, role=ROLE_DB, work_type=eq_type,
                    time=now, source=row.worker_pool or "",
                    extra={"profile": profile} if profile else None,
                )

    def report_batch(
        self,
        reports: Sequence[tuple[int, int, str]],
        *,
        now: float = 0.0,
        profiles: Mapping[int, dict] | None = None,
    ) -> None:
        # One lock acquisition for the whole batch; per-item semantics
        # identical to report() (first write wins, withdraw requeues).
        profile_by_id = normalize_profiles(profiles)
        with self._lock:
            self._check_open()
            missing: list[int] = []
            withdrawals = 0
            journal = self._jrnl()
            recording = journal.enabled
            for eq_task_id, eq_type, result in reports:
                row = self._tasks.get(eq_task_id)
                if row is None:
                    missing.append(eq_task_id)
                    continue
                if row.eq_status == TaskStatus.COMPLETE:
                    continue  # idempotent duplicate
                row.json_in = result
                row.eq_status = TaskStatus.COMPLETE
                row.time_stop = now
                row.lease_expiry = None
                entry = self._out_entries.pop(eq_task_id, None)
                if entry is not None:
                    entry.alive = False
                    self._note_dead(row.eq_task_type)
                    withdrawals += 1
                    if recording:
                        journal.emit(
                            EV_WITHDRAW, eq_task_id, role=ROLE_DB,
                            work_type=eq_type, time=now,
                        )
                self._in_queue[eq_task_id] = eq_type
                self._in_cond.notify_all()  # wake pop_in_any long-polls
                if recording:
                    profile = profile_by_id.get(eq_task_id)
                    journal.emit(
                        EV_REPORT, eq_task_id, role=ROLE_DB, work_type=eq_type,
                        time=now, source=row.worker_pool or "",
                        extra={"profile": profile} if profile else None,
                    )
            if withdrawals:
                self._m_report_withdrawals.inc(withdrawals)
        if missing:
            raise NotFoundError(f"no task(s) with id(s) {missing}")

    def pop_in(self, eq_task_id: int) -> str | None:
        with self._lock:
            self._check_open()
            if eq_task_id in self._in_queue:
                del self._in_queue[eq_task_id]
                return self._tasks[eq_task_id].json_in
            return None

    def pop_in_any(
        self,
        eq_task_ids: Iterable[int],
        limit: int | None = None,
        *,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        ids = list(eq_task_ids)
        if wait is None or wait <= 0:
            with self._lock:
                self._check_open()
                return self._pop_in_any_locked(ids, limit)
        deadline = time.monotonic() + wait
        with self._lock:
            self._check_open()
            epoch = self._wake_epoch
            while True:
                results = self._pop_in_any_locked(ids, limit)
                if results:
                    return results
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._wake_epoch != epoch:
                    return []
                self._in_cond.wait(remaining)
                self._check_open()

    def _pop_in_any_locked(
        self, eq_task_ids: Sequence[int], limit: int | None
    ) -> list[tuple[int, str]]:
        results: list[tuple[int, str]] = []
        for eq_task_id in eq_task_ids:
            if limit is not None and len(results) >= limit:
                break
            if eq_task_id in self._in_queue:
                del self._in_queue[eq_task_id]
                json_in = self._tasks[eq_task_id].json_in
                results.append((eq_task_id, json_in if json_in is not None else ""))
        return results

    def queue_in_length(self) -> int:
        with self._lock:
            return len(self._in_queue)

    # -- status / priority / cancellation --------------------------------------

    def get_task(self, eq_task_id: int) -> TaskRow:
        with self._lock:
            self._check_open()
            row = self._tasks.get(eq_task_id)
            if row is None:
                raise NotFoundError(f"no task with id {eq_task_id}")
            # Return a copy: callers must not mutate store state directly.
            return TaskRow(
                eq_task_id=row.eq_task_id,
                eq_task_type=row.eq_task_type,
                eq_status=row.eq_status,
                worker_pool=row.worker_pool,
                json_out=row.json_out,
                json_in=row.json_in,
                time_created=row.time_created,
                time_start=row.time_start,
                time_stop=row.time_stop,
                lease_expiry=row.lease_expiry,
                eq_priority=row.eq_priority,
                tags=list(row.tags),
            )

    def get_statuses(self, eq_task_ids: Sequence[int]) -> list[tuple[int, TaskStatus]]:
        with self._lock:
            return [
                (tid, self._tasks[tid].eq_status)
                for tid in eq_task_ids
                if tid in self._tasks
            ]

    def get_priorities(self, eq_task_ids: Sequence[int]) -> list[tuple[int, int]]:
        with self._lock:
            out: list[tuple[int, int]] = []
            for tid in eq_task_ids:
                entry = self._out_entries.get(tid)
                if entry is not None:
                    out.append((tid, entry.priority))
            return out

    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: int | Sequence[int]
    ) -> int:
        values = normalize_priorities(len(eq_task_ids), priorities)
        with self._lock:
            self._check_open()
            changed = 0
            for tid, priority in zip(eq_task_ids, values):
                entry = self._out_entries.get(tid)
                if entry is None:
                    continue  # already popped, complete, or canceled
                entry.alive = False
                row = self._tasks[tid]
                row.eq_priority = priority  # keep the sticky copy in sync
                self._enqueue_out(tid, row.eq_task_type, priority)
                self._note_dead(row.eq_task_type)
                changed += 1
            return changed

    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        with self._lock:
            self._check_open()
            canceled: list[TaskRow] = []
            journal = self._jrnl()
            for tid in eq_task_ids:
                entry = self._out_entries.pop(tid, None)
                if entry is None:
                    continue
                entry.alive = False
                row = self._tasks[tid]
                row.eq_status = TaskStatus.CANCELED
                self._note_dead(row.eq_task_type)
                canceled.append(row)
            if journal.enabled:
                # Ascending id order regardless of caller order, matching
                # the SQL backend (conformance compares traces verbatim).
                for row in sorted(canceled, key=lambda r: r.eq_task_id):
                    journal.emit(
                        EV_CANCEL, row.eq_task_id, role=ROLE_DB,
                        work_type=row.eq_task_type,
                    )
            return len(canceled)

    def requeue(self, eq_task_id: int, *, priority: int | None = None) -> bool:
        with self._lock:
            self._check_open()
            row = self._tasks.get(eq_task_id)
            if row is None:
                raise NotFoundError(f"no task with id {eq_task_id}")
            if row.eq_status != TaskStatus.RUNNING:
                return False
            self._requeue_row(row, priority)
            return True

    def _requeue_row(
        self, row: TaskRow, priority: int | None, *, now: float | None = None
    ) -> None:
        """Move a RUNNING row back to QUEUED (call under the lock).

        ``priority=None`` restores the row's sticky ``eq_priority``; an
        explicit value wins and becomes the new sticky priority.
        """
        effective = row.eq_priority if priority is None else priority
        row.eq_priority = effective
        previous_pool = row.worker_pool
        row.eq_status = TaskStatus.QUEUED
        row.worker_pool = None
        row.time_start = None
        row.lease_expiry = None
        self._enqueue_out(row.eq_task_id, row.eq_task_type, effective)
        journal = self._jrnl()
        if journal.enabled:
            journal.emit(
                EV_REQUEUE, row.eq_task_id, role=ROLE_DB,
                work_type=row.eq_task_type, time=now,
                source=previous_pool or "",
                extra={"priority": effective},
            )

    # -- leases ------------------------------------------------------------------

    def renew_leases(
        self, eq_task_ids: Sequence[int], *, now: float, lease: float
    ) -> int:
        with self._lock:
            self._check_open()
            renewed = 0
            journal = self._jrnl()
            seen: set[int] = set()
            for tid in eq_task_ids:
                # Duplicate ids renew (and count) once, matching the SQL
                # backend's per-row UPDATE semantics — a pool that popped
                # the same task twice across a requeue still holds one
                # lease.
                if tid in seen:
                    continue
                seen.add(tid)
                row = self._tasks.get(tid)
                if row is None or row.eq_status != TaskStatus.RUNNING:
                    continue
                row.lease_expiry = now + lease
                renewed += 1
                if journal.enabled:
                    journal.emit(
                        EV_LEASE_RENEW, tid, role=ROLE_DB,
                        work_type=row.eq_task_type, time=now,
                        source=row.worker_pool or "",
                    )
            if renewed:
                self._m_lease_renewals.inc(renewed)
            return renewed

    def requeue_expired(
        self, *, now: float, priority: int | None = None
    ) -> list[int]:
        with self._lock:
            self._check_open()
            expired = [
                row
                for row in self._tasks.values()
                if row.eq_status == TaskStatus.RUNNING
                and row.lease_expiry is not None
                and row.lease_expiry <= now
            ]
            # Ascending id order, matching the SQL backend's ORDER BY —
            # the conformance harness compares the two byte-for-byte.
            expired.sort(key=lambda r: r.eq_task_id)
            for row in expired:
                self._requeue_row(row, priority, now=now)
            if expired:
                self._m_lease_requeues.inc(len(expired))
            return [row.eq_task_id for row in expired]

    # -- monitoring ---------------------------------------------------------------

    def stats(self, *, now: float = 0.0) -> dict:
        with self._lock:
            self._check_open()
            by_status = dict.fromkeys(TaskStatus, 0)
            active = expired = unleased = 0
            for row in self._tasks.values():
                by_status[row.eq_status] += 1
                if row.eq_status == TaskStatus.RUNNING:
                    if row.lease_expiry is None:
                        unleased += 1
                    elif row.lease_expiry > now:
                        active += 1
                    else:
                        expired += 1
            queue_out: dict[str, int] = {}
            for entry in self._out_entries.values():
                key = str(self._tasks[entry.eq_task_id].eq_task_type)
                queue_out[key] = queue_out.get(key, 0) + 1
            return {
                "tasks": {
                    **{s.label(): n for s, n in by_status.items()},
                    "total": len(self._tasks),
                },
                "queue_out": queue_out,
                "queue_out_total": len(self._out_entries),
                "queue_in": len(self._in_queue),
                "leases": {
                    "active": active,
                    "expired": expired,
                    "unleased_running": unleased,
                },
            }

    # -- result cache -------------------------------------------------------------

    def cache_get(self, cache_key: str, *, now: float = 0.0) -> str | None:
        with self._lock:
            self._check_open()
            entry = self._cache.get(cache_key)
            if entry is not None:
                expiry = entry[2]
                if expiry is not None and expiry <= now:
                    # TTL lapsed: the entry is dead, drop it on touch.
                    del self._cache[cache_key]
                    entry = None
            if entry is None:
                self._cache_misses += 1
                self._m_cache_miss.inc()
                return None
            self._cache_use += 1
            entry[3] = self._cache_use
            self._cache_hits += 1
            self._m_cache_hit.inc()
            return entry[1]

    def cache_put(
        self,
        cache_key: str,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        ttl: float | None = None,
    ) -> None:
        with self._lock:
            self._check_open()
            self._cache_use += 1
            expiry = None if ttl is None else now + ttl
            self._cache[cache_key] = [eq_type, result, expiry, self._cache_use]
            self._cache_inserts += 1
            self._m_cache_insert.inc()
            while len(self._cache) > self._cache_capacity:
                victim = min(self._cache, key=lambda k: self._cache[k][3])
                del self._cache[victim]
                self._cache_evictions += 1
                self._m_cache_evict.inc()

    def cache_stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._cache),
                "capacity": self._cache_capacity,
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "inserts": self._cache_inserts,
                "evictions": self._cache_evictions,
            }

    # -- experiment / tag queries ------------------------------------------------

    def tasks_for_experiment(self, exp_id: str) -> list[int]:
        with self._lock:
            return list(self._exp_tasks.get(exp_id, []))

    def tasks_for_tag(self, tag: str) -> list[int]:
        with self._lock:
            return list(self._tag_tasks.get(tag, []))

    # -- maintenance ----------------------------------------------------------------

    def max_task_id(self) -> int:
        with self._lock:
            return max(self._tasks, default=0)

    def clear(self) -> None:
        with self._lock:
            self._tasks.clear()
            self._exp_tasks.clear()
            self._tag_tasks.clear()
            self._out_heaps.clear()
            self._out_entries.clear()
            self._out_dead.clear()
            self._in_queue.clear()
            self._cache.clear()
            self._next_id = 1

    def wake_waiters(self) -> None:
        """Unblock every long-poll now; woken waits return empty."""
        with self._lock:
            self._wake_epoch += 1
            for cond in self._out_conds.values():
                cond.notify_all()
            self._in_cond.notify_all()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            # Blocked long-polls must not sleep out their deadline against
            # a closed store: wake them so they hit _check_open and raise.
            for cond in self._out_conds.values():
                cond.notify_all()
            self._in_cond.notify_all()

"""The :class:`TaskStore` contract that every EMEWS DB backend implements.

The store exposes the row-level operations the EQSQL task API (paper §V)
is built from.  All mutating operations are atomic with respect to one
another; the queue-pop operation in particular combines
select-highest-priority, delete-from-queue, and mark-running into one
critical section, which is what makes multiple concurrently polling
worker pools safe (paper §IV-D: pools equitably share one output queue).

Timestamps are passed *in* by the caller (ultimately from a
:class:`repro.util.clock.Clock`) rather than read from the engine, so
identical logic runs under wall-clock and virtual time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping, Sequence

from repro.db.schema import TaskRow, TaskStatus
from repro.util.errors import NotFoundError


def normalize_profiles(
    profiles: Mapping[int, dict] | Mapping[str, dict] | None,
) -> dict[int, dict]:
    """Int-key the batch profile map.

    JSON object keys are strings, so a ``profiles`` mapping that
    crossed the wire arrives keyed by ``"17"`` rather than ``17``;
    entries whose keys cannot be int-coerced are dropped (telemetry is
    best-effort, never a reason to fail a report).
    """
    if not profiles:
        return {}
    out: dict[int, dict] = {}
    for key, value in profiles.items():
        try:
            out[int(key)] = value
        except (TypeError, ValueError):
            continue
    return out


class TaskStore(ABC):
    """Abstract EMEWS DB backend.

    Implementations must be safe for use from multiple threads.
    """

    #: True when :meth:`pop_out` / :meth:`pop_in_any` honor their ``wait``
    #: parameter (long-poll: block server-side until work arrives).  Layers
    #: above check this before choosing the event-driven fast path; stores
    #: that leave it False are driven by the jittered-backoff poll loop
    #: instead, and simply ignore ``wait``.
    supports_wait: bool = False

    # -- task creation ---------------------------------------------------

    @abstractmethod
    def create_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        *,
        priority: int = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> int:
        """Insert a task and enqueue it on the output queue.

        Returns the newly allocated integer task identifier.  The row is
        created with status QUEUED; the (id, type, priority) triple goes
        into ``emews_queue_out``; the experiment link and optional tag
        rows are written in the same transaction.  ``priority`` is also
        recorded on the task row itself (``TaskRow.eq_priority``) so it
        survives the pop that deletes the queue row — fault-recovery
        requeues restore it by default.
        """

    @abstractmethod
    def create_tasks(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        *,
        priority: int | Sequence[int] = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> list[int]:
        """Batch form of :meth:`create_task`; one transaction, many rows."""

    # -- output queue (ME -> worker pools) --------------------------------

    @abstractmethod
    def pop_out(
        self,
        eq_type: int,
        n: int = 1,
        *,
        worker_pool: str = "default",
        now: float = 0.0,
        lease: float | None = None,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        """Atomically pop up to ``n`` tasks of ``eq_type`` for execution.

        Pops in (priority DESC, task id ASC) order; each popped task is
        deleted from the output queue, marked RUNNING, stamped with
        ``now`` as its start time, and assigned to ``worker_pool``.
        Returns ``(eq_task_id, json_out)`` pairs; an empty list when no
        matching tasks are queued (callers poll).

        ``lease`` (seconds) stamps ``lease_expiry = now + lease`` on each
        popped row; the pool must renew via :meth:`renew_leases` before
        expiry or a lease reaper may requeue the task.  ``None`` pops
        the task unleased (never reaped), the pre-lease behavior.

        ``wait`` (real seconds) is the long-poll bound: when no matching
        task is queued, a store with :attr:`supports_wait` blocks up to
        ``wait`` and returns the moment work arrives (create or requeue),
        rather than an immediate empty list.  ``None``/``<= 0`` preserves
        the non-blocking behavior exactly.  The wait is measured on the
        wall clock regardless of any injected virtual clock, and popped
        rows are stamped with the caller-provided ``now`` captured before
        the wait.  An empty list after a wait means timeout *or* a
        :meth:`wake_waiters` wake-up — callers treat both as "try again
        or give up".
        """

    @abstractmethod
    def queue_out_length(self, eq_type: int | None = None) -> int:
        """Number of queued tasks (optionally restricted to one type)."""

    # -- input queue (worker pools -> ME) ---------------------------------

    @abstractmethod
    def report(
        self,
        eq_task_id: int,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        profile: dict | None = None,
    ) -> None:
        """Record a result: set ``json_in``, mark COMPLETE, stamp the stop
        time, clear any lease, and push (id, type) onto ``emews_queue_in``.

        Raises :class:`repro.util.errors.NotFoundError` for an unknown id.

        Idempotent: reporting an already-COMPLETE task is a no-op (first
        write wins, no duplicate input-queue row).  This makes ``report``
        safe to retry over a lossy connection and absorbs the duplicate
        execution that follows a lease-expiry requeue of a task whose
        original pool was slow rather than dead.

        ``profile`` is an optional :class:`repro.telemetry.profiling
        .TaskProfile` dict from the executing pool; backends attach it
        to the journal's report event and otherwise ignore it (absent
        field = no profile, so old clients interoperate).
        """

    def report_batch(
        self,
        reports: Sequence[tuple[int, int, str]],
        *,
        now: float = 0.0,
        profiles: Mapping[int, dict] | None = None,
    ) -> None:
        """Record many results in one store operation.

        ``reports`` is a sequence of ``(eq_task_id, eq_type, result)``
        triples; each is applied with :meth:`report` semantics (first
        write wins, requeued copies withdrawn, input-queue row pushed).
        The batch is a *performance* primitive, not an atomicity one:
        items are individually idempotent, so a retried batch — or a
        batch replayed after a partial failure — converges to the same
        state as single reports.

        ``profiles`` optionally maps task id to that task's profile
        dict (ids may arrive as strings after a JSON round-trip;
        backends normalize).

        Unknown ids raise :class:`repro.util.errors.NotFoundError`
        naming them; known ids in the same batch may or may not have
        been applied when it raises (retrying the whole batch is safe).

        The default implementation loops :meth:`report`; backends
        override it to collapse the batch into one critical section /
        transaction, which is what lifts the wire- and fsync-bound
        report path (one RPC and one commit per batch, not per task).
        """
        by_id = normalize_profiles(profiles)
        missing: list[int] = []
        for eq_task_id, eq_type, result in reports:
            try:
                self.report(
                    eq_task_id, eq_type, result,
                    now=now, profile=by_id.get(eq_task_id),
                )
            except NotFoundError:
                missing.append(eq_task_id)
        if missing:
            raise NotFoundError(f"no task(s) with id(s) {missing}")

    @abstractmethod
    def pop_in(self, eq_task_id: int) -> str | None:
        """Pop one completed task off the input queue.

        Returns the result payload if the task was on the input queue
        (deleting the queue row), else ``None`` (callers poll).
        """

    @abstractmethod
    def pop_in_any(
        self,
        eq_task_ids: Iterable[int],
        limit: int | None = None,
        *,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        """Pop listed tasks currently on the input queue (up to ``limit``).

        Batch primitive behind ``as_completed`` / ``pop_completed``
        (paper §V-B: "these functions typically perform batch operations
        on the EMEWS DB").  Returns ``(eq_task_id, json_in)`` pairs;
        results beyond ``limit`` stay queued for a later pop.

        ``wait`` long-polls as in :meth:`pop_out`: when none of the
        listed tasks are on the input queue, a :attr:`supports_wait`
        store blocks up to ``wait`` real seconds and wakes the instant a
        report lands (single or batch).  ``None``/``<= 0`` is the
        immediate non-blocking form.
        """

    @abstractmethod
    def queue_in_length(self) -> int:
        """Number of results waiting on the input queue."""

    # -- status / priority / cancellation ---------------------------------

    @abstractmethod
    def get_task(self, eq_task_id: int) -> TaskRow:
        """Fetch the full task row; raises NotFoundError if absent."""

    @abstractmethod
    def get_statuses(self, eq_task_ids: Sequence[int]) -> list[tuple[int, TaskStatus]]:
        """Statuses for a batch of ids (unknown ids are omitted)."""

    @abstractmethod
    def get_priorities(self, eq_task_ids: Sequence[int]) -> list[tuple[int, int]]:
        """Current output-queue priorities; ids not queued are omitted."""

    @abstractmethod
    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: int | Sequence[int]
    ) -> int:
        """Re-prioritize queued tasks; returns how many rows changed.

        Tasks that have already been popped (running/complete) are
        silently skipped — exactly the paper's semantics, where
        oversubscribed pools make popped tasks "ineligible for
        reprioritization or cancellation".  Updated rows also refresh
        the sticky ``TaskRow.eq_priority`` so a later fault-recovery
        requeue restores the *updated* priority, not the submit one.
        """

    @abstractmethod
    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        """Cancel tasks still on the output queue; returns count canceled.

        Canceled tasks are removed from the output queue and marked
        CANCELED.  Running or complete tasks are not affected.
        """

    @abstractmethod
    def requeue(self, eq_task_id: int, *, priority: int | None = None) -> bool:
        """Return a RUNNING task to the output queue (fault recovery).

        Resets the row to QUEUED, clears its worker pool, start time and
        lease, and re-inserts it into ``emews_queue_out``.  ``priority``
        defaults to ``None`` — *restore the task's current sticky
        priority* (``TaskRow.eq_priority``: the submit priority as last
        adjusted by ``update_priorities``), so fault recovery does not
        demote tasks the ME promoted.  An explicit integer overrides the
        sticky value and becomes the task's new current priority.
        Returns False (and changes nothing) unless the task is RUNNING.
        The check-and-requeue is one atomic operation, so a racing
        ``report`` can never be overwritten: whichever lands first wins
        and the loser is a no-op.
        """

    # -- leases (fault recovery) -------------------------------------------

    @abstractmethod
    def renew_leases(
        self, eq_task_ids: Sequence[int], *, now: float, lease: float
    ) -> int:
        """Extend the leases of RUNNING tasks to ``now + lease``.

        The worker-pool heartbeat: ids that are no longer RUNNING (they
        completed, were canceled, or were already reaped and requeued)
        are skipped.  Returns how many leases were renewed; duplicate
        ids renew (and count) once — one lease per task.  Idempotent —
        safe to retry over a lossy connection.
        """

    @abstractmethod
    def requeue_expired(
        self, *, now: float, priority: int | None = None
    ) -> list[int]:
        """Requeue every RUNNING task whose lease expired before ``now``.

        The lease-reaper primitive: atomically moves each expired task
        back to QUEUED (clearing pool, start time, and lease) and
        re-inserts it into the output queue.  ``priority=None`` (the
        default) restores each task's own sticky priority — see
        :meth:`requeue`; an explicit integer pins every requeued task to
        that priority.  Unleased RUNNING tasks are never touched.
        Returns the requeued ids in ascending id order.
        """

    # -- experiment / tag queries ------------------------------------------

    @abstractmethod
    def tasks_for_experiment(self, exp_id: str) -> list[int]:
        """All task ids linked to an experiment, in creation order."""

    @abstractmethod
    def tasks_for_tag(self, tag: str) -> list[int]:
        """All task ids carrying a tag, in creation order."""

    # -- monitoring --------------------------------------------------------

    @abstractmethod
    def stats(self, *, now: float = 0.0) -> dict:
        """One consistent snapshot of queue and lease state.

        The monitoring primitive behind samplers and the ``/status``
        endpoint: everything an operator needs to judge "is the queue
        draining, are pools starving, are leases expiring" in a single
        store round trip.  Returns a JSON-ready dict::

            {
              "tasks":   {"queued": n, "running": n, "complete": n,
                          "canceled": n, "total": n},
              "queue_out":       {"<eq_type>": n, ...},   # per work type
              "queue_out_total": n,
              "queue_in":        n,
              "leases":  {"active": n, "expired": n,
                          "unleased_running": n},
            }

        ``queue_out`` keys are *strings* (work types cross JSON
        boundaries).  ``now`` splits leased RUNNING tasks into active
        (``lease_expiry > now``) and expired (reapable) counts.
        """

    # -- result cache ------------------------------------------------------

    def cache_get(self, cache_key: str, *, now: float = 0.0) -> str | None:
        """Look up a cached result by content hash; ``None`` on miss.

        ``cache_key`` is the content address from
        :func:`repro.util.serialization.cache_key`.  A hit refreshes the
        entry's LRU position; an entry whose TTL expired before ``now``
        is dropped and reported as a miss.  The base implementation is a
        cacheless store: every lookup misses.  Semantics on caching
        backends (shared with the conformance model):

        - entries are keyed by the hash alone — one result per content;
        - ``expiry`` is absolute store time (``now + ttl`` at put);
          ``expiry <= now`` at get time deletes the entry and misses;
        - recency is a per-store monotonic use counter, bumped on every
          get hit and put.
        """
        return None

    def cache_put(
        self,
        cache_key: str,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        ttl: float | None = None,
    ) -> None:
        """Insert (or refresh) one cached result under its content hash.

        Last write wins on a duplicate key — re-putting refreshes the
        stored result, expiry, and LRU position, which is the right
        convergence for a retried put.  When the insert pushes the cache
        past its capacity bound, least-recently-used entries are evicted
        until the bound holds.  ``ttl`` seconds from ``now`` bounds the
        entry's life (``None`` = no TTL).  The base implementation
        discards the entry (cacheless store).
        """

    def cache_stats(self) -> dict:
        """JSON-ready snapshot of cache occupancy and traffic counters.

        Keys: ``entries`` / ``capacity`` (occupancy) and ``hits`` /
        ``misses`` / ``inserts`` / ``evictions`` (monotonic counters
        since the store opened).  Feeds the ``cache`` section of the
        service ``/status`` document.
        """
        return {
            "entries": 0,
            "capacity": 0,
            "hits": 0,
            "misses": 0,
            "inserts": 0,
            "evictions": 0,
        }

    # -- maintenance -------------------------------------------------------

    @abstractmethod
    def max_task_id(self) -> int:
        """Highest allocated task id (0 when empty); used on reattach."""

    @abstractmethod
    def clear(self) -> None:
        """Delete all rows from all tables."""

    def wake_waiters(self) -> None:
        """Wake every blocked long-poll immediately (they return empty).

        Shutdown hook: the service calls this before joining handler
        threads so no stop waits out a ``max_wait_ms``; pools call it on
        their store when stopping so an in-process fetcher blocked in a
        wait unblocks at once.  No-op for stores without wait support —
        and, notably, for :class:`RemoteTaskStore`, which cannot target
        its own in-flight RPC (the *service's* store wakes its handler).
        """

    @abstractmethod
    def close(self) -> None:
        """Release the backend's resources; further use is an error."""

    # -- context manager sugar ----------------------------------------------

    def __enter__(self) -> "TaskStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def normalize_priorities(
    count: int, priority: int | Sequence[int]
) -> list[int]:
    """Expand a scalar-or-sequence priority argument to ``count`` values.

    Shared validation for batch create/update across backends: a scalar
    applies to every task; a sequence must match ``count`` exactly.
    """
    if isinstance(priority, int):
        return [priority] * count
    values = list(priority)
    if len(values) != count:
        raise ValueError(
            f"priority sequence length {len(values)} != task count {count}"
        )
    for v in values:
        if not isinstance(v, int):
            raise TypeError(f"priorities must be integers, got {type(v).__name__}")
    return values

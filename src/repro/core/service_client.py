"""Client-side remote task store with automatic reconnection.

:class:`RemoteTaskStore` implements the full :class:`repro.db.TaskStore`
contract over a TCP connection to a :class:`repro.core.service.TaskService`.
Because it *is* a store, the unchanged :class:`repro.core.eqsql.EQSQL`
class runs against it — an ME algorithm on a laptop drives a database on
a cluster exactly as it drives a local one, which is the paper's
deployment (local Python script, EMEWS DB on Bebop, SSH tunnel between).

One socket is shared behind a lock; requests are strictly
request/response so pipelining is unnecessary, and worker pools that
want concurrency open one client each.

Resilience (paper §IV-B: tasks "are not lost when a resource fails"):
a dropped connection no longer kills the store.  Every RPC classifies
itself as idempotent or not:

- **Idempotent** methods (reads, ``report``, ``requeue``, lease
  renewal, ...) are retried transparently — the client tears down the
  broken socket, reconnects with exponential backoff + jitter,
  re-handshakes (ping + auth), and re-sends.
- **Non-idempotent** methods (``create_task[s]``, ``pop_out``,
  ``pop_in[_any]``) are retried only while the failure is provably
  pre-send (the connect itself failed).  Once the request may have
  reached the server, retrying could double-apply it, so the client
  raises :class:`~repro.util.errors.ConnectionBrokenError` and leaves
  recovery to the caller — for popped-but-lost tasks, the server-side
  lease reaper requeues them automatically.

After any mid-request failure the socket is torn down rather than
reused: a connection that died between write and read is desynced (the
next read could pair a stale response with a new request id), and the
only safe move is a fresh connection.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core import protocol
from repro.db.backend import TaskStore
from repro.db.schema import TaskRow, TaskStatus
from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.telemetry.tracing import Span, Tracer, get_tracer
from repro.util.errors import (
    ConnectionBrokenError,
    ReproError,
    ServiceUnavailableError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Reconnect/retry schedule: exponential backoff with full jitter.

    ``max_attempts`` bounds the total tries per RPC (first attempt
    included).  The delay before retry ``k`` is
    ``min(max_delay, base_delay * multiplier**k)`` scaled by a uniform
    random factor in ``[1 - jitter, 1]`` so a fleet of pools severed by
    the same network event does not reconnect in lockstep.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter <= 0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


#: Methods safe to re-send after an ambiguous failure: reads, and writes
#: whose double application converges to the same state (``report`` is
#: first-write-wins in every backend; ``requeue``/``renew_leases``/
#: ``requeue_expired`` check state server-side; ``update_priorities`` /
#: ``cancel_tasks`` / ``clear`` set absolute state).
IDEMPOTENT_METHODS: frozenset[str] = frozenset(
    {
        "ping",
        "queue_out_length",
        "queue_in_length",
        "report",
        "get_task",
        "get_statuses",
        "get_priorities",
        "update_priorities",
        "cancel_tasks",
        "requeue",
        "renew_leases",
        "requeue_expired",
        "tasks_for_experiment",
        "tasks_for_tag",
        "max_task_id",
        "stats",
        "clear",
    }
)

#: Methods that must not be blindly re-sent: creation would duplicate
#: rows; pops would claim extra tasks (``pop_out``) or silently consume
#: a result whose response was lost (``pop_in``/``pop_in_any``).
NON_IDEMPOTENT_METHODS: frozenset[str] = frozenset(
    {"create_task", "create_tasks", "pop_out", "pop_in", "pop_in_any"}
)


class RemoteTaskStore(TaskStore):
    """A TaskStore proxied over the EMEWS service protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        auth_token: str | None = None,
        connect_timeout: float = 10.0,
        io_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._token = auth_token
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._tracer = tracer
        registry = metrics if metrics is not None else get_metrics()
        self._m_rpcs = registry.counter(
            "service.client.rpcs", "requests sent to the EMEWS service"
        )
        self._m_rtt = registry.histogram(
            "service.client.rtt_seconds", help="request/response round-trip time"
        )
        self._m_retries = registry.counter(
            "service.client.retries", "RPC attempts repeated after a connection failure"
        )
        self._m_reconnects = registry.counter(
            "service.client.reconnects", "successful reconnections after a drop"
        )
        self._sock: socket.socket | None = None
        self._rfile: Any = None
        self._wfile: Any = None
        self._next_id = 0
        self._closed = False
        self._ever_connected = False
        with self._lock:
            # Fail fast on unreachable service / version / auth problems.
            self._connect_locked()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def connected(self) -> bool:
        """Whether a live socket is currently held (no probe is sent)."""
        with self._lock:
            return self._sock is not None

    # -- connection management ---------------------------------------------

    def _connect_locked(self) -> None:
        """Open a fresh socket and handshake; caller holds the lock."""
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        try:
            # Blocking I/O after connect (polling timeouts live in EQSQL)
            # unless the caller bounded per-RPC I/O with io_timeout.
            sock.settimeout(self._io_timeout)
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            # Handshake: ping carries the auth token and returns the
            # protocol version, so a bad token or an incompatible server
            # surfaces here as a typed remote error, not mid-workload.
            self._next_id += 1
            request: dict[str, Any] = {
                "id": self._next_id,
                "method": "ping",
                "params": {},
            }
            if self._token is not None:
                request["token"] = self._token
            tracer = self.tracer
            if tracer.enabled:
                # Trace the handshake like any other RPC so the server's
                # service.ping span parents under it across the wire.
                with tracer.span("rpc.ping", component="service_client") as sp:
                    protocol.inject_trace(request, sp.context)
                    protocol.write_message(wfile, request)
                    response = protocol.read_message(rfile)
            else:
                protocol.write_message(wfile, request)
                response = protocol.read_message(rfile)
            if response is None:
                raise ConnectionError("service closed the connection during handshake")
            if not response.get("ok"):
                protocol.raise_remote_error(response.get("error", {}))
            version = (response.get("result") or {}).get("version")
            if version != protocol.PROTOCOL_VERSION:
                raise ReproError(
                    f"protocol version mismatch: client {protocol.PROTOCOL_VERSION},"
                    f" server {version}"
                )
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._rfile = rfile
        self._wfile = wfile
        if self._ever_connected:
            self._m_reconnects.inc()
        self._ever_connected = True

    def _teardown_locked(self) -> None:
        """Drop the (possibly desynced) socket; caller holds the lock.

        After a partial write or read the stream can hold a stale frame
        that would answer the *next* request; the connection is
        unrecoverable and must be replaced, never reused.
        """
        for f in (self._rfile, self._wfile, self._sock):
            if f is not None:
                try:
                    f.close()
                except OSError:
                    pass
        self._sock = None
        self._rfile = None
        self._wfile = None

    # -- RPC core ----------------------------------------------------------

    def _call(self, method: str, params: dict[str, Any]) -> Any:
        tracer = self.tracer
        if not tracer.enabled:
            return self._call_raw(method, params, tracer, None)
        # The RPC span is the client-side half of the wire hop; the
        # service opens its child span from the propagated context, so
        # RTT decomposes into client wait vs server handling vs DB time.
        with tracer.span(f"rpc.{method}", component="service_client") as sp:
            return self._call_raw(method, params, tracer, sp)

    def _call_raw(
        self,
        method: str,
        params: dict[str, Any],
        tracer: Tracer,
        span: Span | None,
    ) -> Any:
        t0 = time.monotonic()
        retryable = method in IDEMPOTENT_METHODS
        attempt = 0
        while True:
            try:
                result = self._attempt_once(method, params, tracer, span, retryable)
            except _RetryableFailure as failure:
                attempt += 1
                if span is not None:
                    span.set_attr("retries", attempt)
                if attempt >= self._retry.max_attempts:
                    raise ServiceUnavailableError(
                        f"rpc {method!r} failed after {attempt} attempts:"
                        f" {failure.cause}"
                    ) from failure.cause
                self._m_retries.inc()
                time.sleep(self._retry.delay(attempt - 1, self._rng))
                continue
            self._m_rpcs.inc()
            self._m_rtt.observe(time.monotonic() - t0)
            return result

    def _attempt_once(
        self,
        method: str,
        params: dict[str, Any],
        tracer: Tracer,
        span: Span | None,
        retryable: bool,
    ) -> Any:
        """One connect-if-needed + send + receive cycle.

        Raises :class:`_RetryableFailure` when the RPC may be retried
        (connect failure, or mid-request failure of an idempotent
        method) and :class:`ConnectionBrokenError` when a
        non-idempotent request's fate is unknown.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("remote store is closed")
            if self._sock is None:
                try:
                    self._connect_locked()
                except (OSError, ConnectionError) as exc:
                    # Nothing was sent: always safe to retry.
                    raise _RetryableFailure(exc) from exc
            self._next_id += 1
            request: dict[str, Any] = {
                "id": self._next_id,
                "method": method,
                "params": params,
            }
            if self._token is not None:
                request["token"] = self._token
            try:
                if span is not None:
                    protocol.inject_trace(request, span.context)
                    with tracer.span("rpc.send", component="service_client"):
                        protocol.write_message(self._wfile, request)
                    with tracer.span("rpc.recv", component="service_client"):
                        response = protocol.read_message(self._rfile)
                else:
                    protocol.write_message(self._wfile, request)
                    response = protocol.read_message(self._rfile)
                if response is None:
                    raise ConnectionError("service closed the connection")
                if response.get("id") != request["id"]:
                    # Stale frame from a previous, interrupted exchange:
                    # the stream is desynced beyond repair.
                    raise ConnectionError("service response id mismatch (desynced)")
            except (OSError, ConnectionError, ReproError) as exc:
                # The request may or may not have been applied (the
                # ReproError arm is framing/serialization trouble from
                # the protocol layer — same desync).  Either way this
                # socket is done: a later read could return this
                # request's stale response paired with a new id.
                self._teardown_locked()
                if retryable:
                    raise _RetryableFailure(exc) from exc
                raise ConnectionBrokenError(
                    f"connection lost during non-idempotent rpc {method!r};"
                    " not retried (the request may have been applied)"
                ) from exc
        if not response.get("ok"):
            # A typed error response is a *successful* exchange: the
            # server handled the request; no connection fault occurred.
            protocol.raise_remote_error(response.get("error", {}))
        return response.get("result")

    # -- TaskStore implementation -------------------------------------------

    def create_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        *,
        priority: int = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> int:
        return self._call(
            "create_task",
            {
                "exp_id": exp_id,
                "eq_type": eq_type,
                "payload": payload,
                "priority": priority,
                "tag": tag,
                "time_created": time_created,
            },
        )

    def create_tasks(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        *,
        priority: int | Sequence[int] = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> list[int]:
        priority_param = priority if isinstance(priority, int) else list(priority)
        return list(
            self._call(
                "create_tasks",
                {
                    "exp_id": exp_id,
                    "eq_type": eq_type,
                    "payloads": list(payloads),
                    "priority": priority_param,
                    "tag": tag,
                    "time_created": time_created,
                },
            )
        )

    def pop_out(
        self,
        eq_type: int,
        n: int = 1,
        *,
        worker_pool: str = "default",
        now: float = 0.0,
        lease: float | None = None,
    ) -> list[tuple[int, str]]:
        result = self._call(
            "pop_out",
            {
                "eq_type": eq_type,
                "n": n,
                "worker_pool": worker_pool,
                "now": now,
                "lease": lease,
            },
        )
        return [(tid, payload) for tid, payload in result]

    def queue_out_length(self, eq_type: int | None = None) -> int:
        return self._call("queue_out_length", {"eq_type": eq_type})

    def report(
        self,
        eq_task_id: int,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
    ) -> None:
        self._call(
            "report",
            {
                "eq_task_id": eq_task_id,
                "eq_type": eq_type,
                "result": result,
                "now": now,
            },
        )

    def pop_in(self, eq_task_id: int) -> str | None:
        return self._call("pop_in", {"eq_task_id": eq_task_id})

    def pop_in_any(
        self, eq_task_ids: Iterable[int], limit: int | None = None
    ) -> list[tuple[int, str]]:
        result = self._call(
            "pop_in_any", {"eq_task_ids": list(eq_task_ids), "limit": limit}
        )
        return [(tid, payload) for tid, payload in result]

    def queue_in_length(self) -> int:
        return self._call("queue_in_length", {})

    def get_task(self, eq_task_id: int) -> TaskRow:
        return protocol.task_row_from_dict(
            self._call("get_task", {"eq_task_id": eq_task_id})
        )

    def get_statuses(self, eq_task_ids: Sequence[int]) -> list[tuple[int, TaskStatus]]:
        result = self._call("get_statuses", {"eq_task_ids": list(eq_task_ids)})
        return [(tid, TaskStatus(status)) for tid, status in result]

    def get_priorities(self, eq_task_ids: Sequence[int]) -> list[tuple[int, int]]:
        result = self._call("get_priorities", {"eq_task_ids": list(eq_task_ids)})
        return [(tid, priority) for tid, priority in result]

    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: int | Sequence[int]
    ) -> int:
        priority_param = (
            priorities if isinstance(priorities, int) else list(priorities)
        )
        return self._call(
            "update_priorities",
            {"eq_task_ids": list(eq_task_ids), "priorities": priority_param},
        )

    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        return self._call("cancel_tasks", {"eq_task_ids": list(eq_task_ids)})

    def requeue(self, eq_task_id: int, *, priority: int = 0) -> bool:
        return self._call(
            "requeue", {"eq_task_id": eq_task_id, "priority": priority}
        )

    def renew_leases(
        self, eq_task_ids: Sequence[int], *, now: float, lease: float
    ) -> int:
        return self._call(
            "renew_leases",
            {"eq_task_ids": list(eq_task_ids), "now": now, "lease": lease},
        )

    def requeue_expired(self, *, now: float, priority: int = 0) -> list[int]:
        return list(
            self._call("requeue_expired", {"now": now, "priority": priority})
        )

    def tasks_for_experiment(self, exp_id: str) -> list[int]:
        return list(self._call("tasks_for_experiment", {"exp_id": exp_id}))

    def tasks_for_tag(self, tag: str) -> list[int]:
        return list(self._call("tasks_for_tag", {"tag": tag}))

    def stats(self, *, now: float = 0.0) -> dict:
        return self._call("stats", {"now": now})

    def max_task_id(self) -> int:
        return self._call("max_task_id", {})

    def clear(self) -> None:
        self._call("clear", {})

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_locked()


class _RetryableFailure(Exception):
    """Internal: an attempt failed in a way the retry loop may repeat."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause

"""Client-side remote task store.

:class:`RemoteTaskStore` implements the full :class:`repro.db.TaskStore`
contract over a TCP connection to a :class:`repro.core.service.TaskService`.
Because it *is* a store, the unchanged :class:`repro.core.eqsql.EQSQL`
class runs against it — an ME algorithm on a laptop drives a database on
a cluster exactly as it drives a local one, which is the paper's
deployment (local Python script, EMEWS DB on Bebop, SSH tunnel between).

One socket is shared behind a lock; requests are strictly
request/response so pipelining is unnecessary, and worker pools that
want concurrency open one client each.
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Iterable, Sequence
from typing import Any

from repro.core import protocol
from repro.db.backend import TaskStore
from repro.db.schema import TaskRow, TaskStatus
from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.telemetry.tracing import Span, Tracer, get_tracer
from repro.util.errors import ReproError


class RemoteTaskStore(TaskStore):
    """A TaskStore proxied over the EMEWS service protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        auth_token: str | None = None,
        connect_timeout: float = 10.0,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._token = auth_token
        self._lock = threading.Lock()
        self._tracer = tracer
        registry = metrics if metrics is not None else get_metrics()
        self._m_rpcs = registry.counter(
            "service.client.rpcs", "requests sent to the EMEWS service"
        )
        self._m_rtt = registry.histogram(
            "service.client.rtt_seconds", help="request/response round-trip time"
        )
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        # Blocking I/O after connect; polling timeouts live in EQSQL.
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 0
        self._closed = False
        # Fail fast on version/auth problems.
        self._call("ping", {})

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def _call(self, method: str, params: dict[str, Any]) -> Any:
        tracer = self.tracer
        if not tracer.enabled:
            return self._call_raw(method, params, tracer, None)
        # The RPC span is the client-side half of the wire hop; the
        # service opens its child span from the propagated context, so
        # RTT decomposes into client wait vs server handling vs DB time.
        with tracer.span(f"rpc.{method}", component="service_client") as sp:
            return self._call_raw(method, params, tracer, sp)

    def _call_raw(
        self,
        method: str,
        params: dict[str, Any],
        tracer: Tracer,
        span: Span | None,
    ) -> Any:
        t0 = time.monotonic()
        with self._lock:
            if self._closed:
                raise RuntimeError("remote store is closed")
            self._next_id += 1
            request = {
                "id": self._next_id,
                "method": method,
                "params": params,
            }
            if self._token is not None:
                request["token"] = self._token
            if span is not None:
                protocol.inject_trace(request, span.context)
                with tracer.span("rpc.send", component="service_client"):
                    protocol.write_message(self._wfile, request)
                with tracer.span("rpc.recv", component="service_client"):
                    response = protocol.read_message(self._rfile)
            else:
                protocol.write_message(self._wfile, request)
                response = protocol.read_message(self._rfile)
        self._m_rpcs.inc()
        self._m_rtt.observe(time.monotonic() - t0)
        if response is None:
            raise ReproError("service closed the connection")
        if response.get("id") != request["id"]:
            raise ReproError("service response id mismatch")
        if not response.get("ok"):
            protocol.raise_remote_error(response.get("error", {}))
        return response.get("result")

    # -- TaskStore implementation -------------------------------------------

    def create_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        *,
        priority: int = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> int:
        return self._call(
            "create_task",
            {
                "exp_id": exp_id,
                "eq_type": eq_type,
                "payload": payload,
                "priority": priority,
                "tag": tag,
                "time_created": time_created,
            },
        )

    def create_tasks(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        *,
        priority: int | Sequence[int] = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> list[int]:
        priority_param = priority if isinstance(priority, int) else list(priority)
        return list(
            self._call(
                "create_tasks",
                {
                    "exp_id": exp_id,
                    "eq_type": eq_type,
                    "payloads": list(payloads),
                    "priority": priority_param,
                    "tag": tag,
                    "time_created": time_created,
                },
            )
        )

    def pop_out(
        self,
        eq_type: int,
        n: int = 1,
        *,
        worker_pool: str = "default",
        now: float = 0.0,
    ) -> list[tuple[int, str]]:
        result = self._call(
            "pop_out",
            {"eq_type": eq_type, "n": n, "worker_pool": worker_pool, "now": now},
        )
        return [(tid, payload) for tid, payload in result]

    def queue_out_length(self, eq_type: int | None = None) -> int:
        return self._call("queue_out_length", {"eq_type": eq_type})

    def report(
        self,
        eq_task_id: int,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
    ) -> None:
        self._call(
            "report",
            {
                "eq_task_id": eq_task_id,
                "eq_type": eq_type,
                "result": result,
                "now": now,
            },
        )

    def pop_in(self, eq_task_id: int) -> str | None:
        return self._call("pop_in", {"eq_task_id": eq_task_id})

    def pop_in_any(
        self, eq_task_ids: Iterable[int], limit: int | None = None
    ) -> list[tuple[int, str]]:
        result = self._call(
            "pop_in_any", {"eq_task_ids": list(eq_task_ids), "limit": limit}
        )
        return [(tid, payload) for tid, payload in result]

    def queue_in_length(self) -> int:
        return self._call("queue_in_length", {})

    def get_task(self, eq_task_id: int) -> TaskRow:
        return protocol.task_row_from_dict(
            self._call("get_task", {"eq_task_id": eq_task_id})
        )

    def get_statuses(self, eq_task_ids: Sequence[int]) -> list[tuple[int, TaskStatus]]:
        result = self._call("get_statuses", {"eq_task_ids": list(eq_task_ids)})
        return [(tid, TaskStatus(status)) for tid, status in result]

    def get_priorities(self, eq_task_ids: Sequence[int]) -> list[tuple[int, int]]:
        result = self._call("get_priorities", {"eq_task_ids": list(eq_task_ids)})
        return [(tid, priority) for tid, priority in result]

    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: int | Sequence[int]
    ) -> int:
        priority_param = (
            priorities if isinstance(priorities, int) else list(priorities)
        )
        return self._call(
            "update_priorities",
            {"eq_task_ids": list(eq_task_ids), "priorities": priority_param},
        )

    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        return self._call("cancel_tasks", {"eq_task_ids": list(eq_task_ids)})

    def requeue(self, eq_task_id: int, *, priority: int = 0) -> bool:
        return self._call(
            "requeue", {"eq_task_id": eq_task_id, "priority": priority}
        )

    def tasks_for_experiment(self, exp_id: str) -> list[int]:
        return list(self._call("tasks_for_experiment", {"exp_id": exp_id}))

    def tasks_for_tag(self, tag: str) -> list[int]:
        return list(self._call("tasks_for_tag", {"tag": tag}))

    def max_task_id(self) -> int:
        return self._call("max_task_id", {})

    def clear(self) -> None:
        self._call("clear", {})

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for closer in (self._rfile.close, self._wfile.close, self._sock.close):
                try:
                    closer()
                except OSError:
                    pass

"""Client-side remote task store with automatic reconnection.

:class:`RemoteTaskStore` implements the full :class:`repro.db.TaskStore`
contract over a TCP connection to a :class:`repro.core.service.TaskService`.
Because it *is* a store, the unchanged :class:`repro.core.eqsql.EQSQL`
class runs against it — an ME algorithm on a laptop drives a database on
a cluster exactly as it drives a local one, which is the paper's
deployment (local Python script, EMEWS DB on Bebop, SSH tunnel between).

One socket is shared behind a lock.  Requests are request/response by
default; throughput-bound callers open an :meth:`RemoteTaskStore.pipeline`
to keep N requests in flight on the same connection — frames are
coalesced into one buffered send (a single flush per batch, with
``TCP_NODELAY`` set so nothing waits on Nagle) and responses are matched
back to their calls by request id.  Worker pools that want concurrency
still open one client each.

Long-poll RPCs (``pop_out``/``pop_in_any`` with a ``wait``) are the one
exception to the shared socket: each rides a dedicated wait-channel
connection from a small pool (:class:`_WaitConn`), because a request
that blocks server-side for seconds must not hold the lockstep lock and
starve the fetches and reports sharing the store.

Resilience (paper §IV-B: tasks "are not lost when a resource fails"):
a dropped connection no longer kills the store.  Every RPC classifies
itself as idempotent or not:

- **Idempotent** methods (reads, ``report``, ``requeue``, lease
  renewal, ...) are retried transparently — the client tears down the
  broken socket, reconnects with exponential backoff + jitter,
  re-handshakes (ping + auth), and re-sends.
- **Non-idempotent** methods (``create_task[s]``, ``pop_out``,
  ``pop_in[_any]``) are retried only while the failure is provably
  pre-send (the connect itself failed).  Once the request may have
  reached the server, retrying could double-apply it, so the client
  raises :class:`~repro.util.errors.ConnectionBrokenError` and leaves
  recovery to the caller — for popped-but-lost tasks, the server-side
  lease reaper requeues them automatically.

The same classification governs a pipeline broken mid-batch: calls
whose responses never arrived are transparently replayed when
idempotent, and surface ``ConnectionBrokenError`` (exactly once, on
:meth:`PipelinedCall.result`) when not.

After any mid-request failure the socket is torn down rather than
reused: a connection that died between write and read is desynced (the
next read could pair a stale response with a new request id), and the
only safe move is a fresh connection.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core import protocol
from repro.db.backend import TaskStore
from repro.db.schema import TaskRow, TaskStatus
from repro.telemetry.metrics import COUNT_BUCKETS, MetricsRegistry, get_metrics
from repro.telemetry.tracing import Span, Tracer, get_tracer
from repro.util.errors import (
    ConnectionBrokenError,
    ReproError,
    ServiceUnavailableError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Reconnect/retry schedule: exponential backoff with full jitter.

    ``max_attempts`` bounds the total tries per RPC (first attempt
    included).  The delay before retry ``k`` is
    ``min(max_delay, base_delay * multiplier**k)`` scaled by a uniform
    random factor in ``[1 - jitter, 1]`` so a fleet of pools severed by
    the same network event does not reconnect in lockstep.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter <= 0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


#: Methods safe to re-send after an ambiguous failure: reads, and writes
#: whose double application converges to the same state (``report`` is
#: first-write-wins in every backend; ``requeue``/``renew_leases``/
#: ``requeue_expired`` check state server-side; ``update_priorities`` /
#: ``cancel_tasks`` / ``clear`` set absolute state).
IDEMPOTENT_METHODS: frozenset[str] = frozenset(
    {
        "ping",
        "telemetry",
        "queue_out_length",
        "queue_in_length",
        "report",
        "report_batch",
        "get_task",
        "get_statuses",
        "get_priorities",
        "update_priorities",
        "cancel_tasks",
        "requeue",
        "renew_leases",
        "requeue_expired",
        "tasks_for_experiment",
        "tasks_for_tag",
        # Cache ops: get is a read (the LRU touch converges), put is
        # last-write-wins on a content hash — re-sending either lands
        # the same state.
        "cache_get",
        "cache_put",
        "cache_stats",
        "max_task_id",
        "stats",
        "clear",
    }
)

#: Methods that must not be blindly re-sent: creation would duplicate
#: rows; pops would claim extra tasks (``pop_out``) or silently consume
#: a result whose response was lost (``pop_in``/``pop_in_any``).
#:
#: Exception: a pop that carries ``wait_ms`` (a long-poll) *is* re-sent
#: after a connection break.  A wait RPC spends almost its whole
#: lifetime blocked server-side before any row is claimed, so a severed
#: connection is overwhelmingly pre-pop; in the rare post-pop race the
#: claimed rows are leased, the reaper requeues them, and ``report`` is
#: first-write-wins — the same recovery chain that already covers a
#: pop whose pool dies.  Not retrying would turn every transient drop
#: during an idle wait into a caller-visible error.
NON_IDEMPOTENT_METHODS: frozenset[str] = frozenset(
    {"create_task", "create_tasks", "pop_out", "pop_in", "pop_in_any"}
)

#: Extra socket-read headroom on top of a long-poll's wait, so a server
#: that blocks the full ``wait_ms`` (plus scheduling noise) is not
#: misread as dead by a client with a bounded ``io_timeout``.
WAIT_SLACK: float = 5.0

#: Idle wait-channel connections kept warm per store.  Wait RPCs run on
#: dedicated sockets (see :class:`RemoteTaskStore`); finished ones are
#: parked for reuse up to this many, the rest closed.
WAIT_POOL_SIZE: int = 2


def _wait_seconds(params: Mapping[str, Any]) -> float:
    """Seconds of server-side long-poll requested by ``params`` (0 if none)."""
    wait_ms = params.get("wait_ms")
    if not wait_ms:
        return 0.0
    return float(wait_ms) / 1000.0


def _retryable_call(method: str, params: Mapping[str, Any]) -> bool:
    """Whether an ambiguous failure of this call may be re-sent."""
    return method in IDEMPOTENT_METHODS or _wait_seconds(params) > 0.0


class PipelinedCall:
    """Handle for one RPC issued through an :class:`RpcPipeline`.

    The call is unresolved until the pipeline flushes the batch it rode
    in; :meth:`result` then returns the RPC's result or raises exactly
    what the lockstep call would have raised (typed remote errors,
    :class:`~repro.util.errors.ConnectionBrokenError` for a
    non-idempotent call lost mid-pipeline, ...).
    """

    __slots__ = ("method", "params", "request_id", "_result", "_error", "_done")

    def __init__(self, method: str, params: dict[str, Any]) -> None:
        self.method = method
        self.params = params
        self.request_id: int | None = None
        self._result: Any = None
        self._error: Exception | None = None
        self._done = False

    @property
    def done(self) -> bool:
        """Whether the call has been resolved (result or error)."""
        return self._done

    def result(self) -> Any:
        """The RPC result; raises the call's error if it failed."""
        if not self._done:
            raise RuntimeError(
                f"pipelined call {self.method!r} has not been flushed"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def _set_result(self, result: Any) -> None:
        self._result = result
        self._done = True

    def _set_error(self, error: Exception) -> None:
        self._error = error
        self._done = True

    def _resolve(self, response: dict[str, Any]) -> None:
        """Resolve from a matched response frame (a typed error frame is
        a *successful* exchange — the server handled the request)."""
        if response.get("ok"):
            self._set_result(response.get("result"))
        else:
            self._set_error(protocol.remote_error(response.get("error", {})))


class RpcPipeline:
    """Pipelined client mode: keep up to N requests in flight.

    Obtained from :meth:`RemoteTaskStore.pipeline`.  Calls are buffered
    and flushed as one coalesced send (a single ``write``/``flush`` for
    the whole batch) followed by a response-matching read, whenever
    ``max_in_flight`` calls are pending — and at context exit::

        with store.pipeline(max_in_flight=64) as pipe:
            calls = [pipe.call("report", {...}) for ... in work]
        results = [c.result() for c in calls]

    This turns K round trips into ~K/N, which is the funcX move: the
    wire format already carries request ids, so the stream needs no
    per-request synchronization.  ``max_in_flight`` also bounds the
    bytes parked in socket buffers in each direction (the server
    answers frame-by-frame, so an unbounded burst of large requests
    could deadlock both windows); the default suits small control
    frames.

    Failure semantics match the lockstep client: when the connection
    breaks mid-batch, already-answered calls keep their results,
    unanswered *idempotent* calls are replayed through the normal
    reconnect/backoff path, and unanswered non-idempotent calls resolve
    to :class:`~repro.util.errors.ConnectionBrokenError`.

    A pipeline instance is not thread-safe; other threads may keep
    using the owning store's lockstep methods concurrently (flushes and
    lockstep RPCs serialize on the store's connection lock).
    """

    def __init__(self, store: "RemoteTaskStore", max_in_flight: int = 64) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self._store = store
        self._max_in_flight = max_in_flight
        self._pending: list[PipelinedCall] = []

    def call(self, method: str, params: dict[str, Any]) -> PipelinedCall:
        """Queue one RPC; flushes automatically at ``max_in_flight``."""
        call = PipelinedCall(method, params)
        self._pending.append(call)
        if len(self._pending) >= self._max_in_flight:
            self.flush()
        return call

    def flush(self) -> None:
        """Send every pending request in one batch and resolve them."""
        batch, self._pending = self._pending, []
        if batch:
            self._store._flush_pipeline(batch)

    def __enter__(self) -> "RpcPipeline":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        # Flush on clean exit only: after an exception in the body the
        # caller is abandoning the batch, not awaiting its results.
        if exc_type is None:
            self.flush()


class _WaitConn:
    """One dedicated socket for a long-poll RPC.

    A wait RPC parks its connection server-side for seconds at a time;
    running it on the store's shared lockstep socket would hold the
    connection lock and starve every fetch/report sharing the store.
    Wait RPCs therefore check a connection out of a small pool, use it
    exclusively, and return it — concurrent waiters each get their own
    socket, and ordinary RPCs never queue behind a wait.
    """

    __slots__ = ("sock", "rfile", "wfile")

    def __init__(self, sock: socket.socket, rfile: Any, wfile: Any) -> None:
        self.sock = sock
        self.rfile = rfile
        self.wfile = wfile

    def close(self) -> None:
        for f in (self.rfile, self.wfile, self.sock):
            try:
                f.close()
            except OSError:
                pass


class RemoteTaskStore(TaskStore):
    """A TaskStore proxied over the EMEWS service protocol."""

    # Long-poll waits are forwarded as ``wait_ms`` and the service blocks
    # server-side (clamped to its max_wait_ms); see pop_out/pop_in_any.
    supports_wait = True

    def __init__(
        self,
        host: str,
        port: int,
        auth_token: str | None = None,
        connect_timeout: float = 10.0,
        io_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._token = auth_token
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._tracer = tracer
        registry = metrics if metrics is not None else get_metrics()
        self._m_rpcs = registry.counter(
            "service.client.rpcs", "requests sent to the EMEWS service"
        )
        self._m_rtt = registry.histogram(
            "service.client.rtt_seconds", help="request/response round-trip time"
        )
        self._m_retries = registry.counter(
            "service.client.retries", "RPC attempts repeated after a connection failure"
        )
        self._m_reconnects = registry.counter(
            "service.client.reconnects", "successful reconnections after a drop"
        )
        self._m_pipeline_flushes = registry.counter(
            "service.client.pipeline_flushes", "coalesced pipeline batches sent"
        )
        self._m_pipeline_batch = registry.histogram(
            "service.client.pipeline_batch_size",
            COUNT_BUCKETS,
            "requests per pipeline flush",
        )
        self._sock: socket.socket | None = None
        self._rfile: Any = None
        self._wfile: Any = None
        self._next_id = 0
        self._id_lock = threading.Lock()
        self._closed = False
        self._ever_connected = False
        # Dedicated long-poll connections (see _WaitConn): a small pool,
        # lazily opened on the first wait RPC.
        self._wpool_lock = threading.Lock()
        self._wait_idle: list[_WaitConn] = []
        self._wait_busy: set[_WaitConn] = set()
        with self._lock:
            # Fail fast on unreachable service / version / auth problems.
            self._connect_locked()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def connected(self) -> bool:
        """Whether a live socket is currently held (no probe is sent)."""
        with self._lock:
            return self._sock is not None

    # -- connection management ---------------------------------------------

    def _new_id(self) -> int:
        """Next request id — unique across the lockstep and wait channels."""
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    def _open_connection(self) -> tuple[socket.socket, Any, Any]:
        """Dial, configure, and handshake one fresh connection.

        Shared by the lockstep channel and the wait pool; returns
        ``(sock, rfile, wfile)`` or raises with the socket closed.
        """
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        try:
            # Blocking I/O after connect (polling timeouts live in EQSQL)
            # unless the caller bounded per-RPC I/O with io_timeout.
            sock.settimeout(self._io_timeout)
            try:
                # Small frames must not wait out Nagle coalescing: every
                # lockstep RPC's request is the last bytes the connection
                # will send until the response arrives.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            # Handshake: ping carries the auth token and returns the
            # protocol version, so a bad token or an incompatible server
            # surfaces here as a typed remote error, not mid-workload.
            request: dict[str, Any] = {
                "id": self._new_id(),
                "method": "ping",
                "params": {},
            }
            if self._token is not None:
                request["token"] = self._token
            tracer = self.tracer
            if tracer.enabled:
                # Trace the handshake like any other RPC so the server's
                # service.ping span parents under it across the wire.
                with tracer.span("rpc.ping", component="service_client") as sp:
                    protocol.inject_trace(request, sp.context)
                    protocol.write_message(wfile, request)
                    response = protocol.read_message(rfile)
            else:
                protocol.write_message(wfile, request)
                response = protocol.read_message(rfile)
            if response is None:
                raise ConnectionError("service closed the connection during handshake")
            if not response.get("ok"):
                protocol.raise_remote_error(response.get("error", {}))
            version = (response.get("result") or {}).get("version")
            if version != protocol.PROTOCOL_VERSION:
                raise ReproError(
                    f"protocol version mismatch: client {protocol.PROTOCOL_VERSION},"
                    f" server {version}"
                )
        except BaseException:
            sock.close()
            raise
        return sock, rfile, wfile

    def _connect_locked(self) -> None:
        """Open a fresh lockstep socket; caller holds the lock."""
        self._sock, self._rfile, self._wfile = self._open_connection()
        if self._ever_connected:
            self._m_reconnects.inc()
        self._ever_connected = True

    def _teardown_locked(self) -> None:
        """Drop the (possibly desynced) socket; caller holds the lock.

        After a partial write or read the stream can hold a stale frame
        that would answer the *next* request; the connection is
        unrecoverable and must be replaced, never reused.
        """
        for f in (self._rfile, self._wfile, self._sock):
            if f is not None:
                try:
                    f.close()
                except OSError:
                    pass
        self._sock = None
        self._rfile = None
        self._wfile = None

    # -- RPC core ----------------------------------------------------------

    def _call(self, method: str, params: dict[str, Any]) -> Any:
        tracer = self.tracer
        if not tracer.enabled:
            return self._call_raw(method, params, tracer, None)
        # The RPC span is the client-side half of the wire hop; the
        # service opens its child span from the propagated context, so
        # RTT decomposes into client wait vs server handling vs DB time.
        with tracer.span(f"rpc.{method}", component="service_client") as sp:
            return self._call_raw(method, params, tracer, sp)

    def _call_raw(
        self,
        method: str,
        params: dict[str, Any],
        tracer: Tracer,
        span: Span | None,
    ) -> Any:
        t0 = time.monotonic()
        retryable = _retryable_call(method, params)
        wait_rpc = _wait_seconds(params) > 0.0
        attempt = 0
        while True:
            try:
                if wait_rpc:
                    result = self._attempt_wait_once(method, params, tracer, span)
                else:
                    result = self._attempt_once(
                        method, params, tracer, span, retryable
                    )
            except _RetryableFailure as failure:
                attempt += 1
                if span is not None:
                    span.set_attr("retries", attempt)
                if attempt >= self._retry.max_attempts:
                    raise ServiceUnavailableError(
                        f"rpc {method!r} failed after {attempt} attempts:"
                        f" {failure.cause}"
                    ) from failure.cause
                self._m_retries.inc()
                time.sleep(self._retry.delay(attempt - 1, self._rng))
                continue
            self._m_rpcs.inc()
            self._m_rtt.observe(time.monotonic() - t0)
            return result

    def _attempt_once(
        self,
        method: str,
        params: dict[str, Any],
        tracer: Tracer,
        span: Span | None,
        retryable: bool,
    ) -> Any:
        """One connect-if-needed + send + receive cycle.

        Raises :class:`_RetryableFailure` when the RPC may be retried
        (connect failure, or mid-request failure of an idempotent
        method) and :class:`ConnectionBrokenError` when a
        non-idempotent request's fate is unknown.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("remote store is closed")
            if self._sock is None:
                try:
                    self._connect_locked()
                except (OSError, ConnectionError) as exc:
                    # Nothing was sent: always safe to retry.
                    raise _RetryableFailure(exc) from exc
            request: dict[str, Any] = {
                "id": self._new_id(),
                "method": method,
                "params": params,
            }
            if self._token is not None:
                request["token"] = self._token
            try:
                if span is not None:
                    protocol.inject_trace(request, span.context)
                    with tracer.span("rpc.send", component="service_client"):
                        protocol.write_message(self._wfile, request)
                    with tracer.span("rpc.recv", component="service_client"):
                        response = protocol.read_message(self._rfile)
                else:
                    protocol.write_message(self._wfile, request)
                    response = protocol.read_message(self._rfile)
                if response is None:
                    raise ConnectionError("service closed the connection")
                if response.get("id") != request["id"]:
                    # Stale frame from a previous, interrupted exchange:
                    # the stream is desynced beyond repair.
                    raise ConnectionError("service response id mismatch (desynced)")
            except (OSError, ConnectionError, ReproError) as exc:
                # The request may or may not have been applied (the
                # ReproError arm is framing/serialization trouble from
                # the protocol layer — same desync).  Either way this
                # socket is done: a later read could return this
                # request's stale response paired with a new id.
                self._teardown_locked()
                if retryable:
                    raise _RetryableFailure(exc) from exc
                raise ConnectionBrokenError(
                    f"connection lost during non-idempotent rpc {method!r};"
                    " not retried (the request may have been applied)"
                ) from exc
        if not response.get("ok"):
            # A typed error response is a *successful* exchange: the
            # server handled the request; no connection fault occurred.
            protocol.raise_remote_error(response.get("error", {}))
        return response.get("result")

    # -- wait channel --------------------------------------------------------

    def _checkout_wait(self) -> _WaitConn:
        """A pooled (or fresh) dedicated connection for one wait RPC."""
        with self._wpool_lock:
            if self._closed:
                raise RuntimeError("remote store is closed")
            if self._wait_idle:
                conn = self._wait_idle.pop()
                self._wait_busy.add(conn)
                return conn
        try:
            sock, rfile, wfile = self._open_connection()
        except (OSError, ConnectionError) as exc:
            # Nothing was sent: always safe to retry.
            raise _RetryableFailure(exc) from exc
        conn = _WaitConn(sock, rfile, wfile)
        with self._wpool_lock:
            if self._closed:
                conn.close()
                raise RuntimeError("remote store is closed")
            self._wait_busy.add(conn)
        return conn

    def _checkin_wait(self, conn: _WaitConn) -> None:
        """Return a healthy wait connection to the pool (or close it)."""
        with self._wpool_lock:
            self._wait_busy.discard(conn)
            if not self._closed and len(self._wait_idle) < WAIT_POOL_SIZE:
                self._wait_idle.append(conn)
                return
        conn.close()

    def _discard_wait(self, conn: _WaitConn) -> None:
        """Drop a wait connection that failed mid-request (desync rule)."""
        with self._wpool_lock:
            self._wait_busy.discard(conn)
        conn.close()

    def _attempt_wait_once(
        self,
        method: str,
        params: dict[str, Any],
        tracer: Tracer,
        span: Span | None,
    ) -> Any:
        """One send + receive cycle for a long-poll RPC.

        Runs on a dedicated wait-channel connection so the store's
        lockstep socket (and its lock) stays free for fetches and
        reports while this request blocks server-side.  Failures always
        raise :class:`_RetryableFailure` — wait RPCs are classified
        retryable (see :data:`NON_IDEMPOTENT_METHODS`).
        """
        conn = self._checkout_wait()
        request: dict[str, Any] = {
            "id": self._new_id(),
            "method": method,
            "params": params,
        }
        if self._token is not None:
            request["token"] = self._token
        stretch = self._io_timeout is not None
        if stretch:
            # The server legitimately goes quiet for the whole wait
            # before answering; the per-RPC I/O bound must cover that
            # plus slack or every empty wait reads as a dead connection.
            conn.sock.settimeout(
                _wait_seconds(params) + max(self._io_timeout, WAIT_SLACK)  # type: ignore[arg-type]
            )
        try:
            if span is not None:
                protocol.inject_trace(request, span.context)
                with tracer.span("rpc.send", component="service_client"):
                    protocol.write_message(conn.wfile, request)
                with tracer.span("rpc.recv", component="service_client"):
                    response = protocol.read_message(conn.rfile)
            else:
                protocol.write_message(conn.wfile, request)
                response = protocol.read_message(conn.rfile)
            if response is None:
                raise ConnectionError("service closed the connection")
            if response.get("id") != request["id"]:
                raise ConnectionError("service response id mismatch (desynced)")
        except (OSError, ConnectionError, ReproError) as exc:
            self._discard_wait(conn)
            raise _RetryableFailure(exc) from exc
        if stretch:
            conn.sock.settimeout(self._io_timeout)
        self._checkin_wait(conn)
        if not response.get("ok"):
            protocol.raise_remote_error(response.get("error", {}))
        return response.get("result")

    # -- pipelining ---------------------------------------------------------

    def pipeline(self, max_in_flight: int = 64) -> RpcPipeline:
        """Open a pipelined view of this connection.

        See :class:`RpcPipeline`; the returned pipeline shares this
        store's socket, auth token, and reconnect semantics.
        """
        return RpcPipeline(self, max_in_flight)

    def _flush_pipeline(self, batch: list[PipelinedCall]) -> None:
        """Send a batch as one coalesced write, then match responses.

        Every call in ``batch`` is resolved by the time this returns:
        with its result, with a typed remote error, or — after a
        mid-batch connection break — by transparent lockstep replay
        (idempotent calls) or :class:`ConnectionBrokenError`
        (non-idempotent calls whose fate is unknown).
        """
        tracer = self.tracer
        if not tracer.enabled:
            self._flush_pipeline_raw(batch, None)
            return
        with tracer.span(
            "rpc.pipeline", component="service_client", batch=len(batch)
        ) as sp:
            self._flush_pipeline_raw(batch, sp)

    def _flush_pipeline_raw(
        self, batch: list[PipelinedCall], span: Span | None
    ) -> None:
        t0 = time.monotonic()
        to_replay: list[PipelinedCall] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("remote store is closed")
            if self._sock is None:
                try:
                    self._connect_locked()
                except (OSError, ConnectionError):
                    # Nothing was sent: every call — non-idempotent ones
                    # included — is provably unapplied, so all of them go
                    # through the lockstep path, which retries connecting
                    # with backoff.
                    to_replay = list(batch)
            if self._sock is not None:
                requests: list[dict[str, Any]] = []
                pending: dict[int, PipelinedCall] = {}
                for call in batch:
                    call.request_id = self._new_id()
                    request: dict[str, Any] = {
                        "id": call.request_id,
                        "method": call.method,
                        "params": call.params,
                    }
                    if self._token is not None:
                        request["token"] = self._token
                    if span is not None:
                        protocol.inject_trace(request, span.context)
                    requests.append(request)
                    pending[call.request_id] = call
                # The server answers frame-by-frame, so one long-poll in
                # the batch can stall every later response by its full
                # wait; size the read bound to the largest wait aboard.
                max_wait = max(
                    (_wait_seconds(call.params) for call in batch), default=0.0
                )
                stretch = max_wait > 0.0 and self._io_timeout is not None
                if stretch:
                    self._sock.settimeout(
                        max_wait + max(self._io_timeout, WAIT_SLACK)  # type: ignore[arg-type]
                    )
                try:
                    protocol.write_messages(self._wfile, requests)
                    for _ in range(len(batch)):
                        response = protocol.read_message(self._rfile)
                        if response is None:
                            raise ConnectionError("service closed the connection")
                        call = pending.pop(response.get("id"), None)  # type: ignore[arg-type]
                        if call is None:
                            # A frame answering no in-flight request:
                            # the stream is desynced beyond repair.
                            raise ConnectionError(
                                "service response id mismatch (desynced)"
                            )
                        call._resolve(response)
                except (OSError, ConnectionError, ReproError) as exc:
                    # Same teardown rule as the lockstep path: the socket
                    # may hold stale frames and is never reused.  Calls
                    # already resolved keep their results; the rest split
                    # by idempotency.
                    self._teardown_locked()
                    for call in batch:
                        if call.done:
                            continue
                        if _retryable_call(call.method, call.params):
                            to_replay.append(call)
                        else:
                            call._set_error(
                                ConnectionBrokenError(
                                    f"connection lost during non-idempotent rpc"
                                    f" {call.method!r} in a pipeline; not retried"
                                    " (the request may have been applied)"
                                )
                            )
                            call._error.__cause__ = exc  # type: ignore[union-attr]
                else:
                    self._m_rpcs.inc(len(batch))
                    self._m_rtt.observe(time.monotonic() - t0)
                    self._m_pipeline_flushes.inc()
                    self._m_pipeline_batch.observe(len(batch))
                finally:
                    if stretch and self._sock is not None:
                        self._sock.settimeout(self._io_timeout)
        # Replay outside the connection lock: _call takes it per attempt
        # (and it is not reentrant).
        for call in to_replay:
            try:
                call._set_result(self._call(call.method, call.params))
            except Exception as exc:  # noqa: BLE001 - stored, raised on result()
                call._set_error(exc)
        if span is not None and to_replay:
            span.set_attr("replayed", len(to_replay))

    # -- TaskStore implementation -------------------------------------------

    def create_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        *,
        priority: int = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> int:
        return self._call(
            "create_task",
            {
                "exp_id": exp_id,
                "eq_type": eq_type,
                "payload": payload,
                "priority": priority,
                "tag": tag,
                "time_created": time_created,
            },
        )

    def create_tasks(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        *,
        priority: int | Sequence[int] = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> list[int]:
        priority_param = priority if isinstance(priority, int) else list(priority)
        return list(
            self._call(
                "create_tasks",
                {
                    "exp_id": exp_id,
                    "eq_type": eq_type,
                    "payloads": list(payloads),
                    "priority": priority_param,
                    "tag": tag,
                    "time_created": time_created,
                },
            )
        )

    def pop_out(
        self,
        eq_type: int,
        n: int = 1,
        *,
        worker_pool: str = "default",
        now: float = 0.0,
        lease: float | None = None,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        params: dict[str, Any] = {
            "eq_type": eq_type,
            "n": n,
            "worker_pool": worker_pool,
            "now": now,
            "lease": lease,
        }
        if wait is not None and wait > 0:
            # Milliseconds on the wire (integral JSON); the service clamps
            # to its own max_wait_ms, so an oversized ask degrades to a
            # shorter block rather than an error.
            params["wait_ms"] = max(1, int(wait * 1000))
        result = self._call("pop_out", params)
        return [(tid, payload) for tid, payload in result]

    def queue_out_length(self, eq_type: int | None = None) -> int:
        return self._call("queue_out_length", {"eq_type": eq_type})

    def report(
        self,
        eq_task_id: int,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        profile: dict | None = None,
    ) -> None:
        # The profile rides the same frame but only when present, so a
        # non-profiling pool sends byte-identical requests to before.
        params: dict = {
            "eq_task_id": eq_task_id,
            "eq_type": eq_type,
            "result": result,
            "now": now,
        }
        if profile is not None:
            params["profile"] = profile
        self._call("report", params)

    def report_batch(
        self,
        reports: Sequence[tuple[int, int, str]],
        *,
        now: float = 0.0,
        profiles: Mapping[int, dict] | None = None,
    ) -> None:
        # One RPC for the whole batch (not the base class's report loop):
        # this is the wire-level win the shared pool reporter rides on.
        if not reports:
            return
        params: dict = {"reports": [list(r) for r in reports], "now": now}
        if profiles:
            # JSON object keys are strings; the backend int-normalizes.
            params["profiles"] = {str(tid): p for tid, p in profiles.items()}
        self._call("report_batch", params)

    def telemetry(self, envelope: dict) -> dict:
        """Push one fleet telemetry envelope; returns the service ack.

        See :mod:`repro.telemetry.fleet` for the envelope schema.
        Classified idempotent (re-delivering a heartbeat is harmless),
        so the client retries it across reconnects like any read.
        """
        return self._call("telemetry", {"envelope": envelope})

    def pop_in(self, eq_task_id: int) -> str | None:
        return self._call("pop_in", {"eq_task_id": eq_task_id})

    def pop_in_any(
        self,
        eq_task_ids: Iterable[int],
        limit: int | None = None,
        *,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        params: dict[str, Any] = {"eq_task_ids": list(eq_task_ids), "limit": limit}
        if wait is not None and wait > 0:
            params["wait_ms"] = max(1, int(wait * 1000))
        result = self._call("pop_in_any", params)
        return [(tid, payload) for tid, payload in result]

    def queue_in_length(self) -> int:
        return self._call("queue_in_length", {})

    def get_task(self, eq_task_id: int) -> TaskRow:
        return protocol.task_row_from_dict(
            self._call("get_task", {"eq_task_id": eq_task_id})
        )

    def get_statuses(self, eq_task_ids: Sequence[int]) -> list[tuple[int, TaskStatus]]:
        result = self._call("get_statuses", {"eq_task_ids": list(eq_task_ids)})
        return [(tid, TaskStatus(status)) for tid, status in result]

    def get_priorities(self, eq_task_ids: Sequence[int]) -> list[tuple[int, int]]:
        result = self._call("get_priorities", {"eq_task_ids": list(eq_task_ids)})
        return [(tid, priority) for tid, priority in result]

    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: int | Sequence[int]
    ) -> int:
        priority_param = (
            priorities if isinstance(priorities, int) else list(priorities)
        )
        return self._call(
            "update_priorities",
            {"eq_task_ids": list(eq_task_ids), "priorities": priority_param},
        )

    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        return self._call("cancel_tasks", {"eq_task_ids": list(eq_task_ids)})

    def requeue(self, eq_task_id: int, *, priority: int | None = None) -> bool:
        # priority=None rides the wire as JSON null and means "restore
        # the task's sticky priority" server-side (wire compat: explicit
        # integers behave exactly as before).
        return self._call(
            "requeue", {"eq_task_id": eq_task_id, "priority": priority}
        )

    def renew_leases(
        self, eq_task_ids: Sequence[int], *, now: float, lease: float
    ) -> int:
        return self._call(
            "renew_leases",
            {"eq_task_ids": list(eq_task_ids), "now": now, "lease": lease},
        )

    def requeue_expired(
        self, *, now: float, priority: int | None = None
    ) -> list[int]:
        return list(
            self._call("requeue_expired", {"now": now, "priority": priority})
        )

    def tasks_for_experiment(self, exp_id: str) -> list[int]:
        return list(self._call("tasks_for_experiment", {"exp_id": exp_id}))

    def tasks_for_tag(self, tag: str) -> list[int]:
        return list(self._call("tasks_for_tag", {"tag": tag}))

    def cache_get(self, cache_key: str, *, now: float = 0.0) -> str | None:
        return self._call("cache_get", {"cache_key": cache_key, "now": now})

    def cache_put(
        self,
        cache_key: str,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        ttl: float | None = None,
    ) -> None:
        self._call(
            "cache_put",
            {
                "cache_key": cache_key,
                "eq_type": eq_type,
                "result": result,
                "now": now,
                "ttl": ttl,
            },
        )

    def cache_stats(self) -> dict:
        return self._call("cache_stats", {})

    def stats(self, *, now: float = 0.0) -> dict:
        return self._call("stats", {"now": now})

    def max_task_id(self) -> int:
        return self._call("max_task_id", {})

    def clear(self) -> None:
        self._call("clear", {})

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_locked()
        # Close every wait-channel connection, busy ones included: a
        # thread blocked in a long-poll gets a socket error, retries,
        # and surfaces "remote store is closed" from the closed check.
        with self._wpool_lock:
            conns = self._wait_idle + list(self._wait_busy)
            self._wait_idle.clear()
            self._wait_busy.clear()
        for conn in conns:
            conn.close()


class _RetryableFailure(Exception):
    """Internal: an attempt failed in a way the retry loop may repeat."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause

"""Task records and trace-context propagation along the payload path.

The EMEWS DB stores a task's payload as an opaque string; nothing else
about a task survives the submit → queue → fetch → execute journey.  To
correlate a worker pool's execution span with the ME-side submit span,
the submit path wraps the payload in a one-key JSON envelope carrying
the :class:`~repro.telemetry.tracing.SpanContext`::

    {"__repro_trace__": [trace_id, span_id], "p": "<original payload>"}

and the fetch path (``EQSQL.query_task*``) unwraps it before the payload
reaches any handler, so task applications never see the envelope.  The
envelope rides unchanged through every store backend and across the
service wire — the DB needs no schema change and the propagation
survives requeue/recovery, because the context lives *in* the payload.

When tracing is disabled nothing is wrapped, and unwrapping is a single
string-prefix check per task — the near-zero-overhead discipline of
:mod:`repro.telemetry.tracing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.telemetry.tracing import SpanContext
from repro.util.serialization import json_dumps, json_loads

#: Envelope marker key.  Must stay the first key emitted by
#: :func:`wrap_payload` — the fast path detects envelopes by prefix.
TRACE_KEY = "__repro_trace__"

_TRACE_PREFIX = '{"' + TRACE_KEY + '"'


@dataclass(frozen=True)
class TaskRecord:
    """One claimed task as a worker pool sees it: identity, payload,
    and (when the submitter traced) the originating span context."""

    eq_task_id: int
    eq_type: int
    payload: str
    trace: SpanContext | None = None


def wrap_payload(payload: str, ctx: SpanContext) -> str:
    """Embed ``ctx`` in ``payload`` (returns the envelope string)."""
    return json_dumps({TRACE_KEY: ctx.to_wire(), "p": payload})


def unwrap_payload(payload: str) -> tuple[str, SpanContext | None]:
    """Split an enveloped payload into (original payload, context).

    Non-enveloped payloads pass through untouched at the cost of one
    ``str.startswith``.  A payload that *looks* enveloped but fails to
    parse is returned unchanged — a user payload colliding with the
    marker must never be corrupted by telemetry.
    """
    if not payload.startswith(_TRACE_PREFIX):
        return payload, None
    try:
        data = json_loads(payload)
        inner = data["p"]
        if not isinstance(inner, str):
            return payload, None
        return inner, SpanContext.from_wire(data.get(TRACE_KEY))
    except Exception:
        return payload, None


def record_from_message(message: dict[str, Any], eq_type: int) -> TaskRecord:
    """Build a :class:`TaskRecord` from an EQSQL work message.

    Work messages produced by a tracing submitter carry a ``trace`` key
    (the wire form of the context) that ``EQSQL.query_task*`` attached
    while unwrapping the payload envelope.
    """
    return TaskRecord(
        eq_task_id=message["eq_task_id"],
        eq_type=eq_type,
        payload=message["payload"],
        trace=SpanContext.from_wire(message.get("trace")),
    )

"""The EMEWS service: a TCP server fronting a resource-local task store.

Paper §IV-C: "Tasks arrive at HPC sites at the EMEWS Service, which
abstracts task caching and queuing operations ... The Service mediates
between model exploration algorithms and worker pools and exposes data
about tasks for queries."

The server is a thread-per-connection JSON-RPC-style endpoint whose
method set equals the :class:`repro.db.TaskStore` contract; any number
of ME algorithms and worker pools may connect concurrently.  An optional
bearer token gates access, standing in for the authenticated channel
(SSH tunnel / OAuth) of the production deployment.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any

from repro.core import protocol
from repro.core.leases import LeaseReaper
from repro.db.backend import TaskStore
from repro.telemetry.journal import (
    EV_CANCEL,
    EV_ENQUEUE,
    EV_LEASE_RENEW,
    EV_POP,
    EV_REPORT,
    EV_REQUEUE,
    ROLE_SERVICE,
    Journal,
    get_journal,
)
from repro.telemetry.fleet import FleetRegistry
from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.telemetry.tracing import Tracer, get_tracer
from repro.util.clock import Clock, SystemClock
from repro.util.errors import AuthenticationError
from repro.util.logging import get_logger, log_event

_log = get_logger(__name__)

#: Bytes per recv in the handler loop: big enough to swallow a whole
#: pipelined burst of control frames in one syscall.
_RECV_CHUNK = 256 * 1024


class _Handler(socketserver.StreamRequestHandler):
    """One connected client; dispatches requests to the store.

    The loop is batch-per-recv: every complete frame already buffered is
    dispatched before any response is sent, and the batch's responses go
    out in a single ``sendall``.  A lockstep client (one request per
    round trip) sees exactly one frame per recv, so its behaviour is
    unchanged; a pipelined client's coalesced burst is answered with a
    coalesced burst — syscalls and wakeups are paid per batch on both
    sides of the wire.
    """

    def handle(self) -> None:
        service: "TaskService" = self.server.service  # type: ignore[attr-defined]
        service.m_connections.inc()
        service.g_connections.inc()
        conn = self.connection
        buf = bytearray()
        try:
            while True:
                newline = buf.find(b"\n")
                if newline < 0:
                    if len(buf) > protocol.MAX_FRAME_BYTES:
                        log_event(
                            _log, "service.bad_frame", level=10,
                            error="frame exceeds max frame size",
                        )
                        return
                    try:
                        chunk = conn.recv(_RECV_CHUNK)
                    except OSError:
                        return
                    if not chunk:
                        return  # clean EOF
                    buf += chunk
                    continue
                out = bytearray()
                while newline >= 0:
                    line = bytes(buf[: newline + 1])
                    del buf[: newline + 1]
                    service.m_bytes_received.inc(len(line))
                    if len(line) > protocol.MAX_FRAME_BYTES:
                        log_event(
                            _log, "service.bad_frame", level=10,
                            error="frame exceeds max frame size",
                        )
                        return
                    try:
                        message = protocol.parse_frame(line)
                    except Exception as exc:
                        # Malformed frame: drop the connection.
                        log_event(
                            _log, "service.bad_frame", level=10, error=str(exc)
                        )
                        return
                    response = self._dispatch(service, message)
                    try:
                        out += protocol.encode_message(response)
                    except ValueError:
                        return
                    newline = buf.find(b"\n")
                try:
                    conn.sendall(out)
                except OSError:
                    return
                service.m_bytes_sent.inc(len(out))
        finally:
            service.g_connections.dec()

    def _dispatch(
        self, service: "TaskService", message: dict[str, Any]
    ) -> dict[str, Any]:
        request_id = message.get("id")
        try:
            service.check_token(message.get("token"))
            method = message.get("method")
            if not isinstance(method, str):
                raise ValueError("request missing method name")
            params = message.get("params") or {}
            if not isinstance(params, dict):
                raise ValueError("request params must be an object")
            tracer = service.tracer
            if not tracer.enabled:
                result = service.call(method, params)
            else:
                # Parent under the client's RPC span (propagated in the
                # frame) so the wire hop decomposes: service handling
                # and DB time nest inside the client-observed RTT.
                with tracer.span(
                    f"service.{method}",
                    component="service",
                    parent=protocol.extract_trace(message),
                ):
                    with tracer.span(f"db.{method}", component="db"):
                        result = service.call(method, params)
            journal = service.journal
            if journal.enabled:
                service.journal_request(journal, method, params, result, message)
            service.m_requests.inc()
            method_counter = service.m_method_requests.get(method)
            if method_counter is not None:
                method_counter.inc()
            return protocol.ok_response(request_id, result)
        except Exception as exc:
            service.m_errors.inc()
            return protocol.error_response(request_id, exc)


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: "TaskService"

    def get_request(self) -> tuple[socket.socket, Any]:
        # Small JSON frames under Nagle wait an ACK-delay per response;
        # the request/response protocol always wants the frame on the
        # wire immediately (the client sets the same option).
        conn, addr = super().get_request()
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP transports (tests with socketpairs) lack it
        return conn, addr


class TaskService:
    """TCP front-end for a :class:`TaskStore`.

    Parameters
    ----------
    store:
        The task store this service mediates access to.
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    auth_token:
        When set, every request must carry this bearer token.
    tracer:
        Span recorder for server-side request handling; defaults to the
        process-wide tracer.  Request frames carrying a ``trace`` field
        get their handling spans parented under the client's RPC span.
    metrics:
        Metrics registry; defaults to the process-wide registry.
    lease_reaper_interval:
        When set, the service runs a :class:`repro.core.leases.LeaseReaper`
        for its store's lifetime: every ``lease_reaper_interval`` seconds
        any RUNNING task whose lease expired is requeued automatically —
        continuous recovery instead of manual ``recover_pool`` calls.
    clock:
        Time source for the lease reaper's ``now``; defaults to a
        :class:`~repro.util.clock.SystemClock`.  Must agree with the
        clock clients stamp ``pop_out(now=...)`` with.
    lease_requeue_priority:
        Output-queue priority the reaper requeues expired tasks at.
        ``None`` (the default) restores each task's own current
        priority; an explicit integer pins recovered tasks to it.
    status_port:
        When set, the service embeds a :class:`~repro.telemetry.monitor.
        StatusServer` (separate daemon thread, stdlib ``http.server``)
        exposing ``/healthz``, ``/readyz``, ``/metrics`` (Prometheus
        text), and ``/status`` (JSON snapshot).  Port 0 picks a free
        port (read it back from :attr:`status_address`).  ``None``
        (the default) disables the endpoint entirely — no thread, no
        socket, no per-request cost.
    status_host:
        Bind address for the status endpoint.
    sampler_interval:
        Seconds between background store snapshots when the status
        server is enabled; the sampler keeps queue-depth/lease gauges
        fresh between scrapes and feeds the ``/status`` depth history.
    journal:
        Flight recorder the service emits per-task lifecycle records
        into; defaults to the process-wide journal (disabled out of the
        box, so the dispatch hot path pays one attribute check).
    straggler_multiple, straggler_min_seconds:
        Straggler detector tuning when the status server is enabled: a
        task is flagged once it exceeds ``straggler_multiple`` × the
        rolling median queue/run time for its work type (but never
        before ``straggler_min_seconds``).
    fleet_stale_multiple, fleet_expiry_multiple, fleet_default_interval:
        Fleet registry liveness tuning: a pushing worker turns *stale*
        after ``fleet_stale_multiple`` × its heartbeat interval without
        an envelope and is dropped after ``fleet_expiry_multiple`` ×;
        workers that do not declare an interval are assumed to push
        every ``fleet_default_interval`` seconds.
    max_wait_ms:
        Server-side cap on the ``wait_ms`` long-poll bound a ``pop_out``
        / ``pop_in_any`` request may ask for.  Thread-per-connection
        makes a blocked handler safe (it delays only its own client),
        but an unbounded block would pin handler threads across
        shutdown; clients re-issue wait RPCs until their own timeout, so
        capping costs only an extra round trip per ``max_wait_ms``.
        Open waiters are counted in the ``service.waiters`` gauge and
        surfaced in ``/status``; :meth:`stop` wakes them all.
    """

    #: Store methods callable over the wire, with result encoders where
    #: the raw return value is not JSON-ready.
    _METHODS = frozenset(
        {
            "create_task",
            "create_tasks",
            "pop_out",
            "queue_out_length",
            "report",
            "report_batch",
            "pop_in",
            "pop_in_any",
            "queue_in_length",
            "get_task",
            "get_statuses",
            "get_priorities",
            "update_priorities",
            "cancel_tasks",
            "requeue",
            "renew_leases",
            "requeue_expired",
            "tasks_for_experiment",
            "tasks_for_tag",
            "cache_get",
            "cache_put",
            "cache_stats",
            "max_task_id",
            "stats",
            "clear",
            "ping",
            "telemetry",
        }
    )

    def __init__(
        self,
        store: TaskStore,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: str | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        lease_reaper_interval: float | None = None,
        clock: Clock | None = None,
        lease_requeue_priority: int | None = None,
        status_port: int | None = None,
        status_host: str = "127.0.0.1",
        sampler_interval: float = 1.0,
        journal: Journal | None = None,
        straggler_multiple: float = 4.0,
        straggler_min_seconds: float = 0.0,
        fleet_stale_multiple: float = 2.0,
        fleet_expiry_multiple: float = 3.0,
        fleet_default_interval: float = 10.0,
        max_wait_ms: int = 30_000,
    ) -> None:
        self._store = store
        self._auth_token = auth_token
        self._max_wait_ms = max(int(max_wait_ms), 0)
        self._stopping = threading.Event()
        self._tracer = tracer
        self._journal = journal
        self._clock: Clock = clock if clock is not None else SystemClock()
        registry = metrics if metrics is not None else get_metrics()
        self._registry = registry
        self.m_requests = registry.counter(
            "service.requests", "requests handled by the EMEWS service"
        )
        self.m_errors = registry.counter(
            "service.errors", "requests that raised (returned an error frame)"
        )
        self.m_connections = registry.counter(
            "service.connections_total", "client connections accepted"
        )
        self.g_connections = registry.gauge(
            "service.connections_active", "currently connected clients"
        )
        self.m_bytes_received = registry.counter(
            "service.bytes_received", "request bytes read off the wire"
        )
        self.m_bytes_sent = registry.counter(
            "service.bytes_sent", "response bytes written to the wire"
        )
        self.g_waiters = registry.gauge(
            "service.waiters", "handler threads blocked in a long-poll wait"
        )
        #: Per-method request counters, pre-registered so the dispatch
        #: hot path is a dict lookup, not a registry get-or-create.
        self.m_method_requests = {
            method: registry.counter(
                f"service.requests.{method}", f"{method} requests handled"
            )
            for method in self._METHODS
        }
        self._server = _Server((host, port), _Handler)
        self._server.service = self
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._reaper: LeaseReaper | None = None
        if lease_reaper_interval is not None:
            self._reaper = LeaseReaper(
                store,
                clock=clock,
                interval=lease_reaper_interval,
                priority=lease_requeue_priority,
                metrics=registry,
            )
        # Fleet registry: always on (idle cost is one dict), so pushed
        # telemetry is never dropped just because the status server is.
        self._fleet = FleetRegistry(
            clock=self._clock,
            metrics=registry,
            default_interval=fleet_default_interval,
            stale_multiple=fleet_stale_multiple,
            expiry_multiple=fleet_expiry_multiple,
        )
        self._status_server = None
        self._sampler = None
        self._detector = None
        if status_port is not None:
            # Lazy import: the monitor package pulls in http.server and
            # the exposition renderer, none of which the plain service
            # path needs.
            from repro.telemetry.anomaly import StragglerDetector
            from repro.telemetry.monitor import StatusServer, StoreSampler

            self._sampler = StoreSampler(
                store,
                metrics=registry,
                clock=self._clock,
                interval=sampler_interval,
            )
            # The detector streams from the journal lazily — it catches
            # up on each /events or /status request rather than running
            # its own thread.  The service keeps its own tail cursor so
            # the journal can be the late-configured global default.
            self._detector = StragglerDetector(
                multiple=straggler_multiple,
                min_seconds=straggler_min_seconds,
                metrics=registry,
            )
            self._detector_seq = 0
            self._status_server = StatusServer(
                host=status_host,
                port=status_port,
                metrics=registry,
                status_fn=self.status_snapshot,
                events_fn=self.events_snapshot,
                fleet_fn=self.fleet_snapshot,
                extra_metrics_fn=self._fleet.render_prometheus,
                readiness_checks={
                    "store": self._check_store_ready,
                    "reaper": self._check_reaper_ready,
                },
            )

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def journal(self) -> Journal:
        """The flight recorder this service emits into (injected or global)."""
        return self._journal if self._journal is not None else get_journal()

    @property
    def store(self) -> TaskStore:
        """The task store behind this service."""
        return self._store

    #: RPC method -> journal event for the service-role hop record.
    _JOURNAL_EVENTS = {
        "create_task": EV_ENQUEUE,
        "create_tasks": EV_ENQUEUE,
        "pop_out": EV_POP,
        "report": EV_REPORT,
        "report_batch": EV_REPORT,
        "renew_leases": EV_LEASE_RENEW,
        "requeue": EV_REQUEUE,
        "requeue_expired": EV_REQUEUE,
        "cancel_tasks": EV_CANCEL,
    }

    def journal_request(
        self,
        journal: Journal,
        method: str,
        params: dict[str, Any],
        result: Any,
        message: dict[str, Any],
    ) -> None:
        """Emit service-role hop records for one handled RPC.

        The DB backend already journals the authoritative state change;
        these records add the *service observed it* hop (with the
        client's trace id off the frame), which the timeline merge
        interleaves to show wire latency per hop.  Only called when the
        journal is enabled.
        """
        event = self._JOURNAL_EVENTS.get(method)
        if event is None:
            return
        context = protocol.extract_trace(message)
        trace_id = context.trace_id if context is not None else ""
        work_type = int(params.get("eq_type", -1))
        now = self._clock.now()
        if method == "create_task":
            task_ids = [int(result)]
        elif method == "create_tasks":
            task_ids = [int(tid) for tid in result]
        elif method == "pop_out":
            task_ids = [int(tid) for tid, _payload in result]
        elif method == "report":
            task_ids = [int(params["eq_task_id"])]
        elif method == "report_batch":
            for tid, eq_type, _res in params.get("reports", []):
                journal.emit(
                    event, int(tid), role=ROLE_SERVICE,
                    work_type=int(eq_type), trace_id=trace_id, time=now,
                )
            return
        elif method == "requeue":
            if not result:
                return
            task_ids = [int(params["eq_task_id"])]
        elif method == "requeue_expired":
            task_ids = [int(tid) for tid in result]
        else:  # renew_leases / cancel_tasks: per requested id
            task_ids = [int(tid) for tid in params.get("eq_task_ids", [])]
        source = str(params.get("worker_pool", "")) if method == "pop_out" else ""
        for tid in task_ids:
            journal.emit(
                event, tid, role=ROLE_SERVICE, work_type=work_type,
                trace_id=trace_id, source=source, time=now,
            )

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the service is bound to."""
        host, port = self._server.server_address[:2]
        return (str(host), int(port))

    def check_token(self, token: str | None) -> None:
        """Validate a request's bearer token."""
        if self._auth_token is not None and token != self._auth_token:
            raise AuthenticationError("invalid or missing service token")

    #: RPCs that accept a ``wait_ms`` long-poll bound.
    _WAIT_METHODS = frozenset({"pop_out", "pop_in_any"})

    def _resolve_wait(self, method: str, params: dict[str, Any]) -> float:
        """Pop ``wait_ms`` off ``params``; return the granted wait seconds.

        The grant is clamped to ``max_wait_ms``, zeroed while stopping
        (late wait RPCs must not re-block a draining service), and
        zeroed for stores that can't honor it — the client's poll loop
        then degrades gracefully instead of erroring.
        """
        wait_ms = params.pop("wait_ms", None)
        if not wait_ms or wait_ms < 0:
            return 0.0
        if self._stopping.is_set():
            return 0.0
        if not getattr(self._store, "supports_wait", False):
            return 0.0
        return min(float(wait_ms), float(self._max_wait_ms)) / 1000.0

    def call(self, method: str, params: dict[str, Any]) -> Any:
        """Dispatch one store method; encodes non-JSON results."""
        if method == "ping":
            return {"version": protocol.PROTOCOL_VERSION}
        if method == "telemetry":
            # Fleet push: handled by the registry, never by the store.
            return self._fleet.observe(params.get("envelope") or {})
        if method not in self._METHODS:
            raise ValueError(f"unknown method: {method}")
        if method in self._WAIT_METHODS and "wait_ms" in params:
            wait = self._resolve_wait(method, params)
            if wait > 0:
                # The handler thread blocks in the store; count it so
                # /status shows how many clients are parked in waits.
                self.g_waiters.inc()
                try:
                    result = getattr(self._store, method)(**params, wait=wait)
                finally:
                    self.g_waiters.dec()
                return result
        result = getattr(self._store, method)(**params)
        if method == "get_task":
            return protocol.task_row_to_dict(result)
        if method == "get_statuses":
            return [[tid, int(status)] for tid, status in result]
        # Report-path profiles also feed the fleet aggregates, so
        # per-work-type tables fill even without push telemetry.  The
        # key checks keep the non-profiling hot path at two dict probes.
        if method == "report" and params.get("profile"):
            self._fleet.observe_profiles([params["profile"]])
        elif method == "report_batch" and params.get("profiles"):
            self._fleet.observe_profiles(list(params["profiles"].values()))
        return result

    @property
    def lease_reaper(self) -> LeaseReaper | None:
        """The embedded lease reaper, when continuous recovery is on."""
        return self._reaper

    @property
    def fleet(self) -> FleetRegistry:
        """The fleet telemetry registry (always constructed)."""
        return self._fleet

    def fleet_snapshot(self) -> dict[str, Any]:
        """The ``/fleet`` JSON document: workers, liveness, profiles."""
        return self._fleet.snapshot(self._clock.now())

    # -- monitoring -----------------------------------------------------------

    @property
    def status_address(self) -> tuple[str, int] | None:
        """(host, port) of the status endpoint, when enabled."""
        if self._status_server is None:
            return None
        return self._status_server.address

    @property
    def status_url(self) -> str | None:
        """Base URL of the status endpoint, when enabled."""
        if self._status_server is None:
            return None
        return self._status_server.url

    def _check_store_ready(self) -> tuple[bool, str]:
        """Readiness probe: one cheap store round trip."""
        try:
            depth = self._store.queue_in_length()
        except Exception as exc:  # noqa: BLE001 - probe must report, not raise
            return False, f"store unreachable: {exc}"
        return True, f"store ok (queue_in={depth})"

    def _check_reaper_ready(self) -> tuple[bool, str]:
        """Readiness probe: the lease reaper thread, if configured."""
        if self._reaper is None:
            return True, "no reaper configured"
        if self._started_at is not None and not self._reaper.is_alive():
            return False, "lease reaper thread is not running"
        return True, "reaper alive"

    def status_snapshot(self) -> dict[str, Any]:
        """The ``/status`` JSON document: queues, leases, service counters.

        Also callable directly (tests, the chaos command) — the HTTP
        endpoint is a transport, not the source of truth.
        """
        now = self._clock.now()
        snapshot: dict[str, Any] = {
            "service": {
                "address": list(self.address),
                "uptime_seconds": (
                    now - self._started_at if self._started_at is not None else 0.0
                ),
                "requests": int(self.m_requests.value),
                "errors": int(self.m_errors.value),
                "connections_total": int(self.m_connections.value),
                "connections_active": int(self.g_connections.value),
                "bytes_received": int(self.m_bytes_received.value),
                "bytes_sent": int(self.m_bytes_sent.value),
                "waiters": int(self.g_waiters.value),
                "reaper": {
                    "configured": self._reaper is not None,
                    "running": self._reaper is not None
                    and self._reaper.is_alive(),
                },
            },
            "store": self._store.stats(now=now),
            # Result-cache occupancy and traffic; the base-contract
            # fallback reports an empty cache for cacheless stores.
            "cache": self._store.cache_stats(),
        }
        if self._sampler is not None:
            snapshot["sampler"] = self._sampler.summary()
        if self._detector is not None:
            self._ingest_journal()
            stragglers = self._detector.summary(now)
            # Fleet cpu-vs-wall verdicts upgrade wall-clock flags into
            # "slow" (pegged CPU) vs "stuck" (idle) when a worker's last
            # envelope covered the task.
            for entry in stragglers.get("active", []):
                verdict = self._fleet.classify_task(int(entry.get("task_id", -1)))
                if verdict is not None:
                    entry.update(verdict)
            snapshot["stragglers"] = stragglers
        snapshot["fleet"] = self._fleet.summary(now)
        return snapshot

    def _ingest_journal(self) -> None:
        """Advance the straggler detector over new journal records."""
        if self._detector is None:
            return
        records = self.journal.tail(self._detector_seq)
        if records:
            self._detector_seq = records[-1].seq
            self._detector.ingest(records)

    def events_snapshot(self, limit: int = 500) -> dict[str, Any]:
        """The ``GET /events`` JSON document: recent records + stragglers."""
        self._ingest_journal()
        journal = self.journal
        records = journal.records()
        snapshot: dict[str, Any] = {
            "journal": {
                "enabled": journal.enabled,
                "records": [r.to_dict() for r in records[-limit:]],
                "total_in_ring": len(records),
                "dropped": journal.dropped,
            },
        }
        if self._detector is not None:
            snapshot["stragglers"] = self._detector.summary(self._clock.now())
        return snapshot

    def start(self) -> "TaskService":
        """Begin serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="emews-service",
            daemon=True,
        )
        self._thread.start()
        self._started_at = self._clock.now()
        if self._reaper is not None:
            self._reaper.start()
        if self._sampler is not None:
            self._sampler.start()
        if self._status_server is not None:
            self._status_server.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        # Wake blocked long-polls first (they return empty immediately)
        # so no handler thread sleeps out its max_wait_ms grant during
        # shutdown; the stopping flag zeroes any wait that races in.
        self._stopping.set()
        self._store.wake_waiters()
        if self._status_server is not None:
            self._status_server.stop()
        if self._sampler is not None:
            self._sampler.stop()
        if self._reaper is not None:
            self._reaper.stop()
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "TaskService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

"""The EMEWS service: a TCP server fronting a resource-local task store.

Paper §IV-C: "Tasks arrive at HPC sites at the EMEWS Service, which
abstracts task caching and queuing operations ... The Service mediates
between model exploration algorithms and worker pools and exposes data
about tasks for queries."

The server is a thread-per-connection JSON-RPC-style endpoint whose
method set equals the :class:`repro.db.TaskStore` contract; any number
of ME algorithms and worker pools may connect concurrently.  An optional
bearer token gates access, standing in for the authenticated channel
(SSH tunnel / OAuth) of the production deployment.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any

from repro.core import protocol
from repro.core.leases import LeaseReaper
from repro.db.backend import TaskStore
from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.telemetry.tracing import Tracer, get_tracer
from repro.util.clock import Clock
from repro.util.errors import AuthenticationError
from repro.util.logging import get_logger, log_event

_log = get_logger(__name__)


class _Handler(socketserver.StreamRequestHandler):
    """One connected client; dispatches requests to the store."""

    def handle(self) -> None:
        while True:
            try:
                message = protocol.read_message(self.rfile)
            except Exception as exc:
                # Malformed frame: drop the connection.
                log_event(_log, "service.bad_frame", level=10, error=str(exc))
                break
            if message is None:
                break
            response = self._dispatch(message)
            try:
                protocol.write_message(self.wfile, response)
            except (BrokenPipeError, ConnectionResetError, ValueError):
                break

    def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        service: "TaskService" = self.server.service  # type: ignore[attr-defined]
        try:
            service.check_token(message.get("token"))
            method = message.get("method")
            if not isinstance(method, str):
                raise ValueError("request missing method name")
            params = message.get("params") or {}
            if not isinstance(params, dict):
                raise ValueError("request params must be an object")
            tracer = service.tracer
            if not tracer.enabled:
                result = service.call(method, params)
            else:
                # Parent under the client's RPC span (propagated in the
                # frame) so the wire hop decomposes: service handling
                # and DB time nest inside the client-observed RTT.
                with tracer.span(
                    f"service.{method}",
                    component="service",
                    parent=protocol.extract_trace(message),
                ):
                    with tracer.span(f"db.{method}", component="db"):
                        result = service.call(method, params)
            service.m_requests.inc()
            return protocol.ok_response(request_id, result)
        except Exception as exc:
            service.m_errors.inc()
            return protocol.error_response(request_id, exc)


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: "TaskService"


class TaskService:
    """TCP front-end for a :class:`TaskStore`.

    Parameters
    ----------
    store:
        The task store this service mediates access to.
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    auth_token:
        When set, every request must carry this bearer token.
    tracer:
        Span recorder for server-side request handling; defaults to the
        process-wide tracer.  Request frames carrying a ``trace`` field
        get their handling spans parented under the client's RPC span.
    metrics:
        Metrics registry; defaults to the process-wide registry.
    lease_reaper_interval:
        When set, the service runs a :class:`repro.core.leases.LeaseReaper`
        for its store's lifetime: every ``lease_reaper_interval`` seconds
        any RUNNING task whose lease expired is requeued automatically —
        continuous recovery instead of manual ``recover_pool`` calls.
    clock:
        Time source for the lease reaper's ``now``; defaults to a
        :class:`~repro.util.clock.SystemClock`.  Must agree with the
        clock clients stamp ``pop_out(now=...)`` with.
    lease_requeue_priority:
        Output-queue priority the reaper requeues expired tasks at.
    """

    #: Store methods callable over the wire, with result encoders where
    #: the raw return value is not JSON-ready.
    _METHODS = frozenset(
        {
            "create_task",
            "create_tasks",
            "pop_out",
            "queue_out_length",
            "report",
            "pop_in",
            "pop_in_any",
            "queue_in_length",
            "get_task",
            "get_statuses",
            "get_priorities",
            "update_priorities",
            "cancel_tasks",
            "requeue",
            "renew_leases",
            "requeue_expired",
            "tasks_for_experiment",
            "tasks_for_tag",
            "max_task_id",
            "clear",
            "ping",
        }
    )

    def __init__(
        self,
        store: TaskStore,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: str | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        lease_reaper_interval: float | None = None,
        clock: Clock | None = None,
        lease_requeue_priority: int = 0,
    ) -> None:
        self._store = store
        self._auth_token = auth_token
        self._tracer = tracer
        registry = metrics if metrics is not None else get_metrics()
        self.m_requests = registry.counter(
            "service.requests", "requests handled by the EMEWS service"
        )
        self.m_errors = registry.counter(
            "service.errors", "requests that raised (returned an error frame)"
        )
        self._server = _Server((host, port), _Handler)
        self._server.service = self
        self._thread: threading.Thread | None = None
        self._reaper: LeaseReaper | None = None
        if lease_reaper_interval is not None:
            self._reaper = LeaseReaper(
                store,
                clock=clock,
                interval=lease_reaper_interval,
                priority=lease_requeue_priority,
                metrics=registry,
            )

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def store(self) -> TaskStore:
        """The task store behind this service."""
        return self._store

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the service is bound to."""
        host, port = self._server.server_address[:2]
        return (str(host), int(port))

    def check_token(self, token: str | None) -> None:
        """Validate a request's bearer token."""
        if self._auth_token is not None and token != self._auth_token:
            raise AuthenticationError("invalid or missing service token")

    def call(self, method: str, params: dict[str, Any]) -> Any:
        """Dispatch one store method; encodes non-JSON results."""
        if method == "ping":
            return {"version": protocol.PROTOCOL_VERSION}
        if method not in self._METHODS:
            raise ValueError(f"unknown method: {method}")
        result = getattr(self._store, method)(**params)
        if method == "get_task":
            return protocol.task_row_to_dict(result)
        if method == "get_statuses":
            return [[tid, int(status)] for tid, status in result]
        return result

    @property
    def lease_reaper(self) -> LeaseReaper | None:
        """The embedded lease reaper, when continuous recovery is on."""
        return self._reaper

    def start(self) -> "TaskService":
        """Begin serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="emews-service",
            daemon=True,
        )
        self._thread.start()
        if self._reaper is not None:
            self._reaper.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._reaper is not None:
            self._reaper.stop()
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "TaskService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

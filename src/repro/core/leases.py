"""Continuous recovery of lost RUNNING tasks via lease expiry.

Paper §IV-B promises that tasks "are not lost when a resource fails".
The queued set is durable by construction; the *running* set is
protected by leases: :meth:`~repro.db.backend.TaskStore.pop_out` stamps
each claimed task with a lease expiry, pools renew their leases on a
heartbeat (:class:`repro.pools.pool.ThreadedWorkerPool`), and the
:class:`LeaseReaper` here periodically requeues any RUNNING task whose
lease lapsed — a pool that dies simply stops heartbeating and its tasks
flow back onto the output queue for live pools to claim.

This generalizes :mod:`repro.core.recovery` from a manual, one-shot
administrative action into an automatic background process, the model
funcX / Globus Compute use for task re-dispatch.
"""

from __future__ import annotations

import threading

from repro.db.backend import TaskStore
from repro.telemetry.metrics import MetricsRegistry, get_metrics
from repro.util.clock import Clock, SystemClock
from repro.util.logging import get_logger, log_event

_log = get_logger(__name__)


class LeaseReaper:
    """Requeues expired-lease RUNNING tasks, continuously or on demand.

    Parameters
    ----------
    store:
        The task store to reap (the service passes its backing store).
    clock:
        Source of ``now`` for expiry comparison.  Tests drive a
        :class:`~repro.util.clock.VirtualClock` and call
        :meth:`run_once`; the threaded mode is wall-clock.
    interval:
        Seconds between sweeps in threaded mode.  Sensible values are a
        fraction of the lease duration: a task is detected as lost at
        most ``lease + interval`` after its last renewal.
    priority:
        Output-queue priority for requeued tasks.  The default of
        ``None`` restores each task's own current priority (its submit
        priority as last adjusted by ``update_priorities``) so recovery
        never demotes tasks the ME promoted; an explicit integer pins
        every requeued task to that priority instead.
    """

    def __init__(
        self,
        store: TaskStore,
        clock: Clock | None = None,
        interval: float = 1.0,
        priority: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"reaper interval must be positive, got {interval}")
        self._store = store
        self._clock = clock if clock is not None else SystemClock()
        self._interval = interval
        self._priority = priority
        registry = metrics if metrics is not None else get_metrics()
        self._m_requeued = registry.counter(
            "leases.tasks_requeued", "expired-lease tasks returned to the queue"
        )
        self._m_sweeps = registry.counter(
            "leases.reaper_sweeps", "lease-reaper scans of the running set"
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def run_once(self) -> list[int]:
        """One sweep: requeue every expired lease; returns requeued ids."""
        self._m_sweeps.inc()
        requeued = self._store.requeue_expired(
            now=self._clock.now(), priority=self._priority
        )
        if requeued:
            self._m_requeued.inc(len(requeued))
            log_event(
                _log,
                "leases.requeued",
                n=len(requeued),
                eq_task_ids=requeued,
            )
        return requeued

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.run_once()
            except Exception as exc:  # noqa: BLE001 - reaper must outlive faults
                # A transient store error (e.g. the DB restarting) must
                # not kill continuous recovery; log and sweep again.
                log_event(_log, "leases.reaper_error", level=30, error=str(exc))

    def start(self) -> "LeaseReaper":
        """Begin sweeping on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("lease reaper already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="lease-reaper", daemon=True
        )
        self._thread.start()
        return self

    def is_alive(self) -> bool:
        """Whether the sweep thread is currently running (liveness probe)."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def stop(self) -> None:
        """Stop the sweep thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "LeaseReaper":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

"""Wire protocol for the EMEWS task service.

Newline-delimited JSON over a stream socket: each request is one JSON
object ``{"id": n, "method": name, "params": {...}, "token": "..."}``
and each response ``{"id": n, "ok": true, "result": ...}`` or
``{"id": n, "ok": false, "error": {"type": ..., "message": ...}}``.

The method set maps one-to-one onto :class:`repro.db.TaskStore`, so a
remote client is just another store implementation — the paper's remote
hop (ME algorithm → SSH tunnel → EMEWS service → DB) becomes a
transport detail beneath the unchanged EQSQL API.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from typing import Any, BinaryIO

from repro.db.schema import TaskRow, TaskStatus
from repro.telemetry.tracing import SpanContext
from repro.util.errors import (
    AuthenticationError,
    NotFoundError,
    ReproError,
    SerializationError,
)

#: Protocol version, checked at connection time by the handshake.
PROTOCOL_VERSION = 1

#: Default upper bound on a single frame's wire size.  A peer that sends
#: a longer line (malicious, buggy, or simply not speaking this
#: protocol) would otherwise make ``readline`` buffer without limit;
#: past this the reader raises :class:`SerializationError` instead.
#: Generous relative to real payloads (the fabric caps task payloads at
#: 10 MB, funcX-style) while still bounding memory per connection.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Exception types that cross the wire by name.
_ERROR_TYPES: dict[str, type[Exception]] = {
    "NotFoundError": NotFoundError,
    "AuthenticationError": AuthenticationError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "ReproError": ReproError,
}


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize one message to its wire frame (newline included)."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if b"\n" in data:
        # json.dumps never emits raw newlines, but guard the invariant
        # the framing depends on.
        raise SerializationError("protocol message contains a newline")
    return data + b"\n"


def write_message(stream: BinaryIO, message: dict[str, Any]) -> int:
    """Write one newline-delimited JSON message and flush.

    Returns the frame size in bytes (newline included) so callers can
    keep wire-traffic counters without re-serializing.
    """
    frame = encode_message(message)
    stream.write(frame)
    stream.flush()
    return len(frame)


def write_messages(stream: BinaryIO, messages: Iterable[dict[str, Any]]) -> int:
    """Write many frames as one coalesced send with a single flush.

    The pipelining primitive: N lockstep ``write_message`` calls cost N
    syscalls (and, without TCP_NODELAY, N Nagle stalls); coalescing puts
    the whole batch in one segment train.  Returns total bytes written.
    """
    buf = b"".join(encode_message(m) for m in messages)
    if buf:
        stream.write(buf)
        stream.flush()
    return len(buf)


def parse_frame(line: bytes) -> dict[str, Any]:
    """Decode one newline-delimited frame (the bytes of a single line).

    Shared by the stream reader and byte-buffer readers (the service's
    batch-per-recv loop) so framing errors are classified identically.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SerializationError(f"malformed protocol frame: {exc}") from exc
    if not isinstance(message, dict):
        raise SerializationError("protocol frame is not a JSON object")
    return message


def read_frame(
    stream: BinaryIO, max_frame: int = MAX_FRAME_BYTES
) -> tuple[dict[str, Any] | None, int]:
    """Read one message plus its wire size; ``(None, 0)`` on clean EOF.

    ``max_frame`` bounds the bytes buffered for a single frame; an
    overlong line raises :class:`SerializationError` rather than growing
    the buffer without limit.
    """
    line = stream.readline(max_frame + 1)
    if not line:
        return None, 0
    if len(line) > max_frame and not line.endswith(b"\n"):
        raise SerializationError(
            f"protocol frame exceeds max frame size ({max_frame} bytes)"
        )
    return parse_frame(line), len(line)


def read_message(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one message; None on clean EOF."""
    return read_frame(stream)[0]


def inject_trace(message: dict[str, Any], ctx: SpanContext | None) -> None:
    """Attach a span context to a request frame (no-op for None).

    The ``trace`` field is optional and ignored by older peers, so
    traced and untraced clients interoperate freely.
    """
    if ctx is not None:
        message["trace"] = ctx.to_wire()


def extract_trace(message: dict[str, Any]) -> SpanContext | None:
    """The span context carried by a frame, if any (malformed → None)."""
    return SpanContext.from_wire(message.get("trace"))


def error_response(request_id: Any, exc: Exception) -> dict[str, Any]:
    """Build the error response for a failed request."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def ok_response(request_id: Any, result: Any) -> dict[str, Any]:
    """Build the success response for a request."""
    return {"id": request_id, "ok": True, "result": result}


def remote_error(error: dict[str, Any]) -> Exception:
    """Build the client-side exception for a server-side error frame,
    preserving its type where the type is part of the store contract."""
    exc_type = _ERROR_TYPES.get(error.get("type", ""), ReproError)
    return exc_type(error.get("message", "remote error"))


def raise_remote_error(error: dict[str, Any]) -> None:
    """Re-raise a server-side error client-side (see :func:`remote_error`)."""
    raise remote_error(error)


def task_row_to_dict(row: TaskRow) -> dict[str, Any]:
    """Serialize a TaskRow for the wire."""
    return {
        "eq_task_id": row.eq_task_id,
        "eq_task_type": row.eq_task_type,
        "eq_status": int(row.eq_status),
        "worker_pool": row.worker_pool,
        "json_out": row.json_out,
        "json_in": row.json_in,
        "time_created": row.time_created,
        "time_start": row.time_start,
        "time_stop": row.time_stop,
        "lease_expiry": row.lease_expiry,
        "eq_priority": row.eq_priority,
        "tags": row.tags,
    }


def task_row_from_dict(data: dict[str, Any]) -> TaskRow:
    """Deserialize a TaskRow from the wire."""
    return TaskRow(
        eq_task_id=data["eq_task_id"],
        eq_task_type=data["eq_task_type"],
        eq_status=TaskStatus(data["eq_status"]),
        worker_pool=data.get("worker_pool"),
        json_out=data["json_out"],
        json_in=data.get("json_in"),
        time_created=data["time_created"],
        time_start=data.get("time_start"),
        time_stop=data.get("time_stop"),
        lease_expiry=data.get("lease_expiry"),
        # .get with a default keeps wire compat with pre-sticky-priority
        # services that do not send the field.
        eq_priority=int(data.get("eq_priority", 0)),
        tags=list(data.get("tags", [])),
    )

"""Shared constants and enums for the task API.

``TaskStatus`` is re-exported from the database schema so API users can
treat :mod:`repro.core` as the single import surface.
"""

from __future__ import annotations

import enum

from repro.db.schema import TaskStatus

__all__ = [
    "TaskStatus",
    "ResultStatus",
    "EQ_STOP",
    "EQ_ABORT",
    "EQ_TIMEOUT",
    "DEFAULT_WORK_TYPE",
]


class ResultStatus(enum.Enum):
    """Outcome of a blocking query (paper: a 'status' message such as
    TIMEOUT is returned when polling fails)."""

    SUCCESS = "success"
    FAILURE = "failure"


#: Control payload instructing a worker pool to shut down.  Submitting a
#: task of a pool's work type with this payload drains the pool cleanly:
#: the worker that pops it stops fetching and signals pool shutdown.
EQ_STOP = "EQ_STOP"

#: Control payload instructing a worker pool to abort immediately,
#: abandoning owned tasks (they remain RUNNING in the DB and can be
#: re-queued by fault-tolerance tooling).
EQ_ABORT = "EQ_ABORT"

#: Status payload returned by a query that timed out while polling.
EQ_TIMEOUT = "TIMEOUT"

#: Work type used when an application has a single kind of task.
DEFAULT_WORK_TYPE = 0

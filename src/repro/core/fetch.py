"""The worker-pool batch/threshold fetch policy (paper §IV-D).

A worker pool is configured with a *batch size* — the maximum number of
tasks it may own (popped but not yet completed) — and a *threshold* —
how large the deficit between batch size and owned tasks must grow
before more tasks are fetched.  From the paper:

    "if a worker pool is configured to possess 33 tasks at a time, if it
    owns 30 uncompleted tasks when querying the output queue, it will
    only obtain 3 additional tasks ... a threshold value specifies how
    large the deficit between requested tasks and owned tasks must be
    before more tasks are obtained."

This policy is the knob Figure 3 studies: batch > workers oversubscribes
the pool (an in-memory cache of claimed tasks — high utilization but the
cached tasks become ineligible for reprioritization); batch == workers
with threshold 1 keeps every task reprioritizable at some utilization
cost; a large threshold produces the idle saw-tooth.

The function here is deliberately pure — the threaded pools
(:mod:`repro.pools`) and the discrete-event pool model
(:mod:`repro.sim.pool_model`) share it, so the benchmarks measure
exactly the code the real pools run.
"""

from __future__ import annotations

from dataclasses import dataclass


def fetch_count(batch_size: int, threshold: int, owned: int) -> int:
    """Number of tasks a pool should request from the output queue.

    Returns the deficit ``batch_size - owned`` when it has reached
    ``threshold``, else 0 (don't query yet).

    ``batch_size`` must be >= 1; ``threshold`` must be in
    ``[1, batch_size]``; ``owned`` must be >= 0.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if not 1 <= threshold <= batch_size:
        raise ValueError(
            f"threshold must be in [1, {batch_size}], got {threshold}"
        )
    if owned < 0:
        raise ValueError(f"owned must be >= 0, got {owned}")
    deficit = batch_size - owned
    return deficit if deficit >= threshold else 0


@dataclass(frozen=True)
class FetchPolicy:
    """A (batch size, threshold) pair with convenience accessors."""

    batch_size: int
    threshold: int = 1

    def __post_init__(self) -> None:
        # Validate eagerly so misconfigured pools fail at construction.
        fetch_count(self.batch_size, self.threshold, 0)

    def to_fetch(self, owned: int) -> int:
        """Tasks to request given the current owned count."""
        return fetch_count(self.batch_size, self.threshold, owned)

    def oversubscribes(self, n_workers: int) -> bool:
        """True when the policy claims more tasks than the pool has
        workers — the in-memory task-cache regime of Fig 3 (top)."""
        return self.batch_size > n_workers

"""The paper's primary contribution: the EQSQL task API (paper §V).

This package provides:

- :class:`EQSQL` — the class-based Python task API of Listing 1
  (``submit_task`` / ``query_task`` / ``report_task`` / ``query_result``)
  plus the worker-pool batch query of §IV-D and priority / cancellation
  operations.
- :class:`Future` and the asynchronous collection functions
  ``as_completed`` / ``pop_completed`` / ``update_priority`` of §V-B.
- The EMEWS service — a TCP server exposing a remote
  :class:`repro.db.TaskStore`, with a client-side store that lets the
  same :class:`EQSQL` code run against a resource-local database from
  across the (simulated) wide area, mirroring the paper's SSH-tunnel hop.
- An R-style functional facade (:mod:`repro.core.rapi`) demonstrating
  the multi-language API surface of Listing 1.
"""

from repro.core.constants import (
    DEFAULT_WORK_TYPE,
    EQ_ABORT,
    EQ_STOP,
    EQ_TIMEOUT,
    ResultStatus,
    TaskStatus,
)
from repro.core.eqsql import EQSQL, init_eqsql
from repro.core.fetch import FetchPolicy, fetch_count
from repro.core.futures import (
    Future,
    as_completed,
    cancel_futures,
    pop_completed,
    update_priority,
)
from repro.core.leases import LeaseReaper
from repro.core.service import TaskService
from repro.core.service_client import RemoteTaskStore, RetryPolicy

__all__ = [
    "LeaseReaper",
    "RetryPolicy",
    "DEFAULT_WORK_TYPE",
    "EQ_ABORT",
    "EQ_STOP",
    "EQ_TIMEOUT",
    "ResultStatus",
    "TaskStatus",
    "EQSQL",
    "init_eqsql",
    "FetchPolicy",
    "fetch_count",
    "Future",
    "as_completed",
    "cancel_futures",
    "pop_completed",
    "update_priority",
    "TaskService",
    "RemoteTaskStore",
]

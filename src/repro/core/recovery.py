"""Fault-tolerant task recovery.

Paper §IV-B: the task database "decouples the tasks produced by the ME
algorithm, and the status of those tasks ... from the ME execution such
that tasks and their results are not lost when a resource fails, but
rather are described in the system in enough detail so that they can be
executed if not yet running or restarted if necessary."

The EMEWS DB already preserves queued tasks across any failure (they sit
in ``emews_queue_out``).  What needs active recovery is the *running*
set: tasks a crashed or preempted worker pool had popped but never
reported.  :func:`find_orphaned_tasks` identifies them by pool name
and/or stuck-time heuristic; :func:`requeue_tasks` pushes them back onto
the output queue (status → QUEUED, priority restored), after which any
live pool will pick them up.

These are the *manual* recovery tools for an operator who knows a pool
is dead.  The continuous, automatic form is the lease system
(:mod:`repro.core.leases`): leased tasks whose pool stops heartbeating
are requeued by the reaper without anyone calling :func:`recover_pool`.
:func:`reap_expired` exposes one reaper sweep through the EQSQL API.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.eqsql import EQSQL
from repro.db.schema import TaskStatus


@dataclass(frozen=True)
class OrphanedTask:
    """A running-state task presumed lost with its pool."""

    eq_task_id: int
    eq_task_type: int
    worker_pool: str | None
    time_start: float | None
    payload: str


def find_orphaned_tasks(
    eqsql: EQSQL,
    exp_id: str,
    worker_pool: str | None = None,
    stuck_after: float | None = None,
) -> list[OrphanedTask]:
    """Running tasks of an experiment that look abandoned.

    ``worker_pool`` restricts to tasks owned by a specific (dead) pool;
    ``stuck_after`` flags tasks running longer than that many seconds of
    the EQSQL clock.  With neither filter, every RUNNING task matches —
    appropriate after a known total outage.
    """
    now = eqsql.clock.now()
    orphans: list[OrphanedTask] = []
    for eq_task_id in eqsql.store.tasks_for_experiment(exp_id):
        row = eqsql.task_info(eq_task_id)
        if row.eq_status != TaskStatus.RUNNING:
            continue
        if worker_pool is not None and row.worker_pool != worker_pool:
            continue
        if stuck_after is not None and row.time_start is not None:
            # A RUNNING row with no recorded start time is infinitely
            # stuck (it can only mean a half-applied claim); substituting
            # ``now`` would compute age 0 and hide it forever.
            if now - row.time_start < stuck_after:
                continue
        orphans.append(
            OrphanedTask(
                eq_task_id=row.eq_task_id,
                eq_task_type=row.eq_task_type,
                worker_pool=row.worker_pool,
                time_start=row.time_start,
                payload=row.json_out,
            )
        )
    return orphans


def requeue_tasks(
    eqsql: EQSQL,
    orphans: Sequence[OrphanedTask],
    priority: int | None = None,
) -> int:
    """Return orphaned tasks to the output queue; returns count requeued.

    Each task keeps its identity (id, payload, experiment links, and —
    with the default ``priority=None`` — its current priority) — a
    future already held against it will still resolve when a live pool
    re-executes and reports it.  Tasks that completed between detection
    and requeue (a slow pool finally reported) are skipped: ``requeue``
    itself atomically refuses non-RUNNING rows, so there is no window in
    which a racing report can be overwritten (and no extra status
    round-trip per task over a remote store).
    """
    requeued = 0
    for orphan in orphans:
        if eqsql.store.requeue(orphan.eq_task_id, priority=priority):
            requeued += 1
    return requeued


def recover_pool(
    eqsql: EQSQL, exp_id: str, worker_pool: str, priority: int | None = None
) -> int:
    """One-call recovery of a known-dead pool's tasks."""
    orphans = find_orphaned_tasks(eqsql, exp_id, worker_pool=worker_pool)
    return requeue_tasks(eqsql, orphans, priority=priority)


def reap_expired(eqsql: EQSQL, priority: int | None = None) -> list[int]:
    """One lease-reaper sweep at the EQSQL clock's ``now``.

    Requeues every RUNNING task whose lease expired; returns their ids.
    Unlike :func:`recover_pool` this needs no pool name — any leased
    task that stopped being renewed is recovered, whatever killed it.
    """
    return eqsql.store.requeue_expired(now=eqsql.clock.now(), priority=priority)

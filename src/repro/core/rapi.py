"""R-style functional task API (paper Listing 1, R column).

OSPREY is explicitly multi-language: "The API for task submission,
result reporting, and querying the queues is implemented in both Python
and R."  This module mirrors the R function surface —

.. code-block:: r

    eq_submit_task  <- function(exp_id, eq_type, payload, priority=0)
    eq_query_task   <- function(eq_type, delay=0.5, timeout=2.0)
    eq_report_task  <- function(eq_task_id, eq_type, result)
    eq_query_result <- function(eq_task_id, delay=0.5, timeout=2.0)

— as module-level Python functions bound to a module-level connection,
exactly how the R package holds a package-environment DB handle.  R's
named lists become Python dicts.  The R API (like the paper's) has no
futures and no multi-task query; those are Python-only extensions.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.constants import ResultStatus
from repro.core.eqsql import EQSQL, init_eqsql
from repro.util.errors import InvalidStateError

_lock = threading.Lock()
_eqsql: EQSQL | None = None


def eq_init(db_path: str | None = None, eqsql: EQSQL | None = None) -> None:
    """Initialize the module-level connection (R: ``eq_init``).

    Pass an existing :class:`EQSQL` to share a connection with Python
    code, or a ``db_path`` to open one.
    """
    global _eqsql
    with _lock:
        if _eqsql is not None:
            raise InvalidStateError("eq_init: already initialized; call eq_shutdown first")
        _eqsql = eqsql if eqsql is not None else init_eqsql(db_path)


def eq_shutdown(close: bool = False) -> None:
    """Release the module-level connection (R: ``eq_shutdown``).

    ``close=True`` also closes the underlying store; leave it False when
    the connection was shared via ``eq_init(eqsql=...)``.
    """
    global _eqsql
    with _lock:
        if _eqsql is not None and close:
            _eqsql.close()
        _eqsql = None


def _conn() -> EQSQL:
    if _eqsql is None:
        raise InvalidStateError("R API not initialized; call eq_init first")
    return _eqsql


def eq_submit_task(
    exp_id: str, eq_type: int, payload: str, priority: int = 0
) -> int:
    """Submit a task; returns the integer task id (R semantics — the R
    API predates futures)."""
    future = _conn().submit_task(exp_id, eq_type, payload, priority=priority)
    return future.eq_task_id


def eq_query_task(
    eq_type: int, delay: float = 0.5, timeout: float = 2.0
) -> dict[str, Any]:
    """Pop one task for execution; a 'work' named-list on success, a
    'status' named-list (payload 'TIMEOUT') on polling failure."""
    message = _conn().query_task(eq_type, n=1, delay=delay, timeout=timeout)
    assert isinstance(message, dict)
    return message


def eq_report_task(eq_task_id: int, eq_type: int, result: str) -> None:
    """Report a completed task's result."""
    _conn().report_task(eq_task_id, eq_type, result)


def eq_query_result(
    eq_task_id: int, delay: float = 0.5, timeout: float = 2.0
) -> dict[str, Any]:
    """Pop one result off the input queue; named-list style return:
    ``{'type': 'result', 'eq_task_id': id, 'payload': result}`` or the
    TIMEOUT status message."""
    status, payload = _conn().query_result(eq_task_id, delay=delay, timeout=timeout)
    if status == ResultStatus.FAILURE:
        return {"type": "status", "payload": payload}
    return {"type": "result", "eq_task_id": eq_task_id, "payload": payload}


# ---------------------------------------------------------------------------
# Asynchronous extensions (paper §VII future work: "we will extend the
# asynchronous API to additional ME algorithm languages, starting with
# R").  R has no Future objects, so the functional forms operate on task
# id vectors and return named-list results; like their Python
# counterparts they perform *batch* operations on the EMEWS DB.
# ---------------------------------------------------------------------------


def eq_as_completed(
    eq_task_ids: list[int],
    n: int | None = None,
    delay: float = 0.5,
    timeout: float = 2.0,
) -> list[dict[str, Any]]:
    """Collect up to ``n`` completed results from a set of tasks.

    Polls the input queue in batch until ``n`` results (all, when
    ``None``) are gathered or ``timeout`` expires; returns 'result'
    named-lists for whatever completed in time (possibly fewer than
    ``n`` — R callers check ``length()``).
    """
    eqsql = _conn()
    remaining = list(dict.fromkeys(eq_task_ids))
    target = len(remaining) if n is None else min(n, len(remaining))
    collected: list[dict[str, Any]] = []
    deadline = eqsql.clock.deadline(timeout)
    while len(collected) < target:
        popped = eqsql.pop_completed_ids(remaining, limit=target - len(collected))
        for eq_task_id, payload in popped:
            remaining.remove(eq_task_id)
            collected.append(
                {"type": "result", "eq_task_id": eq_task_id, "payload": payload}
            )
            if len(collected) >= target:
                break
        if len(collected) >= target or eqsql.clock.expired(deadline):
            break
        eqsql.clock.sleep(delay)
    return collected


def eq_pop_completed(
    eq_task_ids: list[int], delay: float = 0.5, timeout: float = 2.0
) -> dict[str, Any]:
    """The first completed result among ``eq_task_ids``, or the TIMEOUT
    status message.  The caller drops the returned id from its vector
    (R vectors are copied, not mutated in place)."""
    results = eq_as_completed(eq_task_ids, n=1, delay=delay, timeout=timeout)
    if not results:
        return {"type": "status", "payload": "TIMEOUT"}
    return results[0]


def eq_update_priority(
    eq_task_ids: list[int], priority: int | list[int]
) -> int:
    """Batch reprioritization; returns the number of tasks updated."""
    return _conn().update_priorities(eq_task_ids, priority)


def eq_cancel_tasks(eq_task_ids: list[int]) -> int:
    """Batch cancellation of queued tasks; returns the number canceled."""
    return _conn().cancel_tasks(eq_task_ids)


def eq_query_status(eq_task_ids: list[int]) -> list[dict[str, Any]]:
    """Statuses as named lists: ``{'eq_task_id': id, 'status': label}``."""
    return [
        {"eq_task_id": eq_task_id, "status": status.label()}
        for eq_task_id, status in _conn().query_status(eq_task_ids)
    ]

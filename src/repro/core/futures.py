"""Futures and asynchronous collection operations (paper §V-B).

A :class:`Future` encapsulates the asynchronous execution of a task:
it is created by ``EQSQL.submit_task`` and offers status queries,
non-blocking result checks, cancellation, and reprioritization.

The module-level functions operate on *collections* of futures —
``as_completed`` yields futures as their results land, ``pop_completed``
removes and returns the first completed future, ``update_priority``
re-prioritizes a batch — and, as the paper emphasizes, perform **batch**
operations on the EMEWS DB rather than iterating per-future.  Together
they are the substrate for asynchronous ME algorithms (Fig 2).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.core.constants import ResultStatus, TaskStatus
from repro.util.backoff import DecorrelatedJitter
from repro.util.errors import TimeoutError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eqsql import EQSQL


class Future:
    """Handle to one submitted task.

    The result payload is cached on first retrieval — whether via
    :meth:`result` or a batch pop through :func:`as_completed` — because
    popping the input queue consumes the DB row.
    """

    def __init__(
        self,
        eqsql: "EQSQL",
        eq_task_id: int,
        eq_type: int,
        exp_id: str | None = None,
        tag: str | None = None,
    ) -> None:
        self.eqsql = eqsql
        self.eq_task_id = eq_task_id
        self.eq_type = eq_type
        self.exp_id = exp_id
        self.tag = tag
        self._result: str | None = None
        self._cancelled = False

    def __repr__(self) -> str:
        return (
            f"Future(eq_task_id={self.eq_task_id}, eq_type={self.eq_type}, "
            f"status={self.status.label()})"
        )

    # -- result ---------------------------------------------------------------

    def _set_result(self, result: str) -> None:
        """Cache a result delivered by a batch pop."""
        self._result = result

    def result(
        self, delay: float = 0.5, timeout: float = 2.0
    ) -> tuple[ResultStatus, str]:
        """The task's result, polling up to ``timeout`` seconds.

        Returns ``(SUCCESS, payload)`` once available (cached
        thereafter), ``(FAILURE, 'TIMEOUT')`` if polling expires.
        """
        if self._result is not None:
            return (ResultStatus.SUCCESS, self._result)
        status, payload = self.eqsql.query_result(
            self.eq_task_id, delay=delay, timeout=timeout
        )
        if status == ResultStatus.SUCCESS:
            self._result = payload
        return (status, payload)

    # -- status ------------------------------------------------------------------

    @property
    def status(self) -> TaskStatus:
        """The task's current database status."""
        if self._cancelled:
            return TaskStatus.CANCELED
        if self._result is not None:
            # A cached result is definitive — and cache-hit futures hold
            # a synthetic id with no database row to consult.
            return TaskStatus.COMPLETE
        statuses = self.eqsql.query_status([self.eq_task_id])
        if not statuses:
            raise ValueError(f"task {self.eq_task_id} not found")
        status = statuses[0][1]
        if status == TaskStatus.CANCELED:
            self._cancelled = True
        return status

    def done(self) -> bool:
        """True when the task is complete or canceled."""
        if self._result is not None or self._cancelled:
            return True
        return self.status in (TaskStatus.COMPLETE, TaskStatus.CANCELED)

    @property
    def cancelled(self) -> bool:
        """True when the task was canceled before running."""
        return self._cancelled or self.status == TaskStatus.CANCELED

    def cancel(self) -> bool:
        """Cancel the task if it is still queued; returns success.

        The cached cancelled flag reflects *store truth*: it is set only
        when the store actually cancelled the id (or independently
        reports it CANCELED), never merely because cancellation was
        attempted.  Cancelling an already-RUNNING task therefore returns
        False and the future keeps tracking the live status — the pool
        may still report a result.
        """
        if self._cancelled:
            return True
        if self.eqsql.cancel_tasks([self.eq_task_id]) == 1:
            self._cancelled = True
            return True
        # count == 0 is ambiguous: the task may be RUNNING/COMPLETE (not
        # cancellable) — or already CANCELED, by another actor or by a
        # first attempt whose response was lost and retried.  Consult
        # the store rather than guessing either way.
        statuses = self.eqsql.query_status([self.eq_task_id])
        if statuses and statuses[0][1] == TaskStatus.CANCELED:
            self._cancelled = True
            return True
        return False

    # -- priority -----------------------------------------------------------------

    @property
    def priority(self) -> int | None:
        """The task's output-queue priority; None once popped."""
        priorities = self.eqsql.query_priorities([self.eq_task_id])
        return priorities[0][1] if priorities else None

    @priority.setter
    def priority(self, value: int) -> None:
        self.eqsql.update_priorities([self.eq_task_id], value)


# -- collection operations ----------------------------------------------------------


def _drain_completed(
    futures: Sequence[Future],
    limit: int | None = None,
    wait: float | None = None,
) -> list[Future]:
    """One batch DB pop: collect futures whose results just landed.

    ``limit`` bounds consumption: popping a result removes it from the
    input queue, so a caller that will only yield k more futures must
    not strip results it would merely cache — a crash would lose them,
    defeating checkpoint/resume.  ``wait`` long-polls a wait-capable
    store: the pop blocks server-side up to that many seconds and
    returns the instant any watched result lands.
    """
    pending = [f for f in futures if f._result is None and not f._cancelled]
    if not pending:
        return []
    eqsql = pending[0].eqsql
    by_id = {f.eq_task_id: f for f in pending}
    tracer = eqsql.tracer
    t0 = eqsql.clock.now() if tracer.enabled else 0.0
    popped = eqsql.pop_completed_ids(list(by_id), limit=limit, wait=wait)
    if popped:
        # Only drains that actually landed results are interesting;
        # empty polls would swamp the trace at one span per delay tick.
        tracer.add_span(
            "futures.drain",
            "eqsql",
            t0,
            eqsql.clock.now(),
            parent=tracer.current_context(),
            attrs={"watched": len(pending), "landed": len(popped)},
        )
    landed: list[Future] = []
    for eq_task_id, result in popped:
        future = by_id[eq_task_id]
        future._set_result(result)
        landed.append(future)
    return landed


def as_completed(
    futures: list[Future],
    pop: bool = False,
    n: int | None = None,
    delay: float = 0.5,
    timeout: float | None = None,
) -> Iterator[Future]:
    """Yield futures as they complete (paper §V-B).

    Creates a generator that yields up to ``n`` futures (all of them when
    ``n`` is None) in completion order, polling the EMEWS DB in *batch*
    — one query covers every watched future.  With ``pop=True`` each
    yielded future is removed from the input list, supporting the
    pop-as-you-go pattern of Listing 2.

    Against a wait-capable store (``supports_wait``) each batch query
    long-polls server-side, so results are yielded at RPC latency
    instead of on the next ``delay`` tick; against other stores the
    ``delay`` sleeps are decorrelated-jittered so many MEs watching one
    store drift apart.  ``timeout=0`` remains strictly non-blocking.

    Raises :class:`repro.util.errors.TimeoutError_` when ``timeout``
    expires before the requested number of futures completes.  Futures
    canceled along the way are skipped (they will never complete).
    """
    if not futures:
        return
    from repro.core.eqsql import WAIT_RPC_CAP

    eqsql = futures[0].eqsql
    clock = eqsql.clock
    use_wait = eqsql._use_wait(timeout)
    deadline = clock.deadline(timeout)
    backoff: DecorrelatedJitter | None = None
    yielded = 0
    target = len(futures) if n is None else min(n, len(futures))
    # Keyed by object identity, not eq_task_id: coalesced duplicates
    # (single-flight cache submissions) share one task id but are
    # distinct futures, and each must be yielded once.
    seen: set[int] = set()
    while True:
        # Results cached before this iteration (by a prior drain or an
        # out-of-band .result() call) count as completed immediately.
        ready = [
            f
            for f in list(futures)
            if id(f) not in seen and f._result is not None
        ]
        for future in ready:
            seen.add(id(future))
            if pop:
                futures.remove(future)
            yielded += 1
            yield future
            if yielded >= target:
                return
        remaining = [
            f
            for f in futures
            if id(f) not in seen and f._result is None and not f._cancelled
        ]
        if not remaining:
            return  # everything else was canceled or already yielded
        wait: float | None = None
        if use_wait:
            wait = WAIT_RPC_CAP
            if deadline is not None:
                left = deadline - clock.now()
                wait = min(left, WAIT_RPC_CAP) if left > 0 else None
        if not _drain_completed(remaining, limit=target - yielded, wait=wait):
            if clock.expired(deadline):
                raise TimeoutError_(
                    f"as_completed: {yielded}/{target} futures after timeout"
                )
            if backoff is None:
                # Long-polls do the real waiting; the fallback sleep only
                # paces retries after an early-empty wait (server cap,
                # shutdown wake) so it starts much shorter.
                backoff = DecorrelatedJitter(min(delay, 0.05) if use_wait else delay)
            clock.sleep(backoff.next())


def pop_completed(
    futures: list[Future], delay: float = 0.5, timeout: float | None = None
) -> Future:
    """Remove and return the first completed future from ``futures``.

    Polls until one completes; raises TimeoutError_ on expiry.
    """
    for future in as_completed(
        futures, pop=True, n=1, delay=delay, timeout=timeout
    ):
        return future
    raise TimeoutError_("pop_completed: no completable futures")


def update_priority(
    futures: Sequence[Future], new_priority: int | Sequence[int]
) -> int:
    """Batch-update the priorities of queued futures.

    ``new_priority`` is a single value for all futures or a sequence
    aligned with them.  Returns how many tasks were actually updated
    (futures already popped by a pool are skipped, per §IV-D).
    """
    if not futures:
        return 0
    eqsql = futures[0].eqsql
    ids = [f.eq_task_id for f in futures]
    return eqsql.update_priorities(ids, new_priority)


def cancel_futures(futures: Sequence[Future]) -> int:
    """Batch-cancel queued futures; returns the number canceled."""
    if not futures:
        return 0
    eqsql = futures[0].eqsql
    ids = [f.eq_task_id for f in futures]
    canceled = eqsql.cancel_tasks(ids)
    if canceled:
        canceled_ids = {
            tid
            for tid, status in eqsql.query_status(ids)
            if status == TaskStatus.CANCELED
        }
        for future in futures:
            if future.eq_task_id in canceled_ids:
                future._cancelled = True
    return canceled

"""The EQSQL task API (paper §V-A, Listing 1).

Instances of :class:`EQSQL` provide methods for task submission,
querying the queues, result reporting, and retrieval, layered over any
:class:`repro.db.TaskStore` — a local in-process store, a SQLite file,
or a :class:`repro.core.service_client.RemoteTaskStore` that speaks to
an EMEWS service across the network.  Polling delays and timeouts mirror
the signatures in the paper's Listing 1.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from repro.core.constants import EQ_TIMEOUT, ResultStatus, TaskStatus
from repro.core.fetch import fetch_count
from repro.core.task import _TRACE_PREFIX, unwrap_payload, wrap_payload
from repro.db.backend import TaskStore
from repro.db.memory_backend import MemoryTaskStore
from repro.db.schema import TaskRow
from repro.db.sqlite_backend import SqliteTaskStore
from repro.telemetry.metrics import (
    BYTE_BUCKETS,
    COUNT_BUCKETS,
    MetricsRegistry,
    get_metrics,
)
from repro.telemetry.tracing import Tracer, get_tracer
from repro.util.backoff import DecorrelatedJitter
from repro.util.clock import Clock, SystemClock
from repro.util.serialization import cache_key

T = TypeVar("T")

#: Valid values for the ``cache=`` submission kwarg.
CACHE_MODES = ("off", "read", "readwrite")

#: The status message returned when a blocking query times out,
#: e.g. ``{'type': 'status', 'payload': 'TIMEOUT'}``.
TIMEOUT_MESSAGE: dict[str, str] = {"type": "status", "payload": EQ_TIMEOUT}

#: Longest single long-poll issued per store call.  Bounds how long one
#: wait RPC stays in flight (services cap server-side via ``max_wait_ms``
#: anyway); ``timeout=None`` loops re-issue waits of this length forever.
WAIT_RPC_CAP = 30.0


def _work_message(
    eq_task_id: int, payload: str, trace: list[str] | None = None
) -> dict[str, Any]:
    """The task message format of §IV-C:
    ``{'type': 'work', 'eq_task_id': id, 'payload': payload}``.

    Messages for tasks submitted under tracing additionally carry the
    originating span context under ``'trace'`` (wire form), extracted
    from the payload envelope during unwrapping.
    """
    message = {"type": "work", "eq_task_id": eq_task_id, "payload": payload}
    if trace is not None:
        message["trace"] = trace
    return message


class _CacheFlight:
    """One in-flight cache-keyed task: the single submitted copy that
    every identical submission coalesces onto until its result lands.

    ``futures`` holds every Future watching the flight (the original
    submission's plus each coalesced duplicate's); all share the same
    ``eq_task_id``, and settlement fans the one popped result out to
    all of them.  ``writeback`` marks the flight for report-/pop-time
    ``cache_put``; ``written`` makes that put once-only.
    """

    __slots__ = ("key", "eq_type", "eq_task_id", "writeback", "written", "futures")

    def __init__(
        self, key: str, eq_type: int, eq_task_id: int, writeback: bool
    ) -> None:
        self.key = key
        self.eq_type = eq_type
        self.eq_task_id = eq_task_id
        self.writeback = writeback
        self.written = False
        self.futures: list[Any] = []


def _unwrap_popped(popped: list[tuple[int, str]]) -> list[dict[str, Any]]:
    """Popped (id, payload) pairs → work messages, shedding envelopes."""
    messages = []
    for eq_task_id, payload in popped:
        # Fast path: plain (untraced) payloads skip the unwrap call —
        # the marker is always the envelope's literal string prefix.
        if payload.startswith(_TRACE_PREFIX):
            inner, ctx = unwrap_payload(payload)
            messages.append(
                _work_message(eq_task_id, inner, None if ctx is None else ctx.to_wire())
            )
        else:
            messages.append({"type": "work", "eq_task_id": eq_task_id, "payload": payload})
    return messages


class EQSQL:
    """Class-based Python task API over an EMEWS DB.

    Parameters
    ----------
    store:
        The task store backend (local or remote).
    clock:
        Time source for timestamps and polling sleeps.  Inject a
        :class:`repro.util.clock.VirtualClock` (and use ``timeout=0``
        non-blocking calls) under discrete-event simulation.
    tracer:
        Span recorder; defaults to the process-wide tracer (disabled
        out of the box).  When enabled, submissions embed their span
        context in the payload envelope so pool-side execution spans
        parent under the submit span.
    metrics:
        Metrics registry; defaults to the process-wide registry.
    """

    def __init__(
        self,
        store: TaskStore,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        *,
        cache_ttl: float | None = None,
    ) -> None:
        self._store = store
        self._clock = clock if clock is not None else SystemClock()
        self._closed = False
        self._tracer = tracer
        #: TTL (seconds) stamped on cache entries written by ``readwrite``
        #: submissions; ``None`` = entries never expire (LRU-only).
        self._cache_ttl = cache_ttl
        # Single-flight state: one flight per distinct cache key in
        # flight; both maps point at the same _CacheFlight objects.
        self._cache_lock = threading.Lock()
        self._flights_by_key: dict[str, _CacheFlight] = {}
        self._flights_by_id: dict[int, _CacheFlight] = {}
        # Cache-hit futures never touch the store, but every future needs
        # a unique id (collection ops key on it); negatives can't collide
        # with store-assigned task ids, which start at 1.
        self._synthetic_id = 0
        registry = metrics if metrics is not None else get_metrics()
        self._m_coalesced = registry.counter(
            "cache.coalesce", "duplicate in-flight submissions coalesced"
        )
        self._m_submitted = registry.counter(
            "eqsql.tasks_submitted", "tasks created in the EMEWS DB"
        )
        self._m_fetched = registry.counter(
            "eqsql.tasks_fetched", "tasks popped off the output queue"
        )
        self._m_reported = registry.counter(
            "eqsql.tasks_reported", "results pushed onto the input queue"
        )
        self._m_payload_bytes = registry.histogram(
            "eqsql.payload_bytes", BYTE_BUCKETS, "submitted payload sizes"
        )
        self._m_batch_size = registry.histogram(
            "eqsql.fetch_batch_size", COUNT_BUCKETS, "tasks returned per batch query"
        )

    @property
    def store(self) -> TaskStore:
        """The underlying task store."""
        return self._store

    @property
    def clock(self) -> Clock:
        """The time source used for timestamps and polling."""
        return self._clock

    @property
    def tracer(self) -> Tracer:
        """The span recorder (instance-injected or process default)."""
        return self._tracer if self._tracer is not None else get_tracer()

    # -- polling core -------------------------------------------------------

    def _poll(
        self,
        attempt: Callable[[], T | None],
        delay: float,
        timeout: float | None,
    ) -> T | None:
        """Run ``attempt`` until it returns non-None or ``timeout`` expires.

        Always makes at least one attempt, so ``timeout=0`` is the
        non-blocking single-try form the DES pool model uses.  A
        ``timeout`` of ``None`` polls indefinitely.

        Sleeps are decorrelated-jittered starting from ``delay`` (capped
        a few doublings above it) so many pollers against one store
        drift apart instead of hammering it in lockstep.
        """
        deadline = self._clock.deadline(timeout)
        backoff: DecorrelatedJitter | None = None
        while True:
            result = attempt()
            if result is not None:
                return result
            if self._clock.expired(deadline):
                return None
            if backoff is None:
                backoff = DecorrelatedJitter(delay)
            self._clock.sleep(backoff.next())

    def _wait_poll(
        self,
        attempt: Callable[[float | None], T | None],
        delay: float,
        timeout: float | None,
    ) -> T | None:
        """Event-driven :meth:`_poll`: the store blocks, we don't sleep.

        ``attempt`` receives the long-poll bound to pass to the store
        (``None`` = non-blocking).  One wait call usually covers the
        whole timeout; when the store returns early and empty — its
        server capped the wait (``max_wait_ms``), shutdown woke it, or a
        wrapper silently ignored ``wait`` — a short jittered sleep keeps
        the retry loop from hot-spinning, and the loop degrades to
        exactly the old poll for wait-ignoring stores.
        """
        deadline = self._clock.deadline(timeout)
        backoff: DecorrelatedJitter | None = None
        while True:
            wait: float | None = WAIT_RPC_CAP
            if deadline is not None:
                remaining = deadline - self._clock.now()
                wait = min(remaining, WAIT_RPC_CAP) if remaining > 0 else None
            result = attempt(wait)
            if result is not None:
                return result
            if self._clock.expired(deadline):
                return None
            if backoff is None:
                backoff = DecorrelatedJitter(min(delay, 0.05))
            self._clock.sleep(backoff.next())

    def _use_wait(self, timeout: float | None) -> bool:
        """Choose the long-poll fast path over the sleep-poll fallback.

        Requires a wait-capable store and a blocking call: ``timeout=0``
        is the DES non-blocking form, where a real block under a virtual
        clock would be a deadlock (nothing advances virtual time while a
        thread sleeps in the store).
        """
        return timeout != 0 and getattr(self._store, "supports_wait", False)

    # -- submission (ME algorithm side) ---------------------------------------

    def _create_one(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        priority: int,
        tag: str | None,
    ) -> int:
        """Create one task row in the store; returns its id."""
        self._m_submitted.inc()
        self._m_payload_bytes.observe(len(payload))
        tracer = self.tracer
        # Hot path: skip the span machinery entirely when tracing is off —
        # no handle, no kwargs dict, no payload envelope.
        if tracer.enabled:
            with tracer.span("eqsql.submit", component="eqsql", eq_type=eq_type) as sp:
                eq_task_id = self._store.create_task(
                    exp_id,
                    eq_type,
                    wrap_payload(payload, sp.context),
                    priority=priority,
                    tag=tag,
                    time_created=self._clock.now(),
                )
                sp.set_attr("eq_task_id", eq_task_id)
        else:
            eq_task_id = self._store.create_task(
                exp_id,
                eq_type,
                payload,
                priority=priority,
                tag=tag,
                time_created=self._clock.now(),
            )
        return eq_task_id

    def _create_batch(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        priority: int | Sequence[int],
        tag: str | None,
    ) -> list[int]:
        """Create a batch of task rows in one store transaction."""
        self._m_submitted.inc(len(payloads))
        for payload in payloads:
            self._m_payload_bytes.observe(len(payload))
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "eqsql.submit_batch", component="eqsql", eq_type=eq_type, n=len(payloads)
            ) as sp:
                # Every task in the batch parents under the one
                # submit-batch span; per-task identity rides in the
                # pool-side execution spans' eq_task_id attrs.
                ids = self._store.create_tasks(
                    exp_id,
                    eq_type,
                    [wrap_payload(p, sp.context) for p in payloads],
                    priority=priority,
                    tag=tag,
                    time_created=self._clock.now(),
                )
        else:
            ids = self._store.create_tasks(
                exp_id,
                eq_type,
                payloads,
                priority=priority,
                tag=tag,
                time_created=self._clock.now(),
            )
        return ids

    def _completed_future(
        self, eq_type: int, exp_id: str, tag: str | None, result: str
    ) -> "Future":
        """An already-resolved Future for a cache hit (no store row)."""
        from repro.core.futures import Future

        with self._cache_lock:
            self._synthetic_id -= 1
            synthetic = self._synthetic_id
        future = Future(self, synthetic, eq_type, exp_id=exp_id, tag=tag)
        future._set_result(result)
        return future

    def submit_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        priority: int = 0,
        tag: str | None = None,
        cache: str = "off",
    ) -> "Future":
        """Submit a task; returns a :class:`Future` for its result.

        The payload must carry sufficient information for a worker pool
        to execute the task — typically a JSON string.

        ``cache`` selects result memoization, content-addressed by
        ``(eq_type, canonical payload)``:

        - ``"off"`` (default): always execute; the cache is not consulted.
        - ``"read"``: a cached result returns an already-completed Future
          without creating a task; a miss executes normally and does
          *not* populate the cache.
        - ``"readwrite"``: as ``"read"``, and the task's first reported
          result is written back to the cache (TTL from the instance's
          ``cache_ttl``).

        Either cached mode is also *single-flight*: a submission whose
        key matches a task still in flight coalesces onto that task —
        no new row is created, and the returned Future resolves with
        the original task's result when it lands.
        """
        from repro.core.futures import Future

        if cache == "off":
            eq_task_id = self._create_one(exp_id, eq_type, payload, priority, tag)
            return Future(self, eq_task_id, eq_type, exp_id=exp_id, tag=tag)
        if cache not in CACHE_MODES:
            raise ValueError(f"cache must be one of {CACHE_MODES}, got {cache!r}")
        key = cache_key(eq_type, payload)
        cached = self._store.cache_get(key, now=self._clock.now())
        if cached is not None:
            return self._completed_future(eq_type, exp_id, tag, cached)
        writeback = cache == "readwrite"
        with self._cache_lock:
            flight = self._flights_by_key.get(key)
            if flight is not None:
                # Coalesce: piggyback on the in-flight task.  A readwrite
                # duplicate upgrades a read-only flight to write back.
                flight.writeback = flight.writeback or writeback
                future = Future(
                    self, flight.eq_task_id, eq_type, exp_id=exp_id, tag=tag
                )
                flight.futures.append(future)
                self._m_coalesced.inc()
                return future
            # Single-flight: the lock is held across the create so a
            # concurrent identical submission coalesces instead of
            # double-submitting.
            eq_task_id = self._create_one(exp_id, eq_type, payload, priority, tag)
            future = Future(self, eq_task_id, eq_type, exp_id=exp_id, tag=tag)
            flight = _CacheFlight(key, eq_type, eq_task_id, writeback)
            flight.futures.append(future)
            self._flights_by_key[key] = flight
            self._flights_by_id[eq_task_id] = flight
            return future

    def submit_tasks(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        priority: int | Sequence[int] = 0,
        tag: str | None = None,
        cache: str = "off",
    ) -> list["Future"]:
        """Batch submission: one store transaction, many futures.

        ``cache`` applies :meth:`submit_task` memoization per payload;
        only cache misses that are not already in flight reach the
        store (still as one transaction).  Duplicate payloads *within*
        the batch coalesce onto the first occurrence's task.
        """
        from repro.core.futures import Future

        if cache == "off":
            ids = self._create_batch(exp_id, eq_type, payloads, priority, tag)
            return [
                Future(self, eq_task_id, eq_type, exp_id=exp_id, tag=tag)
                for eq_task_id in ids
            ]
        if cache not in CACHE_MODES:
            raise ValueError(f"cache must be one of {CACHE_MODES}, got {cache!r}")
        keys = [cache_key(eq_type, p) for p in payloads]
        now = self._clock.now()
        writeback = cache == "readwrite"
        futures: list[Future | None] = [None] * len(payloads)
        with self._cache_lock:
            create: list[int] = []  # positions needing a real task
            local: dict[str, int] = {}  # key -> leader position in this batch
            trailing: list[tuple[int, int]] = []  # (position, leader position)
            for i, key in enumerate(keys):
                cached = self._store.cache_get(key, now=now)
                if cached is not None:
                    self._synthetic_id -= 1
                    future = Future(
                        self, self._synthetic_id, eq_type, exp_id=exp_id, tag=tag
                    )
                    future._set_result(cached)
                    futures[i] = future
                    continue
                flight = self._flights_by_key.get(key)
                if flight is not None:
                    flight.writeback = flight.writeback or writeback
                    future = Future(
                        self, flight.eq_task_id, eq_type, exp_id=exp_id, tag=tag
                    )
                    flight.futures.append(future)
                    futures[i] = future
                    self._m_coalesced.inc()
                    continue
                if key in local:
                    # Duplicate within the batch: its flight exists only
                    # after the leader's create below.
                    trailing.append((i, local[key]))
                    self._m_coalesced.inc()
                    continue
                local[key] = i
                create.append(i)
            if create:
                sub_priority: int | list[int]
                if isinstance(priority, int):
                    sub_priority = priority
                else:
                    sub_priority = [priority[i] for i in create]
                ids = self._create_batch(
                    exp_id, eq_type, [payloads[i] for i in create], sub_priority, tag
                )
                for pos, eq_task_id in zip(create, ids):
                    future = Future(
                        self, eq_task_id, eq_type, exp_id=exp_id, tag=tag
                    )
                    futures[pos] = future
                    flight = _CacheFlight(keys[pos], eq_type, eq_task_id, writeback)
                    flight.futures.append(future)
                    self._flights_by_key[keys[pos]] = flight
                    self._flights_by_id[eq_task_id] = flight
            for pos, leader in trailing:
                flight = self._flights_by_key[keys[leader]]
                future = Future(
                    self, flight.eq_task_id, eq_type, exp_id=exp_id, tag=tag
                )
                flight.futures.append(future)
                futures[pos] = future
        return futures

    # -- cache plumbing -------------------------------------------------------

    def _writeback_cache(
        self, reports: Sequence[tuple[int, int, str]]
    ) -> None:
        """Report-time cache population for watched readwrite flights.

        Runs on the reporting instance: when the reporter shares the
        EQSQL instance with the submitter (in-process pools, including
        the batch reporter path) the cache fills the moment the result
        is reported, before any retrieval.  Each flight writes at most
        once — the first report wins, matching the store's first-write
        -wins report semantics.
        """
        if not self._flights_by_id:
            return
        puts: list[tuple[str, int, str]] = []
        with self._cache_lock:
            for eq_task_id, eq_type, result in reports:
                flight = self._flights_by_id.get(eq_task_id)
                if flight is not None and flight.writeback and not flight.written:
                    flight.written = True
                    puts.append((flight.key, eq_type, result))
        now = self._clock.now()
        for key, eq_type, result in puts:
            self._store.cache_put(
                key, eq_type, result, now=now, ttl=self._cache_ttl
            )

    def _settle_cache(self, eq_task_id: int, result: str) -> None:
        """A flight's result landed (popped off the input queue): write
        back if the report-time hook didn't (remote reporter), and fan
        the one popped result out to every coalesced Future — popping
        consumes the row, so siblings can never pop it themselves.
        """
        if not self._flights_by_id:
            return
        with self._cache_lock:
            flight = self._flights_by_id.pop(eq_task_id, None)
            if flight is not None and self._flights_by_key.get(flight.key) is flight:
                del self._flights_by_key[flight.key]
        if flight is None:
            return
        if flight.writeback and not flight.written:
            flight.written = True
            self._store.cache_put(
                flight.key, flight.eq_type, result,
                now=self._clock.now(), ttl=self._cache_ttl,
            )
        for future in flight.futures:
            future._set_result(result)

    def cache_stats(self) -> dict:
        """The store's cache counters (entries, hits, misses, ...)."""
        return self._store.cache_stats()

    # -- queue queries (worker pool side) ---------------------------------------

    def query_task(
        self,
        eq_type: int,
        n: int = 1,
        worker_pool: str = "default",
        delay: float = 0.5,
        timeout: float = 2.0,
        lease: float | None = None,
    ) -> dict[str, Any] | list[dict[str, Any]]:
        """Pop up to ``n`` tasks of ``eq_type`` off the output queue.

        Against a wait-capable store this is event-driven: one blocking
        ``pop_out(wait=...)`` covers the whole ``timeout`` and returns
        the instant work arrives.  Otherwise it polls with ``delay``
        (jittered) until a task is available or ``timeout`` expires.
        Returns a single work message when ``n == 1``, a list of work
        messages when ``n > 1``, or the TIMEOUT status message when the
        wait fails (paper §IV-C).  ``lease`` claims the tasks under a
        fault-tolerance lease of that many seconds (see
        :meth:`repro.db.backend.TaskStore.pop_out`).
        """
        def attempt(wait: float | None = None) -> list[tuple[int, str]] | None:
            # Only the fast path passes wait= down, so wait-unaware store
            # stubs keep working against the poll fallback unchanged.
            kwargs = {} if wait is None else {"wait": wait}
            popped = self._store.pop_out(
                eq_type, n, worker_pool=worker_pool, now=self._clock.now(),
                lease=lease, **kwargs,
            )
            return popped if popped else None

        tracer = self.tracer
        t0 = self._clock.now() if tracer.enabled else 0.0
        if self._use_wait(timeout):
            popped = self._wait_poll(attempt, delay, timeout)
        else:
            popped = self._poll(attempt, delay, timeout)
        if popped is None:
            return dict(TIMEOUT_MESSAGE)
        self._m_fetched.inc(len(popped))
        self._m_batch_size.observe(len(popped))
        if tracer.enabled:
            tracer.add_span(
                "eqsql.query_task",
                "eqsql",
                t0,
                self._clock.now(),
                parent=tracer.current_context(),
                attrs={"n": len(popped), "worker_pool": worker_pool},
            )
        messages = _unwrap_popped(popped)
        if n == 1:
            return messages[0]
        return messages

    def query_task_batch(
        self,
        eq_type: int,
        batch_size: int,
        threshold: int,
        owned: int,
        worker_pool: str = "default",
        delay: float = 0.5,
        timeout: float = 2.0,
        lease: float | None = None,
    ) -> list[dict[str, Any]]:
        """Worker-pool batch query (paper §IV-D).

        Requests the batch/threshold deficit given the pool's currently
        ``owned`` (popped, uncompleted) task count: nothing is fetched
        until the deficit reaches ``threshold``; never more than
        ``batch_size - owned`` tasks are claimed.  Returns an empty list
        when the policy says not to fetch or the queue stays empty.
        ``lease`` claims the batch under a fault-tolerance lease.
        """
        want = fetch_count(batch_size, threshold, owned)
        if want == 0:
            return []

        def attempt(wait: float | None = None) -> list[tuple[int, str]] | None:
            kwargs = {} if wait is None else {"wait": wait}
            popped = self._store.pop_out(
                eq_type, want, worker_pool=worker_pool, now=self._clock.now(),
                lease=lease, **kwargs,
            )
            return popped if popped else None

        tracer = self.tracer
        t0 = self._clock.now() if tracer.enabled else 0.0
        if self._use_wait(timeout):
            popped = self._wait_poll(attempt, delay, timeout)
        else:
            popped = self._poll(attempt, delay, timeout)
        if popped is None:
            return []
        self._m_fetched.inc(len(popped))
        self._m_batch_size.observe(len(popped))
        if tracer.enabled:
            tracer.add_span(
                "eqsql.query_task_batch",
                "eqsql",
                t0,
                self._clock.now(),
                parent=tracer.current_context(),
                attrs={"n": len(popped), "want": want, "worker_pool": worker_pool},
            )
        return _unwrap_popped(popped)

    def report_task(
        self,
        eq_task_id: int,
        eq_type: int,
        result: str,
        *,
        profile: dict | None = None,
    ) -> None:
        """Report a completed task's result, pushing it onto the input
        queue where the ME algorithm can retrieve it.

        ``profile`` optionally carries the executing pool's
        :class:`~repro.telemetry.profiling.TaskProfile` dict alongside
        the result (absent = no profiling; the wire format is
        unchanged).
        """
        self._m_reported.inc()
        tracer = self.tracer
        if not tracer.enabled:
            # Hot path: one report per task; skip the span machinery.
            self._store.report(
                eq_task_id, eq_type, result,
                now=self._clock.now(), profile=profile,
            )
        else:
            with tracer.span(
                "eqsql.report", component="eqsql", eq_task_id=eq_task_id
            ):
                self._store.report(
                    eq_task_id, eq_type, result,
                    now=self._clock.now(), profile=profile,
                )
        self._writeback_cache([(eq_task_id, eq_type, result)])

    def report_tasks(
        self,
        reports: Sequence[tuple[int, int, str]],
        *,
        profiles: dict[int, dict] | None = None,
    ) -> None:
        """Report many completed tasks in one store operation.

        ``reports`` is a sequence of ``(eq_task_id, eq_type, result)``
        triples; ``profiles`` optionally maps task id to that task's
        profile dict.  Against a remote store this is a single RPC —
        the round trip is paid once per batch instead of once per task
        — and against SQLite a single transaction.  Semantics are
        per-item identical to :meth:`report_task` (first-write-wins;
        already-complete tasks are skipped).
        """
        if not reports:
            return
        self._m_reported.inc(len(reports))
        tracer = self.tracer
        if not tracer.enabled:
            self._store.report_batch(
                reports, now=self._clock.now(), profiles=profiles
            )
        else:
            with tracer.span(
                "eqsql.report_batch", component="eqsql", n=len(reports)
            ):
                self._store.report_batch(
                    reports, now=self._clock.now(), profiles=profiles
                )
        self._writeback_cache(reports)

    # -- result retrieval (ME algorithm side) --------------------------------------

    def query_result(
        self,
        eq_task_id: int,
        delay: float = 0.5,
        timeout: float = 2.0,
    ) -> tuple[ResultStatus, str]:
        """Pop one task's result off the input queue.

        Returns ``(SUCCESS, result_payload)`` or ``(FAILURE, 'TIMEOUT')``.

        Against a wait-capable store, one blocking ``pop_in_any(wait=)``
        replaces the sleep loop (the single-id form of the batch wait).
        """
        with self.tracer.span(
            "eqsql.query_result", component="eqsql", eq_task_id=eq_task_id
        ) as sp:
            if self._use_wait(timeout):
                def attempt(wait: float | None) -> str | None:
                    popped = self._store.pop_in_any(
                        [eq_task_id], limit=1, wait=wait
                    )
                    return popped[0][1] if popped else None

                result = self._wait_poll(attempt, delay, timeout)
            else:
                result = self._poll(
                    lambda: self._store.pop_in(eq_task_id), delay, timeout
                )
            sp.set_attr("found", result is not None)
        if result is None:
            return (ResultStatus.FAILURE, EQ_TIMEOUT)
        self._settle_cache(eq_task_id, result)
        return (ResultStatus.SUCCESS, result)

    def pop_completed_ids(
        self,
        eq_task_ids: Sequence[int],
        limit: int | None = None,
        *,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        """Batch pop of any listed tasks on the input queue.

        The batch primitive behind ``as_completed`` / ``pop_completed``;
        one store operation regardless of how many futures are watched.
        ``limit`` caps consumption (results beyond it stay queued).
        ``wait`` long-polls a wait-capable store (non-blocking default
        preserved); wait-ignoring stores return immediately.
        """
        if wait is None:
            popped = self._store.pop_in_any(eq_task_ids, limit=limit)
        else:
            popped = self._store.pop_in_any(eq_task_ids, limit=limit, wait=wait)
        if self._flights_by_id:
            for eq_task_id, result in popped:
                self._settle_cache(eq_task_id, result)
        return popped

    # -- status / priority / cancellation -------------------------------------------

    def query_status(
        self, eq_task_ids: Sequence[int]
    ) -> list[tuple[int, TaskStatus]]:
        """Statuses for a batch of task ids."""
        return self._store.get_statuses(eq_task_ids)

    def query_priorities(
        self, eq_task_ids: Sequence[int]
    ) -> list[tuple[int, int]]:
        """Output-queue priorities for still-queued tasks."""
        return self._store.get_priorities(eq_task_ids)

    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: int | Sequence[int]
    ) -> int:
        """Re-prioritize queued tasks; returns the number updated."""
        with self.tracer.span(
            "eqsql.update_priorities", component="eqsql", n=len(eq_task_ids)
        ) as sp:
            updated = self._store.update_priorities(eq_task_ids, priorities)
            sp.set_attr("updated", updated)
        return updated

    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        """Cancel queued tasks; returns the number canceled."""
        with self.tracer.span(
            "eqsql.cancel", component="eqsql", n=len(eq_task_ids)
        ) as sp:
            canceled = self._store.cancel_tasks(eq_task_ids)
            sp.set_attr("canceled", canceled)
        if canceled and self._flights_by_id:
            # A canceled flight will never settle; drop it so a later
            # identical submission creates a fresh task instead of
            # coalescing onto a task that can never complete.  Only
            # actually-CANCELED ids are dropped (a cancel attempt on a
            # RUNNING task leaves its flight live).
            with self._cache_lock:
                watched = [t for t in eq_task_ids if t in self._flights_by_id]
            if watched:
                canceled_ids = {
                    tid
                    for tid, status in self._store.get_statuses(watched)
                    if status == TaskStatus.CANCELED
                }
                with self._cache_lock:
                    for tid in canceled_ids:
                        flight = self._flights_by_id.pop(tid, None)
                        if (
                            flight is not None
                            and self._flights_by_key.get(flight.key) is flight
                        ):
                            del self._flights_by_key[flight.key]
        return canceled

    # -- introspection ------------------------------------------------------------------

    def task_info(self, eq_task_id: int) -> TaskRow:
        """The full database row for a task (timestamps, pool, payloads)."""
        return self._store.get_task(eq_task_id)

    def queue_lengths(self, eq_type: int | None = None) -> tuple[int, int]:
        """(output queue length, input queue length)."""
        return (
            self._store.queue_out_length(eq_type),
            self._store.queue_in_length(),
        )

    def are_queues_empty(self, eq_type: int | None = None) -> bool:
        """True when both queues are drained — the workflow-termination
        test used by ME drivers."""
        out_len, in_len = self.queue_lengths(eq_type)
        return out_len == 0 and in_len == 0

    def close(self) -> None:
        """Close the underlying store."""
        if not self._closed:
            self._closed = True
            self._store.close()

    def __enter__(self) -> "EQSQL":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def init_eqsql(
    db_path: str | None = None,
    clock: Clock | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    cache_ttl: float | None = None,
) -> EQSQL:
    """Create an :class:`EQSQL` instance (the paper's ``init_esql``).

    ``db_path=None`` gives a pure in-memory store; a path (or
    ``":memory:"``) gives the SQLite engine.
    """
    store: TaskStore
    if db_path is None:
        store = MemoryTaskStore()
    else:
        store = SqliteTaskStore(db_path)
    return EQSQL(store, clock=clock, tracer=tracer, metrics=metrics, cache_ttl=cache_ttl)

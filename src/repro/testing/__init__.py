"""Fault-injection utilities for exercising the platform's resilience.

Nothing in here runs in production paths; integration tests (and the
``python -m repro chaos`` demo) import :class:`ChaosProxy` and
:class:`FlakyTaskStore` to prove the ME → service → pool pipeline
survives dropped connections, delayed frames, and crashed pools with
zero lost tasks.
"""

from repro.testing.chaos import ChaosProxy, FlakyTaskStore

__all__ = ["ChaosProxy", "FlakyTaskStore"]

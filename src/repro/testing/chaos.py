"""Fault injection: a chaos TCP proxy and a flaky store wrapper.

The paper's robustness claim (§IV-B) is only credible if the stack is
exercised under the failures it claims to absorb.  Two injectors:

- :class:`ChaosProxy` sits between a :class:`~repro.core.RemoteTaskStore`
  and the EMEWS service, forwarding bytes while dropping, delaying, or
  severing connections — the network-level faults of an SSH tunnel over
  a flaky WAN.  Tests point clients at the proxy's address instead of
  the service's.
- :class:`FlakyTaskStore` wraps any :class:`~repro.db.TaskStore` and
  raises ``ConnectionError`` around real operations with a configured
  probability — including *after* the operation applied, the ambiguous
  "request landed, response lost" case that separates idempotent from
  non-idempotent retry handling.

Both take an injected :class:`random.Random` so chaos runs are
reproducible from a seed.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from collections.abc import Iterable, Sequence
from typing import Any, Callable

from repro.db.backend import TaskStore
from repro.db.schema import TaskRow, TaskStatus

_CHUNK = 65536


class _Pipe:
    """One client <-> upstream connection pair being forwarded."""

    def __init__(self, client: socket.socket, upstream: socket.socket) -> None:
        self.client = client
        self.upstream = upstream
        self._closed = threading.Event()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A byte-forwarding TCP proxy that injects network faults.

    Parameters
    ----------
    upstream_host, upstream_port:
        The real service address to forward to.
    host, port:
        Bind address for the proxy's listener (port 0 picks a free
        port; read :attr:`address` after :meth:`start`).
    sever_rate:
        Probability, evaluated per forwarded chunk, of severing the
        connection pair instead of forwarding — the mid-request drop
        that desyncs a request/response stream.
    delay:
        Seconds to sleep before forwarding each chunk (crude WAN
        latency; applied in both directions).
    rng:
        Seedable randomness source for reproducible chaos.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        sever_rate: float = 0.0,
        delay: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        self._upstream = (upstream_host, upstream_port)
        self._sever_rate = sever_rate
        self._delay = delay
        self._rng = rng if rng is not None else random.Random()
        self._rng_lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._paused = threading.Event()
        self._stopped = threading.Event()
        self._pipes: list[_Pipe] = []
        self._pipes_lock = threading.Lock()
        self._accept_thread: threading.Thread | None = None
        self.connections_total = 0
        self.connections_severed = 0

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) clients should connect to instead of the service."""
        host, port = self._listener.getsockname()[:2]
        return (str(host), int(port))

    # -- fault controls ----------------------------------------------------

    def sever_all(self) -> int:
        """Hard-close every in-flight connection pair; returns the count.

        Models the tunnel collapsing: every client sees a reset mid-
        conversation and must reconnect (through the proxy) to continue.
        """
        with self._pipes_lock:
            live = [p for p in self._pipes if not p.closed]
        for pipe in live:
            pipe.close()
        self.connections_severed += len(live)
        return len(live)

    def pause(self) -> None:
        """Refuse new connections (existing ones keep flowing).

        With :meth:`sever_all` this models a full outage; clients retry
        against a dead address until :meth:`resume`.
        """
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def set_sever_rate(self, rate: float) -> None:
        """Adjust the per-chunk sever probability at runtime."""
        self._sever_rate = rate

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ChaosProxy":
        if self._accept_thread is not None:
            raise RuntimeError("chaos proxy already started")
        self._listener.listen(32)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pipes_lock:
            pipes = list(self._pipes)
        for pipe in pipes:
            pipe.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- forwarding --------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if self._paused.is_set():
                client.close()
                continue
            try:
                upstream = socket.create_connection(self._upstream, timeout=5)
            except OSError:
                client.close()
                continue
            pipe = _Pipe(client, upstream)
            with self._pipes_lock:
                self._pipes = [p for p in self._pipes if not p.closed]
                self._pipes.append(pipe)
            self.connections_total += 1
            for src, dst in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump,
                    args=(pipe, src, dst),
                    name="chaos-proxy-pump",
                    daemon=True,
                ).start()

    def _chaos_says_sever(self) -> bool:
        if self._sever_rate <= 0:
            return False
        with self._rng_lock:
            return self._rng.random() < self._sever_rate

    def _pump(self, pipe: _Pipe, src: socket.socket, dst: socket.socket) -> None:
        while not pipe.closed:
            try:
                chunk = src.recv(_CHUNK)
            except OSError:
                break
            if not chunk:
                break
            if self._chaos_says_sever():
                self.connections_severed += 1
                pipe.close()
                return
            if self._delay > 0:
                time.sleep(self._delay)
            try:
                dst.sendall(chunk)
            except OSError:
                break
        pipe.close()


class FlakyTaskStore(TaskStore):
    """A TaskStore wrapper that injects connection faults around calls.

    ``failure_rate`` is the per-call probability of raising
    ``ConnectionError``.  When a fault fires, ``lost_response_rate``
    decides *where*: with that probability the real operation executes
    first and the fault hits on the way back (the applied-but-unacked
    ambiguity); otherwise the fault fires before the operation runs.
    ``methods`` optionally restricts injection to named methods.

    The wrapper counts faults per method in :attr:`faults_injected`, so
    tests can assert chaos actually happened (a chaos test that injected
    nothing proves nothing).
    """

    def __init__(
        self,
        inner: TaskStore,
        failure_rate: float = 0.1,
        lost_response_rate: float = 0.5,
        methods: Iterable[str] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._inner = inner
        self._failure_rate = failure_rate
        self._lost_response_rate = lost_response_rate
        self._methods = frozenset(methods) if methods is not None else None
        self._rng = rng if rng is not None else random.Random()
        self._rng_lock = threading.Lock()
        self.faults_injected: dict[str, int] = {}

    @property
    def inner(self) -> TaskStore:
        """The wrapped store (for assertions on true state)."""
        return self._inner

    @property
    def supports_wait(self) -> bool:  # type: ignore[override]
        """Mirror the wrapped store's long-poll capability."""
        return getattr(self._inner, "supports_wait", False)

    def wake_waiters(self) -> None:
        # Never inject on wake: it's a shutdown path, like close().
        self._inner.wake_waiters()

    def _invoke(self, method: str, op: Callable[[], Any]) -> Any:
        if self._methods is not None and method not in self._methods:
            return op()
        with self._rng_lock:
            fault = self._rng.random() < self._failure_rate
            after = fault and self._rng.random() < self._lost_response_rate
        if fault and not after:
            self.faults_injected[method] = self.faults_injected.get(method, 0) + 1
            raise ConnectionError(f"injected fault before {method}")
        result = op()
        if fault:
            self.faults_injected[method] = self.faults_injected.get(method, 0) + 1
            raise ConnectionError(f"injected fault after {method} (response lost)")
        return result

    # -- delegated TaskStore contract --------------------------------------

    def create_task(
        self,
        exp_id: str,
        eq_type: int,
        payload: str,
        *,
        priority: int = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> int:
        return self._invoke(
            "create_task",
            lambda: self._inner.create_task(
                exp_id, eq_type, payload,
                priority=priority, tag=tag, time_created=time_created,
            ),
        )

    def create_tasks(
        self,
        exp_id: str,
        eq_type: int,
        payloads: Sequence[str],
        *,
        priority: int | Sequence[int] = 0,
        tag: str | None = None,
        time_created: float = 0.0,
    ) -> list[int]:
        return self._invoke(
            "create_tasks",
            lambda: self._inner.create_tasks(
                exp_id, eq_type, payloads,
                priority=priority, tag=tag, time_created=time_created,
            ),
        )

    def pop_out(
        self,
        eq_type: int,
        n: int = 1,
        *,
        worker_pool: str = "default",
        now: float = 0.0,
        lease: float | None = None,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        return self._invoke(
            "pop_out",
            lambda: self._inner.pop_out(
                eq_type, n, worker_pool=worker_pool, now=now, lease=lease,
                wait=wait,
            ),
        )

    def queue_out_length(self, eq_type: int | None = None) -> int:
        return self._invoke(
            "queue_out_length", lambda: self._inner.queue_out_length(eq_type)
        )

    def report(
        self,
        eq_task_id: int,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        profile: dict | None = None,
    ) -> None:
        return self._invoke(
            "report",
            lambda: self._inner.report(
                eq_task_id, eq_type, result, now=now, profile=profile
            ),
        )

    def pop_in(self, eq_task_id: int) -> str | None:
        return self._invoke("pop_in", lambda: self._inner.pop_in(eq_task_id))

    def pop_in_any(
        self,
        eq_task_ids: Iterable[int],
        limit: int | None = None,
        *,
        wait: float | None = None,
    ) -> list[tuple[int, str]]:
        ids = list(eq_task_ids)
        return self._invoke(
            "pop_in_any",
            lambda: self._inner.pop_in_any(ids, limit=limit, wait=wait),
        )

    def queue_in_length(self) -> int:
        return self._invoke("queue_in_length", self._inner.queue_in_length)

    def get_task(self, eq_task_id: int) -> TaskRow:
        return self._invoke("get_task", lambda: self._inner.get_task(eq_task_id))

    def get_statuses(self, eq_task_ids: Sequence[int]) -> list[tuple[int, TaskStatus]]:
        return self._invoke(
            "get_statuses", lambda: self._inner.get_statuses(eq_task_ids)
        )

    def get_priorities(self, eq_task_ids: Sequence[int]) -> list[tuple[int, int]]:
        return self._invoke(
            "get_priorities", lambda: self._inner.get_priorities(eq_task_ids)
        )

    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: int | Sequence[int]
    ) -> int:
        return self._invoke(
            "update_priorities",
            lambda: self._inner.update_priorities(eq_task_ids, priorities),
        )

    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        return self._invoke(
            "cancel_tasks", lambda: self._inner.cancel_tasks(eq_task_ids)
        )

    def requeue(self, eq_task_id: int, *, priority: int = 0) -> bool:
        return self._invoke(
            "requeue", lambda: self._inner.requeue(eq_task_id, priority=priority)
        )

    def renew_leases(
        self, eq_task_ids: Sequence[int], *, now: float, lease: float
    ) -> int:
        return self._invoke(
            "renew_leases",
            lambda: self._inner.renew_leases(eq_task_ids, now=now, lease=lease),
        )

    def requeue_expired(self, *, now: float, priority: int = 0) -> list[int]:
        return self._invoke(
            "requeue_expired",
            lambda: self._inner.requeue_expired(now=now, priority=priority),
        )

    def tasks_for_experiment(self, exp_id: str) -> list[int]:
        return self._invoke(
            "tasks_for_experiment", lambda: self._inner.tasks_for_experiment(exp_id)
        )

    def tasks_for_tag(self, tag: str) -> list[int]:
        return self._invoke("tasks_for_tag", lambda: self._inner.tasks_for_tag(tag))

    def stats(self, *, now: float = 0.0) -> dict:
        return self._invoke("stats", lambda: self._inner.stats(now=now))

    def max_task_id(self) -> int:
        return self._invoke("max_task_id", self._inner.max_task_id)

    def clear(self) -> None:
        return self._invoke("clear", self._inner.clear)

    def close(self) -> None:
        # Never inject on close: cleanup must always succeed.
        self._inner.close()

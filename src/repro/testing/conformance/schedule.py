"""Deterministic schedule engine for store conformance runs.

A seeded PRNG interleaves *logical* concurrent actors — submitters,
worker pools (pop / renew / report, including a slow pool whose lease
lapses mid-run), a lease reaper, a reprioritizer, a canceller, the
ME-side collector, and a long-poll *waiter* (blocking ``wait=`` pops
that must return instantly over satisfiable state, wake on the one
write they watch, or expire empty) — into one operation sequence
executed step-by-step against a real store and the
:class:`~.model.ModelStore` reference in lockstep.  Time comes from an injected
:class:`~repro.util.clock.VirtualClock` the engine advances itself.

Because every operation's observable result is verified against the
model *before* the next PRNG draw, the random stream — and therefore the
entire schedule — is a pure function of the seed: any violation replays
byte-for-byte from ``ScheduleEngine(store, seed=...)``.  The verified
results are also appended to a JSON-ready history list, which the runner
compares across access paths for byte-for-byte equivalence.

The schedule deliberately generates the races the lease/requeue design
exists to resolve: pools stop renewing, the clock jumps past lease
expiry, the reaper requeues, another pool re-pops, and the original
slow pool reports late — exercising exactly-once report, withdraw, and
priority restoration on every seed.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.db.backend import TaskStore
from repro.db.schema import TaskStatus
from repro.testing.conformance.model import ModelStore
from repro.util.clock import VirtualClock

#: Wake-branch wait bound (real seconds).  Event-driven: the wait ends
#: when the watched write lands, never by running this out — it only
#: bounds how long a *lost* wakeup can hang the engine before the join
#: below turns it into a violation.
_WAITER_WAIT = 10.0
#: Expiry-branch wait (real seconds, actually slept by the store).
_WAITER_EXPIRE = 0.02
#: Real pause giving the helper thread a chance to block before the
#: engine performs the wakeup write.  Best effort only — if the write
#: still wins the race, the wait returns immediately with the same
#: result, so the schedule stays deterministic either way.
_WAITER_SETTLE = 0.005
#: Hard bound on joining the helper thread before declaring the wakeup
#: lost (a store that never notifies its waiters).
_WAITER_JOIN = 30.0


class ConformanceViolation(AssertionError):
    """A store's observable behavior diverged from the reference model."""

    def __init__(self, seed: int, step: int, op: str, detail: str) -> None:
        super().__init__(
            f"seed {seed} step {step} op {op!r}: {detail}"
        )
        self.seed = seed
        self.step = step
        self.op = op
        self.detail = detail


@dataclass
class ScheduleConfig:
    """Knobs for one conformance schedule."""

    steps: int = 150
    n_pools: int = 3
    work_types: tuple[int, ...] = (0, 1)
    lease: float = 5.0
    max_priority: int = 10
    exp_id: str = "exp-conform"
    #: Probability a pop is unleased (never reaped) — the pre-lease mode.
    unleased_fraction: float = 0.1
    #: Result-cache capacity, deliberately tiny so the schedule reaches
    #: LRU eviction; the runner must build stores with the same value
    #: or eviction order diverges from the model.
    cache_capacity: int = 8
    #: Distinct cache keys the cacher draws from — larger than the
    #: capacity so overwrites, misses, and evictions all occur.
    cache_keys: int = 12
    #: Relative weights of the actor operations.
    weights: dict[str, int] = field(
        default_factory=lambda: {
            "submit": 18,
            "pop": 22,
            "report": 16,
            "renew": 8,
            "reap": 7,
            "reprioritize": 9,
            "cancel": 5,
            "collect": 7,
            "check": 6,
            "jump": 4,
            "waiter": 5,
            "cacher": 7,
        }
    )


class _PoolActor:
    """Model-side state of one logical worker pool."""

    __slots__ = ("name", "held")

    def __init__(self, name: str) -> None:
        self.name = name
        # Held ids are not removed on requeue — the pool does not know
        # it was reaped, which is precisely the race being tested.
        self.held: list[int] = []


class ScheduleEngine:
    """Run one seeded schedule against a store, verifying each step."""

    def __init__(
        self,
        store: TaskStore,
        seed: int,
        config: ScheduleConfig | None = None,
        clock: VirtualClock | None = None,
    ) -> None:
        self.store = store
        self.seed = seed
        self.config = config if config is not None else ScheduleConfig()
        self.clock = clock if clock is not None else VirtualClock()
        self.model = ModelStore(cache_capacity=self.config.cache_capacity)
        self.rng = random.Random(seed)
        self.history: list[list[Any]] = []
        self.pools = [
            _PoolActor(f"pool-{i}") for i in range(self.config.n_pools)
        ]
        self._ops = sorted(self.config.weights)
        self._weights = [self.config.weights[op] for op in self._ops]
        self._step = 0

    # -- verification ------------------------------------------------------

    def _fail(self, op: str, detail: str) -> None:
        raise ConformanceViolation(self.seed, self._step, op, detail)

    def _verify(self, op: str, got: Any, want: Any) -> None:
        if got != want:
            self._fail(op, f"store returned {got!r}, model expects {want!r}")

    def _record(self, op: str, *fields: Any) -> None:
        self.history.append([self._step, op, *fields])

    # -- actor operations --------------------------------------------------

    def _op_submit(self) -> None:
        rng = self.rng
        count = rng.randint(1, 3)
        eq_type = rng.choice(self.config.work_types)
        priorities = [
            rng.randint(0, self.config.max_priority) for _ in range(count)
        ]
        payloads = [
            f'{{"step": {self._step}, "i": {i}}}' for i in range(count)
        ]
        now = self.clock.now()
        got = self.store.create_tasks(
            self.config.exp_id, eq_type, payloads,
            priority=priorities, time_created=now,
        )
        want = self.model.create_tasks(eq_type, payloads, priorities)
        self._verify("submit", list(got), want)
        self._record("submit", eq_type, priorities, want)

    def _op_pop(self) -> None:
        rng = self.rng
        pool = rng.choice(self.pools)
        eq_type = rng.choice(self.config.work_types)
        n = rng.randint(1, 3)
        leased = rng.random() >= self.config.unleased_fraction
        lease = self.config.lease if leased else None
        now = self.clock.now()
        got = self.store.pop_out(
            eq_type, n, worker_pool=pool.name, now=now, lease=lease
        )
        want = self.model.pop_out(
            eq_type, n, worker_pool=pool.name, now=now, lease=lease
        )
        self._verify("pop", [list(p) for p in got], [list(p) for p in want])
        pool.held.extend(tid for tid, _ in want)
        self._record("pop", pool.name, eq_type, n, leased,
                     [tid for tid, _ in want])

    def _op_report(self) -> None:
        rng = self.rng
        candidates = [p for p in self.pools if p.held]
        if not candidates:
            return
        pool = rng.choice(candidates)
        tid = pool.held.pop(rng.randrange(len(pool.held)))
        eq_type = self.model.tasks[tid].eq_task_type
        result = f'{{"task": {tid}, "by": "{pool.name}"}}'
        now = self.clock.now()
        self.store.report(tid, eq_type, result, now=now)
        outcome = self.model.report(tid, result)
        if outcome == "missing":
            self._fail("report", f"model lost task {tid}")
        self._record("report", pool.name, tid, outcome)

    def _op_renew(self) -> None:
        rng = self.rng
        candidates = [p for p in self.pools if p.held]
        if not candidates:
            return
        pool = rng.choice(candidates)
        ids = sorted(pool.held)
        now = self.clock.now()
        got = self.store.renew_leases(ids, now=now, lease=self.config.lease)
        want = self.model.renew_leases(ids, now=now, lease=self.config.lease)
        self._verify("renew", got, want)
        self._record("renew", pool.name, ids, want)

    def _op_reap(self) -> None:
        now = self.clock.now()
        got = self.store.requeue_expired(now=now)
        want = self.model.requeue_expired(now=now)
        self._verify("reap", list(got), want)
        self._record("reap", want)

    def _op_reprioritize(self) -> None:
        rng = self.rng
        known = sorted(self.model.tasks)
        if not known:
            return
        ids = sorted(rng.sample(known, min(len(known), rng.randint(1, 5))))
        priorities = [
            rng.randint(0, self.config.max_priority) for _ in ids
        ]
        got = self.store.update_priorities(ids, priorities)
        want = self.model.update_priorities(ids, priorities)
        self._verify("reprioritize", got, want)
        self._record("reprioritize", ids, priorities, want)

    def _op_cancel(self) -> None:
        rng = self.rng
        known = sorted(self.model.tasks)
        if not known:
            return
        ids = sorted(rng.sample(known, min(len(known), rng.randint(1, 3))))
        got = self.store.cancel_tasks(ids)
        want = self.model.cancel_tasks(ids)
        self._verify("cancel", got, want)
        self._record("cancel", ids, want)

    def _op_collect(self) -> None:
        rng = self.rng
        known = sorted(self.model.tasks)
        if not known:
            return
        ids = rng.sample(known, min(len(known), rng.randint(1, 8)))
        limit = rng.choice([None, 1, 2, 4])
        got = self.store.pop_in_any(ids, limit=limit)
        want = self.model.pop_in_any(ids, limit=limit)
        self._verify(
            "collect", [list(p) for p in got], [list(p) for p in want]
        )
        self._record("collect", ids, limit, [tid for tid, _ in want])

    def _op_check(self) -> None:
        """One read-only probe, verified against the model."""
        rng = self.rng
        probe = rng.choice(
            ["stats", "lengths", "statuses", "priorities", "task"]
        )
        now = self.clock.now()
        if probe == "stats":
            self._verify("check:stats", self.store.stats(now=now),
                         self.model.stats(now=now))
            self._record("check", "stats")
        elif probe == "lengths":
            eq_type = rng.choice((None,) + self.config.work_types)
            got = [
                self.store.queue_out_length(eq_type),
                self.store.queue_in_length(),
            ]
            want = [
                self.model.queue_out_length(eq_type),
                self.model.queue_in_length(),
            ]
            self._verify("check:lengths", got, want)
            self._record("check", "lengths", eq_type, want)
        else:
            known = sorted(self.model.tasks)
            if not known:
                return
            ids = sorted(rng.sample(known, min(len(known), 6)))
            if probe == "statuses":
                got = [
                    [tid, int(status)]
                    for tid, status in self.store.get_statuses(ids)
                ]
                want = [
                    [tid, int(status)]
                    for tid, status in self.model.get_statuses(ids)
                ]
                self._verify("check:statuses", got, want)
                self._record("check", "statuses", ids, want)
            elif probe == "priorities":
                got = [list(p) for p in self.store.get_priorities(ids)]
                want = [list(p) for p in self.model.get_priorities(ids)]
                self._verify("check:priorities", got, want)
                self._record("check", "priorities", ids, want)
            else:  # one full task row, incl. the sticky priority
                tid = rng.choice(known)
                row = self.store.get_task(tid)
                task = self.model.tasks[tid]
                got = [
                    int(row.eq_status), row.eq_priority, row.worker_pool,
                    row.lease_expiry, row.json_in,
                ]
                want = [
                    int(task.status), task.priority, task.worker_pool,
                    task.lease_expiry, task.result,
                ]
                self._verify("check:task", got, want)
                self._record("check", "task", tid, want)

    def _op_waiter(self) -> None:
        """Long-poll waits in all three shapes: immediate, wake, expiry.

        Exercises the blocking ``wait=`` path of ``pop_out`` and
        ``pop_in_any`` against the model.  A wait over satisfiable state
        must return instantly; a wait over empty state must be woken by
        the one write it watches (run in a helper thread so the engine
        thread can perform that write); a short wait over state nobody
        writes must expire empty.  Branch selection depends only on
        engine/model state — identical across access paths — so the PRNG
        stream, and hence the schedule, stays a pure function of the
        seed.  Helper threads only *call* the store; every verification
        happens on the engine thread after join, and the thread is
        always joined before the op returns so no background activity
        leaks into later steps.
        """
        rng = self.rng
        if rng.random() < 0.6:
            self._waiter_out(rng)
        else:
            self._waiter_in(rng)

    def _waiter_out(self, rng: random.Random) -> None:
        pool = rng.choice(self.pools)
        eq_type = rng.choice(self.config.work_types)
        n = rng.randint(1, 2)
        leased = rng.random() >= self.config.unleased_fraction
        lease = self.config.lease if leased else None
        priority = rng.randint(0, self.config.max_priority)
        now = self.clock.now()
        if self.model.queue_out_length(eq_type) > 0:
            # Immediate: a wait over claimable work must not block.
            got = self.store.pop_out(
                eq_type, n, worker_pool=pool.name, now=now, lease=lease,
                wait=_WAITER_WAIT,
            )
            want = self.model.pop_out(
                eq_type, n, worker_pool=pool.name, now=now, lease=lease
            )
            self._verify(
                "waiter:pop_out", [list(p) for p in got],
                [list(p) for p in want],
            )
            pool.held.extend(tid for tid, _ in want)
            self._record("waiter", "out-immediate", pool.name, eq_type, n,
                         leased, [tid for tid, _ in want])
            return
        if rng.random() < 0.3:
            # Expiry: an empty queue outlasts a short wait.
            got = self.store.pop_out(
                eq_type, n, worker_pool=pool.name, now=now, lease=lease,
                wait=_WAITER_EXPIRE,
            )
            self._verify("waiter:pop_out", [list(p) for p in got], [])
            self._record("waiter", "out-expire", pool.name, eq_type, n,
                         leased)
            return
        # Wake: block a helper thread on the empty queue, then create
        # the task that must wake it.
        outcome: list[Any] = []

        def blocked_pop() -> None:
            try:
                outcome.append(("ok", self.store.pop_out(
                    eq_type, n, worker_pool=pool.name, now=now, lease=lease,
                    wait=_WAITER_WAIT,
                )))
            except BaseException as exc:
                outcome.append(("raised", exc))

        thread = threading.Thread(
            target=blocked_pop, name="conformance-waiter"
        )
        thread.start()
        time.sleep(_WAITER_SETTLE)
        payload = f'{{"step": {self._step}, "waiter": true}}'
        got_ids = self.store.create_tasks(
            self.config.exp_id, eq_type, [payload],
            priority=[priority], time_created=now,
        )
        want_ids = self.model.create_tasks(eq_type, [payload], [priority])
        self._verify("waiter:create", list(got_ids), want_ids)
        thread.join(_WAITER_JOIN)
        if thread.is_alive():
            self._fail("waiter:pop_out", "blocked pop_out missed its wakeup")
        kind, value = outcome[0]
        if kind == "raised":
            self._fail("waiter:pop_out", f"blocked pop_out raised {value!r}")
        want = self.model.pop_out(
            eq_type, n, worker_pool=pool.name, now=now, lease=lease
        )
        self._verify(
            "waiter:pop_out", [list(p) for p in value],
            [list(p) for p in want],
        )
        pool.held.extend(tid for tid, _ in want)
        self._record("waiter", "out-wake", pool.name, eq_type, n, leased,
                     want_ids, [tid for tid, _ in want])

    def _waiter_in(self, rng: random.Random) -> None:
        model = self.model
        if model.in_queue:
            # Immediate: at least one watched result is already queued.
            known = sorted(model.tasks)
            ids = rng.sample(known, min(len(known), rng.randint(1, 8)))
            if not any(tid in model.in_queue for tid in ids):
                # Re-aim one probe slot at a queued result so the wait
                # cannot block the engine thread.
                ids[rng.randrange(len(ids))] = rng.choice(model.in_queue)
            limit = rng.choice([None, 1, 2, 4])
            got = self.store.pop_in_any(ids, limit=limit, wait=_WAITER_WAIT)
            want = model.pop_in_any(ids, limit=limit)
            self._verify(
                "waiter:pop_in", [list(p) for p in got],
                [list(p) for p in want],
            )
            self._record("waiter", "in-immediate", ids, limit,
                         [tid for tid, _ in want])
            return
        candidates = [
            (pool, tid)
            for pool in self.pools
            for tid in pool.held
            if model.tasks[tid].status != TaskStatus.COMPLETE
        ]
        if not candidates:
            # Nothing queued and nothing reportable: expiry shape.
            known = sorted(model.tasks)
            if not known:
                return
            ids = sorted(rng.sample(known, min(len(known), 3)))
            got = self.store.pop_in_any(ids, wait=_WAITER_EXPIRE)
            self._verify("waiter:pop_in", [list(p) for p in got], [])
            self._record("waiter", "in-expire", ids)
            return
        # Wake: block a helper thread watching one held task, then
        # report that task's result from the engine thread.
        pool, tid = candidates[rng.randrange(len(candidates))]
        pool.held.remove(tid)
        eq_type = model.tasks[tid].eq_task_type
        result = f'{{"task": {tid}, "by": "{pool.name}", "waiter": true}}'
        now = self.clock.now()
        outcome: list[Any] = []

        def blocked_collect() -> None:
            try:
                outcome.append(
                    ("ok", self.store.pop_in_any([tid], wait=_WAITER_WAIT))
                )
            except BaseException as exc:
                outcome.append(("raised", exc))

        thread = threading.Thread(
            target=blocked_collect, name="conformance-waiter"
        )
        thread.start()
        time.sleep(_WAITER_SETTLE)
        self.store.report(tid, eq_type, result, now=now)
        report_outcome = model.report(tid, result)
        if report_outcome == "missing":
            self._fail("waiter:pop_in", f"model lost task {tid}")
        thread.join(_WAITER_JOIN)
        if thread.is_alive():
            self._fail(
                "waiter:pop_in", "blocked pop_in_any missed its wakeup"
            )
        kind, value = outcome[0]
        if kind == "raised":
            self._fail(
                "waiter:pop_in", f"blocked pop_in_any raised {value!r}"
            )
        want = model.pop_in_any([tid])
        self._verify(
            "waiter:pop_in", [list(p) for p in value],
            [list(p) for p in want],
        )
        self._record("waiter", "in-wake", pool.name, tid, report_outcome)

    def _op_cacher(self) -> None:
        """Result-cache ops interleaved with every task-state actor.

        Draws gets and puts over a key universe larger than the cache
        capacity, with a TTL mix spanning the clock jumps, so hits,
        misses, overwrites, TTL expiry, and LRU eviction all occur and
        are verified against the model — including
        ``cache_stats()`` verbatim, proving memoization is invisible to
        the exactly-once and priority invariants the other actors check.
        """
        rng = self.rng
        key = f"ck-{rng.randrange(self.config.cache_keys)}"
        now = self.clock.now()
        if rng.random() < 0.5:
            got = self.store.cache_get(key, now=now)
            want = self.model.cache_get(key, now=now)
            self._verify("cacher:get", got, want)
            self._record("cacher", "get", key,
                         "miss" if want is None else "hit")
        else:
            eq_type = rng.choice(self.config.work_types)
            result = f'{{"cached": "{key}", "step": {self._step}}}'
            # None = immortal; short TTLs die on the next step's tick,
            # long ones only across a lease-sized clock jump.
            ttl = rng.choice(
                [None, 0.01, self.config.lease, 10 * self.config.lease]
            )
            self.store.cache_put(key, eq_type, result, now=now, ttl=ttl)
            self.model.cache_put(key, eq_type, result, now=now, ttl=ttl)
            self._record("cacher", "put", key,
                         "none" if ttl is None else ttl)
        self._verify("cacher:stats", self.store.cache_stats(),
                     self.model.cache_stats())

    def _op_jump(self) -> None:
        """Jump the clock far enough to expire un-renewed leases."""
        dt = self.config.lease * self.rng.uniform(1.0, 1.5)
        self.clock.advance(dt)
        self._record("jump", round(dt, 6))

    # -- driver ------------------------------------------------------------

    def run(self) -> list[list[Any]]:
        """Execute the schedule; returns the verified history.

        Raises :class:`ConformanceViolation` at the first divergence
        from the model (the history up to that point is preserved on
        ``self.history`` for diagnosis).  Ends with a full final-state
        audit so drift that never surfaced through a probed operation is
        still caught.
        """
        dispatch = {
            "submit": self._op_submit,
            "pop": self._op_pop,
            "report": self._op_report,
            "renew": self._op_renew,
            "reap": self._op_reap,
            "reprioritize": self._op_reprioritize,
            "cancel": self._op_cancel,
            "collect": self._op_collect,
            "check": self._op_check,
            "jump": self._op_jump,
            "waiter": self._op_waiter,
            "cacher": self._op_cacher,
        }
        for step in range(self.config.steps):
            self._step = step
            # Strictly monotonic time: every step ticks a small amount,
            # so journal timestamps totally order within a run.
            self.clock.advance(self.rng.uniform(0.001, 0.05))
            op = self.rng.choices(self._ops, weights=self._weights, k=1)[0]
            dispatch[op]()
        self._step = self.config.steps
        self._final_audit()
        return self.history

    def _final_audit(self) -> None:
        """Compare the complete final state against the model."""
        now = self.clock.now()
        self._verify("final:stats", self.store.stats(now=now),
                     self.model.stats(now=now))
        ids = sorted(self.model.tasks)
        got_status = [
            [tid, int(status)] for tid, status in self.store.get_statuses(ids)
        ]
        want_status = [
            [tid, int(status)] for tid, status in self.model.get_statuses(ids)
        ]
        self._verify("final:statuses", got_status, want_status)
        got_prio = [list(p) for p in self.store.get_priorities(ids)]
        want_prio = [list(p) for p in self.model.get_priorities(ids)]
        self._verify("final:priorities", got_prio, want_prio)
        self._verify("final:cache", self.store.cache_stats(),
                     self.model.cache_stats())
        self._record("final", want_status, want_prio)

"""Invariant checkers over the journal and cross-path histories.

The schedule engine already verifies every operation's *return value*
against the reference model.  These checkers audit the other two
observation channels:

- the PR-5 flight-recorder journal (``ROLE_DB`` records emitted inside
  the backend), which exposes internal transitions — withdrawals, per-id
  renewals — no return value shows; and
- the verified histories and journal traces of *different access paths*
  run under the same seed, which must be byte-for-byte identical.

All checkers return a list of human-readable violation strings (empty
means the invariant holds) rather than raising, so one run reports every
broken invariant at once.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Any

from repro.telemetry.journal import (
    EV_CANCEL,
    EV_ENQUEUE,
    EV_LEASE_RENEW,
    EV_POP,
    EV_REPORT,
    EV_REQUEUE,
    EV_WITHDRAW,
    JournalRecord,
)

#: Lifecycle automaton for ROLE_DB events.  States: queued, running,
#: complete, canceled.  A report is legal from any non-complete state
#: (first-write-wins absorbs late reports of requeued or canceled
#: tasks); everything else is tightly constrained.
_LEGAL_TRANSITIONS: dict[tuple[str, str], str] = {
    ("queued", EV_POP): "running",
    ("queued", EV_CANCEL): "canceled",
    ("queued", EV_WITHDRAW): "queued",  # withdraw precedes its report
    ("queued", EV_REPORT): "complete",
    ("running", EV_LEASE_RENEW): "running",
    ("running", EV_REQUEUE): "queued",
    ("running", EV_REPORT): "complete",
    ("canceled", EV_REPORT): "complete",
}


def check_journal_invariants(
    records: Sequence[JournalRecord], *, lease: float | None = None
) -> list[str]:
    """Audit one path's ROLE_DB journal records.

    Checks, per task:

    - **exactly-once report** — at most one EV_REPORT ever lands (the
      duplicate-report path must be a silent no-op, never a second
      record);
    - **no activity after terminal** — once reported, a task can never
      again pop, requeue, renew, or cancel;
    - **lifecycle legality** — every event is a legal transition of the
      queued → running → {complete, canceled} automaton (e.g. a renew
      while queued, or a requeue of a non-running task, is a violation);
    - **lease monotonicity** — within one running claim, successive
      lease expiries (pop/renew time + ``lease``) never move backward,
      and record timestamps are non-decreasing per task.
    """
    violations: list[str] = []
    state: dict[int, str] = {}
    reports: dict[int, int] = {}
    last_time: dict[int, float] = {}
    lease_expiry: dict[int, float] = {}
    for record in records:
        if record.role != "db":
            continue
        tid = record.task_id
        if tid in last_time and record.time < last_time[tid]:
            violations.append(
                f"task {tid}: {record.event} at t={record.time} before "
                f"previous event at t={last_time[tid]} (time went backward)"
            )
        last_time[tid] = record.time
        if record.event == EV_ENQUEUE:
            if tid in state:
                violations.append(f"task {tid}: enqueued twice")
            state[tid] = "queued"
            continue
        current = state.get(tid)
        if current is None:
            violations.append(
                f"task {tid}: {record.event} before any enqueue"
            )
            continue
        if record.event == EV_REPORT:
            reports[tid] = reports.get(tid, 0) + 1
            if reports[tid] > 1:
                violations.append(
                    f"task {tid}: reported {reports[tid]} times "
                    "(exactly-once violated)"
                )
        if current == "complete":
            violations.append(
                f"task {tid}: {record.event} after terminal report"
            )
            continue
        nxt = _LEGAL_TRANSITIONS.get((current, record.event))
        if nxt is None:
            violations.append(
                f"task {tid}: illegal {record.event} while {current}"
            )
            continue
        if lease is not None:
            if record.event == EV_POP:
                extra = record.extra or {}
                if "lease" in extra:
                    lease_expiry[tid] = record.time + float(extra["lease"])
                else:
                    lease_expiry.pop(tid, None)  # unleased claim
            elif record.event == EV_LEASE_RENEW and tid in lease_expiry:
                new_expiry = record.time + lease
                if new_expiry < lease_expiry[tid]:
                    violations.append(
                        f"task {tid}: renew shrank lease expiry "
                        f"{lease_expiry[tid]} -> {new_expiry}"
                    )
                lease_expiry[tid] = new_expiry
            elif record.event in (EV_REQUEUE, EV_REPORT, EV_CANCEL):
                lease_expiry.pop(tid, None)
        state[tid] = nxt
    return violations


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True)


def check_history_equivalence(
    histories: dict[str, list[list[Any]]]
) -> list[str]:
    """All access paths must produce byte-identical verified histories."""
    violations: list[str] = []
    paths = sorted(histories)
    if len(paths) < 2:
        return violations
    reference_path = paths[0]
    reference = [_canonical(entry) for entry in histories[reference_path]]
    for path in paths[1:]:
        entries = [_canonical(entry) for entry in histories[path]]
        if entries == reference:
            continue
        detail = f"lengths {len(reference)} vs {len(entries)}"
        for i, (a, b) in enumerate(zip(reference, entries)):
            if a != b:
                detail = f"first divergence at entry {i}: {a} vs {b}"
                break
        violations.append(
            f"history of {path!r} diverges from {reference_path!r}: {detail}"
        )
    return violations


def journal_trace(records: Sequence[JournalRecord]) -> list[list[Any]]:
    """A path-comparable projection of ROLE_DB journal records.

    Sequence numbers are dropped (each path has its own journal); the
    remaining fields — event, task, work type, source, timestamp, extra
    — are fully determined by the schedule and must match across paths.
    """
    return [
        [r.event, r.task_id, r.work_type, r.source, r.time,
         r.extra if r.extra else None]
        for r in records
        if r.role == "db"
    ]


def check_journal_equivalence(
    traces: dict[str, list[list[Any]]]
) -> list[str]:
    """All access paths must emit identical ROLE_DB journal traces."""
    violations: list[str] = []
    paths = sorted(traces)
    if len(paths) < 2:
        return violations
    reference_path = paths[0]
    reference = [_canonical(e) for e in traces[reference_path]]
    for path in paths[1:]:
        entries = [_canonical(e) for e in traces[path]]
        if entries == reference:
            continue
        detail = f"lengths {len(reference)} vs {len(entries)}"
        for i, (a, b) in enumerate(zip(reference, entries)):
            if a != b:
                detail = f"first divergence at record {i}: {a} vs {b}"
                break
        violations.append(
            f"journal trace of {path!r} diverges from {reference_path!r}: "
            f"{detail}"
        )
    return violations

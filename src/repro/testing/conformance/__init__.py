"""Deterministic cross-backend conformance harness for the EMEWS DB.

One shared, seeded operation schedule is executed against every store
access path — :class:`~repro.db.memory_backend.MemoryTaskStore`,
:class:`~repro.db.sqlite_backend.SqliteTaskStore`, and
:class:`~repro.core.service_client.RemoteTaskStore` through a live
:class:`~repro.core.service.TaskService` — and every observable result
is checked, operation by operation, against a reference model of the
store contract, then across paths byte-for-byte.

Three layers (DESIGN §13):

- :mod:`.schedule` — the schedule engine: a seeded PRNG interleaves
  logical concurrent actors (submitters, pools popping / renewing /
  reporting, a lease reaper, a reprioritizer, a canceller, a collector)
  over an injected :class:`~repro.util.clock.VirtualClock`, so any
  failure replays exactly from its seed.
- :mod:`.invariants` — checkers over the PR-5 journal plus final store
  state: exactly-once report, lifecycle legality (no pop/renew/requeue
  after a terminal event), lease monotonicity, and identical observable
  histories and journal traces across access paths.
- :mod:`.runner` — path construction and orchestration behind
  ``python -m repro conform --seeds N`` and the pytest suite.
"""

from repro.testing.conformance.invariants import (
    check_history_equivalence,
    check_journal_equivalence,
    check_journal_invariants,
)
from repro.testing.conformance.model import ModelStore
from repro.testing.conformance.runner import (
    ACCESS_PATHS,
    ConformanceReport,
    SeedResult,
    run_conformance,
    run_seed,
)
from repro.testing.conformance.schedule import (
    ConformanceViolation,
    ScheduleConfig,
    ScheduleEngine,
)

__all__ = [
    "ACCESS_PATHS",
    "ConformanceReport",
    "ConformanceViolation",
    "ModelStore",
    "ScheduleConfig",
    "ScheduleEngine",
    "SeedResult",
    "check_history_equivalence",
    "check_journal_equivalence",
    "check_journal_invariants",
    "run_conformance",
    "run_seed",
]

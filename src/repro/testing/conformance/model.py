"""Reference model of the :class:`~repro.db.backend.TaskStore` contract.

A deliberately naive, obviously-correct shadow implementation: plain
dicts, linear scans, explicit sorts.  The schedule engine runs every
operation against a real backend *and* this model and compares the
results — so the model is the executable specification the three access
paths are held to.  Nothing here is optimized; divergence from a real
backend is a conformance violation in the backend (or, rarely, a spec
bug to settle here first).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.db.schema import TaskStatus


class ModelTask:
    """Model state for one task."""

    __slots__ = (
        "eq_task_id",
        "eq_task_type",
        "status",
        "priority",
        "worker_pool",
        "lease_expiry",
        "payload",
        "result",
    )

    def __init__(self, eq_task_id: int, eq_task_type: int, priority: int,
                 payload: str) -> None:
        self.eq_task_id = eq_task_id
        self.eq_task_type = eq_task_type
        self.status = TaskStatus.QUEUED
        self.priority = priority
        self.worker_pool: str | None = None
        self.lease_expiry: float | None = None
        self.payload = payload
        self.result: str | None = None


class ModelStore:
    """Executable specification of the store contract.

    A task is on the output queue iff its status is QUEUED (creation
    enqueues; pop, cancel, and report-withdraw dequeue; requeue
    re-enqueues).  The input queue is an ordered id list.  Pop order is
    ``priority DESC, eq_task_id ASC``; batch operations preserve caller
    id order exactly as the SQL and memory backends do.
    """

    def __init__(self, cache_capacity: int = 512) -> None:
        self.tasks: dict[int, ModelTask] = {}
        self.in_queue: list[int] = []
        self._next_id = 1
        # Result cache spec (mirrors TaskStore.cache_get/cache_put):
        # key -> [eq_type, result, expiry, last_used]; LRU order is a
        # per-store monotonic use counter, never wall time.
        self._cache_capacity = cache_capacity
        self._cache: dict[str, list] = {}
        self._cache_use = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_inserts = 0
        self._cache_evictions = 0

    # -- creation ---------------------------------------------------------

    def create_tasks(
        self, eq_type: int, payloads: Sequence[str], priorities: Sequence[int]
    ) -> list[int]:
        ids = []
        for payload, priority in zip(payloads, priorities):
            tid = self._next_id
            self._next_id += 1
            self.tasks[tid] = ModelTask(tid, eq_type, priority, payload)
            ids.append(tid)
        return ids

    # -- output queue -----------------------------------------------------

    def _queued(self, eq_type: int | None = None) -> list[ModelTask]:
        return [
            t for t in self.tasks.values()
            if t.status == TaskStatus.QUEUED
            and (eq_type is None or t.eq_task_type == eq_type)
        ]

    def pop_out(
        self,
        eq_type: int,
        n: int,
        *,
        worker_pool: str,
        now: float,
        lease: float | None,
    ) -> list[tuple[int, str]]:
        candidates = sorted(
            self._queued(eq_type), key=lambda t: (-t.priority, t.eq_task_id)
        )[:n]
        for task in candidates:
            task.status = TaskStatus.RUNNING
            task.worker_pool = worker_pool
            task.lease_expiry = None if lease is None else now + lease
        return [(t.eq_task_id, t.payload) for t in candidates]

    def queue_out_length(self, eq_type: int | None = None) -> int:
        return len(self._queued(eq_type))

    # -- input queue ------------------------------------------------------

    def report(self, eq_task_id: int, result: str) -> str:
        """Apply one report; returns 'applied', 'duplicate', or 'missing'.

        First write wins; a requeued (QUEUED-again) copy is withdrawn
        from the output queue by virtue of the status change.  Mirrors
        the backends: any non-COMPLETE row accepts a result — including
        a CANCELED one whose cancellation raced a slow pool's report.
        """
        task = self.tasks.get(eq_task_id)
        if task is None:
            return "missing"
        if task.status == TaskStatus.COMPLETE:
            return "duplicate"
        task.result = result
        task.status = TaskStatus.COMPLETE
        task.lease_expiry = None
        self.in_queue.append(eq_task_id)
        return "applied"

    def pop_in_any(
        self, eq_task_ids: Sequence[int], limit: int | None = None
    ) -> list[tuple[int, str]]:
        waiting = set(self.in_queue)
        popped: list[tuple[int, str]] = []
        for tid in eq_task_ids:
            if limit is not None and len(popped) >= limit:
                break
            if tid in waiting:
                waiting.discard(tid)
                self.in_queue.remove(tid)
                result = self.tasks[tid].result
                popped.append((tid, result if result is not None else ""))
        return popped

    def queue_in_length(self) -> int:
        return len(self.in_queue)

    # -- status / priority / cancellation ---------------------------------

    def get_statuses(
        self, eq_task_ids: Sequence[int]
    ) -> list[tuple[int, TaskStatus]]:
        return [
            (tid, self.tasks[tid].status)
            for tid in eq_task_ids
            if tid in self.tasks
        ]

    def get_priorities(self, eq_task_ids: Sequence[int]) -> list[tuple[int, int]]:
        return [
            (tid, self.tasks[tid].priority)
            for tid in eq_task_ids
            if tid in self.tasks and self.tasks[tid].status == TaskStatus.QUEUED
        ]

    def update_priorities(
        self, eq_task_ids: Sequence[int], priorities: Sequence[int]
    ) -> int:
        changed = 0
        for tid, priority in zip(eq_task_ids, priorities):
            task = self.tasks.get(tid)
            if task is None or task.status != TaskStatus.QUEUED:
                continue
            task.priority = priority
            changed += 1
        return changed

    def cancel_tasks(self, eq_task_ids: Sequence[int]) -> int:
        canceled = 0
        for tid in eq_task_ids:
            task = self.tasks.get(tid)
            if task is None or task.status != TaskStatus.QUEUED:
                continue
            task.status = TaskStatus.CANCELED
            canceled += 1
        return canceled

    # -- leases -----------------------------------------------------------

    def renew_leases(
        self, eq_task_ids: Sequence[int], *, now: float, lease: float
    ) -> int:
        renewed = 0
        seen: set[int] = set()
        for tid in eq_task_ids:
            if tid in seen:
                continue  # duplicate ids renew once (one lease per task)
            seen.add(tid)
            task = self.tasks.get(tid)
            if task is None or task.status != TaskStatus.RUNNING:
                continue
            task.lease_expiry = now + lease
            renewed += 1
        return renewed

    def requeue_expired(
        self, *, now: float, priority: int | None = None
    ) -> list[int]:
        expired = sorted(
            (
                t for t in self.tasks.values()
                if t.status == TaskStatus.RUNNING
                and t.lease_expiry is not None
                and t.lease_expiry <= now
            ),
            key=lambda t: t.eq_task_id,
        )
        for task in expired:
            task.priority = task.priority if priority is None else priority
            task.status = TaskStatus.QUEUED
            task.worker_pool = None
            task.lease_expiry = None
        return [t.eq_task_id for t in expired]

    # -- result cache -----------------------------------------------------

    def cache_get(self, cache_key: str, *, now: float = 0.0) -> str | None:
        entry = self._cache.get(cache_key)
        if entry is not None:
            expiry = entry[2]
            if expiry is not None and expiry <= now:
                del self._cache[cache_key]
                entry = None
        if entry is None:
            self._cache_misses += 1
            return None
        self._cache_use += 1
        entry[3] = self._cache_use
        self._cache_hits += 1
        return entry[1]

    def cache_put(
        self,
        cache_key: str,
        eq_type: int,
        result: str,
        *,
        now: float = 0.0,
        ttl: float | None = None,
    ) -> None:
        self._cache_use += 1
        expiry = None if ttl is None else now + ttl
        self._cache[cache_key] = [eq_type, result, expiry, self._cache_use]
        self._cache_inserts += 1
        while len(self._cache) > self._cache_capacity:
            victim = min(self._cache, key=lambda k: self._cache[k][3])
            del self._cache[victim]
            self._cache_evictions += 1

    def cache_stats(self) -> dict:
        return {
            "entries": len(self._cache),
            "capacity": self._cache_capacity,
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "inserts": self._cache_inserts,
            "evictions": self._cache_evictions,
        }

    # -- monitoring -------------------------------------------------------

    def stats(self, *, now: float) -> dict:
        by_status = dict.fromkeys(TaskStatus, 0)
        active = expired = unleased = 0
        for task in self.tasks.values():
            by_status[task.status] += 1
            if task.status == TaskStatus.RUNNING:
                if task.lease_expiry is None:
                    unleased += 1
                elif task.lease_expiry > now:
                    active += 1
                else:
                    expired += 1
        queue_out: dict[str, int] = {}
        for task in self._queued():
            key = str(task.eq_task_type)
            queue_out[key] = queue_out.get(key, 0) + 1
        return {
            "tasks": {
                **{s.label(): n for s, n in by_status.items()},
                "total": len(self.tasks),
            },
            "queue_out": queue_out,
            "queue_out_total": len(self._queued()),
            "queue_in": len(self.in_queue),
            "leases": {
                "active": active,
                "expired": expired,
                "unleased_running": unleased,
            },
        }

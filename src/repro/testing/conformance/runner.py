"""Conformance run orchestration: access paths, seeds, reporting.

One *seed run* executes the identical seeded schedule against each
access path in turn — a fresh store, model, virtual clock, and journal
per path — then audits each path's journal and compares histories and
journal traces across paths.  Paths:

- ``memory`` — :class:`~repro.db.memory_backend.MemoryTaskStore`;
- ``sqlite`` — :class:`~repro.db.sqlite_backend.SqliteTaskStore` on
  ``:memory:``;
- ``remote`` — :class:`~repro.core.service_client.RemoteTaskStore`
  speaking the wire protocol to a live in-process
  :class:`~repro.core.service.TaskService` wrapping a memory backend.
  The backend gets the recording journal (so ROLE_DB traces compare
  across paths); the service itself gets a disabled journal, keeping
  service-hop records out of the cross-path comparison.

Each path uses a private metrics registry so conformance runs never
pollute the process-wide one.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.db.backend import TaskStore
from repro.db.memory_backend import MemoryTaskStore
from repro.db.sqlite_backend import SqliteTaskStore
from repro.telemetry.journal import Journal
from repro.telemetry.metrics import MetricsRegistry
from repro.testing.conformance.invariants import (
    check_history_equivalence,
    check_journal_equivalence,
    check_journal_invariants,
    journal_trace,
)
from repro.testing.conformance.schedule import (
    ConformanceViolation,
    ScheduleConfig,
    ScheduleEngine,
)
from repro.util.clock import VirtualClock

ACCESS_PATHS: tuple[str, ...] = ("memory", "sqlite", "remote")


@contextmanager
def open_path(
    path: str, journal: Journal, cache_capacity: int = 512
) -> Iterator[TaskStore]:
    """Yield a fresh store for one access path; tears everything down.

    ``cache_capacity`` must match the schedule's
    :attr:`~.schedule.ScheduleConfig.cache_capacity` — LRU eviction
    order is part of the verified contract, so the store and the model
    have to overflow at the same point.
    """
    registry = MetricsRegistry()
    if path == "memory":
        store = MemoryTaskStore(
            metrics=registry, journal=journal, cache_capacity=cache_capacity
        )
        try:
            yield store
        finally:
            store.close()
    elif path == "sqlite":
        store = SqliteTaskStore(
            ":memory:", metrics=registry, journal=journal,
            cache_capacity=cache_capacity,
        )
        try:
            yield store
        finally:
            store.close()
    elif path == "remote":
        # Imported lazily: the memory/sqlite paths must not pay for the
        # service stack (sockets, threads) just to run.
        from repro.core.service import TaskService
        from repro.core.service_client import RemoteTaskStore

        backend = MemoryTaskStore(
            metrics=registry, journal=journal, cache_capacity=cache_capacity
        )
        service = TaskService(
            backend, metrics=registry, journal=Journal(enabled=False)
        ).start()
        client = None
        try:
            host, port = service.address
            client = RemoteTaskStore(host, port, metrics=registry)
            yield client
        finally:
            if client is not None:
                client.close()
            service.stop()
            backend.close()
    else:
        raise ValueError(f"unknown access path: {path!r}")


@dataclass
class SeedResult:
    """Outcome of one seed across all requested paths."""

    seed: int
    paths: tuple[str, ...]
    operations: int = 0
    tasks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ConformanceReport:
    """Aggregate outcome of a multi-seed conformance run."""

    results: list[SeedResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failing_seeds(self) -> list[int]:
        return [r.seed for r in self.results if not r.ok]

    def summary(self) -> str:
        n = len(self.results)
        if self.ok:
            ops = sum(r.operations for r in self.results)
            tasks = sum(r.tasks for r in self.results)
            return (
                f"conformance OK: {n} seed(s), {ops} verified operations, "
                f"{tasks} tasks, 0 violations"
            )
        return (
            f"conformance FAILED: {len(self.failing_seeds)}/{n} seed(s) "
            f"violated invariants: {self.failing_seeds}"
        )


def run_seed(
    seed: int,
    *,
    paths: Sequence[str] = ACCESS_PATHS,
    config: ScheduleConfig | None = None,
) -> SeedResult:
    """Run one seed across ``paths``; never raises on violation."""
    config = config if config is not None else ScheduleConfig()
    result = SeedResult(seed=seed, paths=tuple(paths))
    histories: dict[str, list] = {}
    traces: dict[str, list] = {}
    for path in paths:
        clock = VirtualClock()
        journal = Journal(clock=clock, enabled=True, capacity=1 << 17)
        with open_path(path, journal, config.cache_capacity) as store:
            engine = ScheduleEngine(store, seed, config=config, clock=clock)
            try:
                histories[path] = engine.run()
            except ConformanceViolation as violation:
                result.violations.append(f"[{path}] {violation}")
                histories[path] = engine.history
            result.operations += len(engine.history)
            result.tasks = max(result.tasks, len(engine.model.tasks))
        records = journal.records()
        result.violations.extend(
            f"[{path}] journal: {v}"
            for v in check_journal_invariants(records, lease=config.lease)
        )
        traces[path] = journal_trace(records)
    result.violations.extend(
        f"[cross-path] {v}" for v in check_history_equivalence(histories)
    )
    result.violations.extend(
        f"[cross-path] {v}" for v in check_journal_equivalence(traces)
    )
    return result


def run_conformance(
    seeds: Iterable[int],
    *,
    paths: Sequence[str] = ACCESS_PATHS,
    config: ScheduleConfig | None = None,
    on_result=None,
) -> ConformanceReport:
    """Run many seeds; ``on_result`` (if given) sees each SeedResult."""
    report = ConformanceReport()
    for seed in seeds:
        result = run_seed(seed, paths=paths, config=config)
        report.results.append(result)
        if on_result is not None:
            on_result(result)
    return report

"""Epidemiologic models and calibration workloads.

OSPREY's purpose is "epidemiologic model analyses, monitoring, and rapid
response"; its workflows calibrate and explore models like the ones
here.  The package provides the three modeling scopes the paper's
introduction names — compartmental (:mod:`repro.epi.seir`), stochastic
(:mod:`repro.epi.stochastic`), and agent-based on a contact network
(:mod:`repro.epi.abm`) — plus synthetic surveillance-data generation
(:mod:`repro.epi.surveillance`) and calibration objectives
(:mod:`repro.epi.calibration`) that plug directly into the EQSQL task
path as worker-pool handlers.
"""

from repro.epi.seir import SEIRParams, SEIRResult, simulate_seir
from repro.epi.stochastic import simulate_stochastic_seir
from repro.epi.abm import NetworkABM, ABMParams
from repro.epi.surveillance import SurveillanceModel, generate_surveillance
from repro.epi.calibration import CalibrationProblem, poisson_deviance
from repro.epi.ensemble import (
    EnsembleForecast,
    MultiResolutionEnsemble,
    inverse_error_weights,
)
from repro.epi.assimilation import ParticleFilter, ParticleFilterConfig

__all__ = [
    "SEIRParams",
    "SEIRResult",
    "simulate_seir",
    "simulate_stochastic_seir",
    "NetworkABM",
    "ABMParams",
    "SurveillanceModel",
    "generate_surveillance",
    "CalibrationProblem",
    "poisson_deviance",
    "MultiResolutionEnsemble",
    "EnsembleForecast",
    "inverse_error_weights",
    "ParticleFilter",
    "ParticleFilterConfig",
]

"""Agent-based SEIR on a contact network.

The third modeling scope the paper's introduction names: individual
agents on a (networkx) contact graph.  Transmission crosses edges from
infectious to susceptible neighbors each day with probability
``p_transmit``; exposed agents incubate for a geometric latent period,
infectious agents recover after a geometric infectious period.  The
model matches the compartmental dynamics on dense graphs and departs
from them on sparse/clustered ones — that departure is the scientific
reason for the multi-resolution ensembles OSPREY targets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx
import numpy as np


class AgentState(enum.IntEnum):
    S = 0
    E = 1
    I = 2
    R = 3


@dataclass(frozen=True)
class ABMParams:
    """Per-contact and progression parameters.

    ``p_transmit``: per-day per-edge infection probability;
    ``sigma``/``gamma``: daily progression/recovery probabilities
    (geometric waiting times with means 1/sigma, 1/gamma days).
    """

    p_transmit: float
    sigma: float
    gamma: float

    def __post_init__(self) -> None:
        for name in ("p_transmit", "sigma", "gamma"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class ABMResult:
    """Daily counts per state."""

    t: np.ndarray
    counts: np.ndarray  # (days+1, 4) columns S, E, I, R

    def attack_rate(self) -> float:
        n = self.counts[0].sum()
        return float((n - self.counts[-1, AgentState.S]) / n)

    def peak_infected(self) -> tuple[int, int]:
        idx = int(np.argmax(self.counts[:, AgentState.I]))
        return idx, int(self.counts[idx, AgentState.I])


class NetworkABM:
    """SEIR agents on a contact graph."""

    def __init__(self, graph: nx.Graph, params: ABMParams) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must have at least one node")
        self.graph = graph
        self.params = params
        self._nodes = list(graph.nodes)
        self._index = {node: i for i, node in enumerate(self._nodes)}
        # Adjacency as index lists for fast inner loops.
        self._neighbors = [
            np.fromiter(
                (self._index[m] for m in graph.neighbors(node)), dtype=np.intp
            )
            for node in self._nodes
        ]
        self.state = np.full(len(self._nodes), AgentState.S, dtype=np.int8)

    def seed(self, rng: np.random.Generator, n_infected: int) -> None:
        """Infect ``n_infected`` distinct random agents."""
        if not 1 <= n_infected <= len(self._nodes):
            raise ValueError("n_infected out of range")
        chosen = rng.choice(len(self._nodes), size=n_infected, replace=False)
        self.state[chosen] = AgentState.I

    def _counts(self) -> np.ndarray:
        return np.bincount(self.state, minlength=4)

    def step(self, rng: np.random.Generator) -> None:
        """Advance one day (synchronous update)."""
        params = self.params
        state = self.state
        infectious = np.flatnonzero(state == AgentState.I)
        # Transmission: each I-S edge fires independently.
        newly_exposed: set[int] = set()
        for agent in infectious:
            neighbors = self._neighbors[agent]
            if neighbors.size == 0:
                continue
            susceptible = neighbors[state[neighbors] == AgentState.S]
            if susceptible.size == 0:
                continue
            hits = susceptible[rng.random(susceptible.size) < params.p_transmit]
            newly_exposed.update(int(h) for h in hits)
        # Progression draws (computed before applying transmission so a
        # just-exposed agent cannot progress the same day).
        exposed = np.flatnonzero(state == AgentState.E)
        progressing = exposed[rng.random(exposed.size) < params.sigma]
        recovering = infectious[rng.random(infectious.size) < params.gamma]
        if newly_exposed:
            state[list(newly_exposed)] = AgentState.E
        state[progressing] = AgentState.I
        state[recovering] = AgentState.R

    def run(
        self, rng: np.random.Generator, days: int, stop_when_extinct: bool = True
    ) -> ABMResult:
        """Simulate ``days`` steps; returns daily S/E/I/R counts."""
        if days < 1:
            raise ValueError("days must be >= 1")
        counts = np.zeros((days + 1, 4), dtype=int)
        counts[0] = self._counts()
        for day in range(1, days + 1):
            self.step(rng)
            counts[day] = self._counts()
            if stop_when_extinct and counts[day, 1] == 0 and counts[day, 2] == 0:
                counts[day + 1 :] = counts[day]
                break
        return ABMResult(t=np.arange(days + 1, dtype=float), counts=counts)

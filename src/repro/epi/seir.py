"""Deterministic SEIR compartmental model.

The classic four-compartment ODE::

    dS/dt = -beta * S * I / N
    dE/dt =  beta * S * I / N - sigma * E
    dI/dt =  sigma * E - gamma * I
    dR/dt =  gamma * I

integrated with a self-contained fixed-step RK4 (no black-box solver:
the integrator is part of the substrate and is tested against known
invariants — population conservation, monotone S, R0 threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SEIRParams:
    """Epidemiological rates.

    ``beta``: transmission rate (contacts × infection probability /day);
    ``sigma``: 1 / latent period; ``gamma``: 1 / infectious period;
    ``population``: total N.
    """

    beta: float
    sigma: float
    gamma: float
    population: float

    def __post_init__(self) -> None:
        if min(self.beta, self.sigma, self.gamma) < 0:
            raise ValueError("rates must be nonnegative")
        if self.population <= 0:
            raise ValueError("population must be positive")

    @property
    def r0(self) -> float:
        """Basic reproduction number beta/gamma."""
        if self.gamma == 0:
            return float("inf")
        return self.beta / self.gamma


@dataclass
class SEIRResult:
    """Trajectories on a uniform time grid."""

    t: np.ndarray
    S: np.ndarray
    E: np.ndarray
    I: np.ndarray
    R: np.ndarray

    @property
    def incidence(self) -> np.ndarray:
        """New infections per step: the decrease of S (>= 0)."""
        inc = -np.diff(self.S, prepend=self.S[0])
        return np.maximum(inc, 0.0)

    def peak_infected(self) -> tuple[float, float]:
        """(time, value) of the infectious-compartment peak."""
        idx = int(np.argmax(self.I))
        return float(self.t[idx]), float(self.I[idx])

    def attack_rate(self) -> float:
        """Final fraction of the population ever infected."""
        n = self.S[0] + self.E[0] + self.I[0] + self.R[0]
        return float((n - self.S[-1]) / n)


def _deriv(params: SEIRParams, y: np.ndarray) -> np.ndarray:
    S, E, I, _R = y
    n = params.population
    force = params.beta * S * I / n
    return np.array(
        [
            -force,
            force - params.sigma * E,
            params.sigma * E - params.gamma * I,
            params.gamma * I,
        ]
    )


def simulate_seir(
    params: SEIRParams,
    initial_infected: float = 1.0,
    initial_exposed: float = 0.0,
    initial_recovered: float = 0.0,
    t_end: float = 200.0,
    dt: float = 0.25,
) -> SEIRResult:
    """Integrate the SEIR ODE with RK4 on a fixed grid."""
    if t_end <= 0 or dt <= 0:
        raise ValueError("t_end and dt must be positive")
    if dt > t_end:
        raise ValueError("dt must not exceed t_end")
    seeded = initial_infected + initial_exposed + initial_recovered
    if seeded > params.population:
        raise ValueError("initial compartments exceed the population")
    steps = int(round(t_end / dt))
    t = np.linspace(0.0, steps * dt, steps + 1)
    y = np.empty((steps + 1, 4))
    y[0] = [
        params.population - seeded,
        initial_exposed,
        initial_infected,
        initial_recovered,
    ]
    for k in range(steps):
        yk = y[k]
        k1 = _deriv(params, yk)
        k2 = _deriv(params, yk + 0.5 * dt * k1)
        k3 = _deriv(params, yk + 0.5 * dt * k2)
        k4 = _deriv(params, yk + dt * k3)
        y[k + 1] = yk + dt * (k1 + 2 * k2 + 2 * k3 + k4) / 6.0
        # RK4 can produce tiny negatives near extinction; clamp so the
        # force of infection never flips sign.
        np.maximum(y[k + 1], 0.0, out=y[k + 1])
    return SEIRResult(t=t, S=y[:, 0], E=y[:, 1], I=y[:, 2], R=y[:, 3])

"""Synthetic surveillance data.

The paper's data-ingestion requirements (§II-B2) are driven by real
surveillance streams being "heterogeneous, changing, and incomplete":
under-reporting, reporting delay, and overdispersed noise.  This module
generates synthetic case-count streams with exactly those pathologies
from a ground-truth epidemic, so calibration examples and the data
pipelines have realistic inputs with a known answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SurveillanceModel:
    """Observation process applied to true daily incidence.

    ``reporting_rate``: fraction of true infections ever reported;
    ``delay_mean``: mean reporting delay in days (geometric);
    ``dispersion``: negative-binomial k (smaller = noisier; ``inf``
    reduces to Poisson).
    """

    reporting_rate: float = 0.3
    delay_mean: float = 2.0
    dispersion: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.reporting_rate <= 1:
            raise ValueError("reporting_rate must be in (0, 1]")
        if self.delay_mean < 0:
            raise ValueError("delay_mean must be nonnegative")
        if self.dispersion <= 0:
            raise ValueError("dispersion must be positive")


def generate_surveillance(
    incidence: np.ndarray,
    model: SurveillanceModel,
    rng: np.random.Generator,
) -> np.ndarray:
    """Observed daily case counts from true daily ``incidence``.

    Pipeline: thin by the reporting rate, shift each reported case by a
    geometric delay, then add negative-binomial observation noise via
    the gamma-Poisson mixture.
    """
    incidence = np.asarray(incidence, dtype=float)
    if np.any(incidence < 0):
        raise ValueError("incidence must be nonnegative")
    days = incidence.shape[0]
    expected = incidence * model.reporting_rate

    # Distribute each day's expected reports over future days.
    delayed = np.zeros(days)
    if model.delay_mean == 0:
        delayed = expected.copy()
    else:
        p = 1.0 / (1.0 + model.delay_mean)  # geometric success prob
        max_delay = min(days, 30)
        weights = p * (1 - p) ** np.arange(max_delay)
        weights /= weights.sum()
        for lag, w in enumerate(weights):
            delayed[lag:] += expected[: days - lag] * w

    # Negative binomial noise: Poisson with gamma-distributed rate.
    k = model.dispersion
    if np.isinf(k):
        return rng.poisson(delayed).astype(float)
    rates = np.where(
        delayed > 0, rng.gamma(shape=k, scale=np.maximum(delayed, 1e-12) / k), 0.0
    )
    return rng.poisson(rates).astype(float)

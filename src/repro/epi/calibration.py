"""Calibration objectives: the tasks OSPREY's queues carry.

A :class:`CalibrationProblem` packages observed surveillance data and a
forward model into a callable objective — parameter vector in, loss out
— plus the JSON task-handler wrapper that makes it runnable by any
worker pool.  The loss is the Poisson deviance between observed and
model-predicted reported cases, the standard count-data discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.epi.seir import SEIRParams, simulate_seir
from repro.epi.surveillance import SurveillanceModel


def poisson_deviance(observed: np.ndarray, expected: np.ndarray) -> float:
    """2 * sum[ obs*log(obs/exp) - (obs - exp) ], with 0*log0 = 0.

    Nonnegative; zero iff observed == expected elementwise.
    """
    observed = np.asarray(observed, dtype=float)
    expected = np.maximum(np.asarray(expected, dtype=float), 1e-9)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must have the same shape")
    with np.errstate(divide="ignore", invalid="ignore"):
        term = np.where(
            observed > 0, observed * np.log(observed / expected), 0.0
        )
    return float(2.0 * np.sum(term - (observed - expected)))


@dataclass
class CalibrationProblem:
    """Calibrate (beta, sigma, gamma) of a SEIR model to daily cases.

    The forward model is the deterministic SEIR (fast, smooth — the
    surrogate-friendly choice); the observation model applies the known
    reporting rate and delay.  ``bounds`` defines the search box the ME
    algorithm samples.
    """

    observed: np.ndarray
    population: float
    surveillance: SurveillanceModel = field(default_factory=SurveillanceModel)
    initial_infected: float = 5.0
    bounds: tuple[tuple[float, float], ...] = (
        (0.1, 1.5),  # beta
        (0.1, 1.0),  # sigma
        (0.05, 1.0),  # gamma
    )

    def expected_cases(self, theta: np.ndarray) -> np.ndarray:
        """Model-predicted reported cases for parameters ``theta``."""
        beta, sigma, gamma = (float(v) for v in theta)
        params = SEIRParams(
            beta=beta, sigma=sigma, gamma=gamma, population=self.population
        )
        days = self.observed.shape[0]
        result = simulate_seir(
            params,
            initial_infected=self.initial_infected,
            t_end=float(days),
            dt=0.25,
        )
        # Daily incidence: aggregate the sub-daily grid.
        per_step = result.incidence
        steps_per_day = int(round(1.0 / 0.25))
        daily = per_step[1:].reshape(days, steps_per_day).sum(axis=1)
        expected = daily * self.surveillance.reporting_rate
        # Apply the (known) mean reporting delay as a shift-free
        # geometric smoothing identical to the generator's.
        if self.surveillance.delay_mean > 0:
            p = 1.0 / (1.0 + self.surveillance.delay_mean)
            max_delay = min(days, 30)
            weights = p * (1 - p) ** np.arange(max_delay)
            weights /= weights.sum()
            smoothed = np.zeros(days)
            for lag, w in enumerate(weights):
                smoothed[lag:] += expected[: days - lag] * w
            expected = smoothed
        return expected

    def loss(self, theta: np.ndarray) -> float:
        """Poisson deviance of ``theta`` against the observed series."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (3,):
            raise ValueError(f"theta must have 3 entries, got shape {theta.shape}")
        low = np.array([b[0] for b in self.bounds])
        high = np.array([b[1] for b in self.bounds])
        if np.any(theta < low) or np.any(theta > high):
            # Out-of-box proposals get a large finite penalty so the
            # surrogate stays informative near the boundary.
            return 1e12
        return poisson_deviance(self.observed, self.expected_cases(theta))

    def task_function(self, payload: dict) -> dict:
        """Worker-pool handler body: ``{'x': theta}`` -> ``{'y': loss}``."""
        return {"y": self.loss(np.asarray(payload["x"], dtype=float))}

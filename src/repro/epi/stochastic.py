"""Stochastic SEIR: a daily chain-binomial model.

Each day, transitions are binomial draws with the ODE's per-capita
hazards converted to probabilities (``p = 1 - exp(-rate * dt)``) — the
standard discrete-time stochastic epidemic used when surveillance data
is daily.  Small populations show stochastic die-out, which is exactly
why calibration needs many replicates and hence an HPC task queue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.epi.seir import SEIRParams


@dataclass
class StochasticSEIRResult:
    """Daily compartment counts plus daily incidence (new infections)."""

    t: np.ndarray
    S: np.ndarray
    E: np.ndarray
    I: np.ndarray
    R: np.ndarray
    incidence: np.ndarray

    def attack_rate(self) -> float:
        n = self.S[0] + self.E[0] + self.I[0] + self.R[0]
        return float((n - self.S[-1]) / n)

    def died_out_early(self, threshold: float = 0.01) -> bool:
        """True when the epidemic infected < ``threshold`` of N."""
        return self.attack_rate() < threshold


def simulate_stochastic_seir(
    params: SEIRParams,
    rng: np.random.Generator,
    initial_infected: int = 1,
    initial_exposed: int = 0,
    days: int = 200,
    dt: float = 1.0,
) -> StochasticSEIRResult:
    """Simulate the chain-binomial SEIR for ``days`` steps of ``dt``."""
    if days < 1:
        raise ValueError("days must be >= 1")
    if dt <= 0:
        raise ValueError("dt must be positive")
    n = int(round(params.population))
    S = n - initial_infected - initial_exposed
    E = initial_exposed
    I = initial_infected
    R = 0
    if S < 0:
        raise ValueError("initial compartments exceed the population")

    out = np.zeros((days + 1, 5), dtype=float)
    out[0] = [S, E, I, R, 0]
    for day in range(1, days + 1):
        p_infect = 1.0 - np.exp(-params.beta * I / n * dt)
        p_progress = 1.0 - np.exp(-params.sigma * dt)
        p_recover = 1.0 - np.exp(-params.gamma * dt)
        new_exposed = rng.binomial(S, p_infect)
        new_infectious = rng.binomial(E, p_progress)
        new_recovered = rng.binomial(I, p_recover)
        S -= new_exposed
        E += new_exposed - new_infectious
        I += new_infectious - new_recovered
        R += new_recovered
        out[day] = [S, E, I, R, new_exposed]

    return StochasticSEIRResult(
        t=np.arange(days + 1) * dt,
        S=out[:, 0],
        E=out[:, 1],
        I=out[:, 2],
        R=out[:, 3],
        incidence=out[:, 4],
    )

"""Multi-resolution model ensembles.

The paper's introduction argues that single-scope modeling falls short:
models of different methods "are rarely integrated into multi-resolution
ensembles that can mutually inform, and which could be combined to
rapidly support decision making".  This module provides that
integration: members of *different model classes* (deterministic SEIR,
stochastic SEIR replicates, the network ABM) forecast the same epidemic,
are scored against observed data, and are combined into a weighted
ensemble forecast with spread-based uncertainty — the multi-model
ensemble design of the COVID-19 forecast hubs the paper cites.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ReproError

#: A member returns a daily incidence forecast of the requested length.
MemberFn = Callable[[int], np.ndarray]


class EnsembleError(ReproError):
    """Ensemble construction or scoring failed."""


@dataclass
class MemberForecast:
    """One member's forecast plus its fit to the scoring window."""

    name: str
    forecast: np.ndarray
    score: float  # lower is better (MSE on the scoring window)
    weight: float = 0.0


@dataclass
class EnsembleForecast:
    """The combined forecast with uncertainty."""

    horizon: int
    members: list[MemberForecast]
    mean: np.ndarray = field(default_factory=lambda: np.empty(0))
    lower: np.ndarray = field(default_factory=lambda: np.empty(0))
    upper: np.ndarray = field(default_factory=lambda: np.empty(0))

    def weights(self) -> dict[str, float]:
        return {m.name: m.weight for m in self.members}


def inverse_error_weights(scores: np.ndarray, floor: float = 1e-9) -> np.ndarray:
    """Normalized inverse-MSE weights (better fit → larger weight)."""
    scores = np.maximum(np.asarray(scores, dtype=float), floor)
    raw = 1.0 / scores
    return raw / raw.sum()


class MultiResolutionEnsemble:
    """Score-weighted combination of heterogeneous epidemic models."""

    def __init__(self) -> None:
        self._members: dict[str, MemberFn] = {}

    def add_member(self, name: str, member: MemberFn) -> "MultiResolutionEnsemble":
        if name in self._members:
            raise EnsembleError(f"member {name!r} already registered")
        self._members[name] = member
        return self

    @property
    def member_names(self) -> list[str]:
        return list(self._members)

    def forecast(
        self,
        observed: np.ndarray,
        horizon: int,
        interval: float = 0.9,
    ) -> EnsembleForecast:
        """Score members on ``observed`` and combine their forecasts.

        Each member produces ``len(observed) + horizon`` days; the first
        window is scored (MSE against observed), the remainder is the
        forecast.  Weights are inverse-MSE; the ensemble mean is the
        weighted average and the interval is the weighted spread of
        member forecasts.
        """
        if not self._members:
            raise EnsembleError("ensemble has no members")
        observed = np.asarray(observed, dtype=float)
        window = observed.shape[0]
        if window < 2:
            raise EnsembleError("need at least two observed days to score members")
        if horizon < 1:
            raise EnsembleError("horizon must be >= 1")
        if not 0 < interval < 1:
            raise EnsembleError("interval must be in (0, 1)")

        members: list[MemberForecast] = []
        for name, fn in self._members.items():
            series = np.asarray(fn(window + horizon), dtype=float)
            if series.shape[0] != window + horizon:
                raise EnsembleError(
                    f"member {name!r} returned {series.shape[0]} days, "
                    f"expected {window + horizon}"
                )
            score = float(np.mean((series[:window] - observed) ** 2))
            members.append(
                MemberForecast(name=name, forecast=series[window:], score=score)
            )

        weights = inverse_error_weights(np.array([m.score for m in members]))
        for member, w in zip(members, weights):
            member.weight = float(w)

        stack = np.stack([m.forecast for m in members])  # (members, horizon)
        mean = weights @ stack
        # Weighted quantiles across members, per day.
        alpha = (1.0 - interval) / 2.0
        lower = np.empty(horizon)
        upper = np.empty(horizon)
        order = np.argsort(stack, axis=0)
        for day in range(horizon):
            values = stack[order[:, day], day]
            cum = np.cumsum(weights[order[:, day]])
            lower[day] = values[np.searchsorted(cum, alpha, side="left").clip(0, len(values) - 1)]
            upper[day] = values[np.searchsorted(cum, 1 - alpha, side="left").clip(0, len(values) - 1)]

        return EnsembleForecast(
            horizon=horizon, members=members, mean=mean, lower=lower, upper=upper
        )

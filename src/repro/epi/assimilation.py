"""Sequential data assimilation: a bootstrap particle filter over SEIR.

Paper §II-A2: OSPREY must "enable continuously running data assimilation
analyses for melding data streams with up-to-date model forecasts."
This module provides the canonical such analysis: a bootstrap particle
filter whose particles are stochastic SEIR states with uncertain
transmission rates.  Each day's reported case count updates the particle
weights (negative-binomial observation likelihood) and systematic
resampling keeps the ensemble concentrated — yielding filtered state
estimates, an evolving beta posterior, and short-term forecasts that
incorporate all data so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ReproError


class AssimilationError(ReproError):
    """Particle filter misconfiguration."""


@dataclass
class ParticleFilterConfig:
    """Filter hyperparameters.

    ``beta_prior`` bounds the initial transmission-rate spread;
    ``beta_walk`` is the daily random-walk scale letting beta drift
    (behaviour change, variants); ``dispersion`` is the negative
    binomial k of the observation model.
    """

    n_particles: int = 500
    population: int = 100_000
    sigma: float = 0.25
    gamma: float = 0.2
    reporting_rate: float = 0.3
    beta_prior: tuple[float, float] = (0.2, 1.0)
    beta_walk: float = 0.02
    dispersion: float = 10.0
    initial_infected: int = 10

    def __post_init__(self) -> None:
        if self.n_particles < 2:
            raise AssimilationError("need at least 2 particles")
        if not 0 < self.reporting_rate <= 1:
            raise AssimilationError("reporting_rate must be in (0, 1]")
        if self.beta_prior[0] <= 0 or self.beta_prior[0] >= self.beta_prior[1]:
            raise AssimilationError("beta_prior must be (low, high) with 0 < low < high")


@dataclass
class FilterStep:
    """Posterior summary after assimilating one day."""

    day: int
    observed: float
    expected_mean: float
    beta_mean: float
    beta_std: float
    infected_mean: float
    ess: float  # effective sample size before resampling


@dataclass
class ParticleFilter:
    """Bootstrap particle filter over the chain-binomial SEIR."""

    config: ParticleFilterConfig
    rng: np.random.Generator
    steps: list[FilterStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        cfg = self.config
        n = cfg.n_particles
        self.beta = self.rng.uniform(*cfg.beta_prior, size=n)
        self.S = np.full(n, cfg.population - cfg.initial_infected, dtype=np.int64)
        self.E = np.zeros(n, dtype=np.int64)
        self.I = np.full(n, cfg.initial_infected, dtype=np.int64)
        self.R = np.zeros(n, dtype=np.int64)

    # -- model step ---------------------------------------------------------

    def _propagate(self) -> np.ndarray:
        """One stochastic day for every particle; returns new exposures."""
        cfg = self.config
        pop = float(cfg.population)
        p_infect = 1.0 - np.exp(-self.beta * self.I / pop)
        p_progress = 1.0 - np.exp(-cfg.sigma)
        p_recover = 1.0 - np.exp(-cfg.gamma)
        new_e = self.rng.binomial(self.S, p_infect)
        new_i = self.rng.binomial(self.E, p_progress)
        new_r = self.rng.binomial(self.I, p_recover)
        self.S -= new_e
        self.E += new_e - new_i
        self.I += new_i - new_r
        self.R += new_r
        # Parameter random walk (log scale keeps beta positive).
        self.beta = np.exp(
            np.log(self.beta) + self.rng.normal(0.0, cfg.beta_walk, self.beta.size)
        )
        return new_e

    def _log_likelihood(self, observed: float, expected: np.ndarray) -> np.ndarray:
        """Negative-binomial log pmf of the observation per particle."""
        k = self.config.dispersion
        mu = np.maximum(expected * self.config.reporting_rate, 1e-6)
        from scipy.special import gammaln

        y = float(observed)
        p = k / (k + mu)
        return (
            gammaln(y + k) - gammaln(k) - gammaln(y + 1)
            + k * np.log(p)
            + y * np.log1p(-p)
        )

    def _systematic_resample(self, weights: np.ndarray) -> np.ndarray:
        n = weights.size
        positions = (self.rng.random() + np.arange(n)) / n
        return np.searchsorted(np.cumsum(weights), positions).clip(0, n - 1)

    # -- public API --------------------------------------------------------------

    def assimilate(self, observed: float) -> FilterStep:
        """Advance one day and condition on that day's case count."""
        new_e = self._propagate()
        log_w = self._log_likelihood(observed, new_e.astype(float))
        log_w -= log_w.max()
        weights = np.exp(log_w)
        weights /= weights.sum()
        ess = float(1.0 / np.sum(weights**2))

        step = FilterStep(
            day=len(self.steps) + 1,
            observed=float(observed),
            expected_mean=float(
                np.sum(weights * new_e) * self.config.reporting_rate
            ),
            beta_mean=float(np.sum(weights * self.beta)),
            beta_std=float(np.sqrt(np.sum(weights * (self.beta - np.sum(weights * self.beta)) ** 2))),
            infected_mean=float(np.sum(weights * self.I)),
            ess=ess,
        )
        self.steps.append(step)

        idx = self._systematic_resample(weights)
        for name in ("beta", "S", "E", "I", "R"):
            setattr(self, name, getattr(self, name)[idx].copy())
        return step

    def run(self, observations: np.ndarray) -> list[FilterStep]:
        """Assimilate a whole observed series day by day."""
        return [self.assimilate(obs) for obs in np.asarray(observations, dtype=float)]

    def forecast(self, days: int) -> np.ndarray:
        """Expected reported cases for ``days`` ahead (ensemble mean),
        without consuming the filter state."""
        if days < 1:
            raise AssimilationError("days must be >= 1")
        saved = {n: getattr(self, n).copy() for n in ("beta", "S", "E", "I", "R")}
        out = np.empty(days)
        try:
            for d in range(days):
                new_e = self._propagate()
                out[d] = float(np.mean(new_e)) * self.config.reporting_rate
        finally:
            for name, value in saved.items():
                setattr(self, name, value)
        return out

    def beta_posterior(self) -> tuple[float, float]:
        """(mean, std) of the current transmission-rate ensemble."""
        return float(self.beta.mean()), float(self.beta.std())

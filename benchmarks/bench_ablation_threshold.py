"""ABL-THRESH — ablation: utilization vs fetch threshold (extends Fig 3).

Sweeps the threshold at batch size 33 for a 33-worker pool.  Expected
shape: utilization decays and the saw-tooth deepens as the threshold
grows (workers idle until the deficit accumulates), while the number of
DB queries falls — the query-load/utilization trade-off the threshold
knob exists to tune.
"""

from __future__ import annotations

from repro.sim import Fig3Config, run_fig3_panel
from repro.telemetry import render_table

THRESHOLDS = (1, 5, 10, 15, 25, 33)


def test_threshold_sweep(benchmark, report):
    def sweep():
        return {
            threshold: run_fig3_panel(
                Fig3Config(batch_size=33, threshold=threshold, n_tasks=400)
            )
            for threshold in THRESHOLDS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            t,
            results[t].stats["utilization"],
            results[t].stats["dip_depth_mean"],
            results[t].n_fetches,
            results[t].makespan,
        ]
        for t in THRESHOLDS
    ]
    report(
        "ABL-THRESH utilization vs threshold (33 workers, batch 33)\n"
        + render_table(
            ["threshold", "utilization", "dip_depth", "fetches", "makespan"], rows
        )
    )

    # Utilization decays from the tight to the loose end.
    assert results[1].stats["utilization"] > results[33].stats["utilization"]
    # Query load falls monotonically with the threshold.
    fetches = [results[t].n_fetches for t in THRESHOLDS]
    assert all(b <= a for a, b in zip(fetches, fetches[1:]))
    # The saw-tooth deepens.
    assert results[33].stats["dip_depth_mean"] > results[1].stats["dip_depth_mean"]
